package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/gpuckpt/gpuckpt/internal/blockstore"
)

// FileStore persists a checkpoint lineage as a directory of diff
// files, one per checkpoint (`ckpt-000000.gckp`, `ckpt-000001.gckp`,
// ...), plus an optional lifecycle manifest (`lineage.manifest`). Files
// are written atomically (temp file + rename) so a crash mid-checkpoint
// never leaves a truncated diff; on load, the sequence is validated by
// the Record's usual geometry and ordering checks.
//
// File names carry absolute checkpoint ids and so do the diffs inside
// them: after a compaction moves the baseline to index k, the retained
// files keep their names and bytes, the manifest records Base=k, and
// Load rebases ids to the 0-based contiguous ids Record.Append
// requires. The restorable range is [Base(), Len()).
//
// Crash recovery: opening a store sweeps temp debris, then deletes any
// diff file below the manifest baseline — the tail of a compaction
// transaction that committed its manifest but crashed before finishing
// the prune (see internal/lifecycle).
//
// A FileStore is safe for concurrent use by multiple goroutines within
// one process: every method holds an internal mutex, so two goroutines
// racing to append the same next id yield exactly one winner (the loser
// gets a contiguity error instead of silently overwriting the winner's
// file). Two FileStores opened on the same directory — or two
// processes — are NOT coordinated; give each lineage a single owner,
// as the ckptd server does.
//
// This is the bottom of the paper's storage hierarchy (§2.3): what the
// asynchronous runtime eventually flushes to the parallel file system.
type FileStore struct {
	dir string

	// man, n, and size are protected by mu. They are also touched by
	// the *Locked helpers (callers hold mu) and by NewFileStore before
	// the store is shared, which is why they carry no ckptlint
	// guardedby directive — that check requires the Lock call to be in
	// the same function body.
	mu  sync.Mutex
	man Manifest
	// n is one past the highest contiguously stored checkpoint index,
	// starting from the baseline; size is the cumulative on-disk byte
	// count of diffs [man.Base, n). Both are computed once on open and
	// maintained incrementally by Append/ReplaceDiff, so Len and
	// TotalBytes are O(1) instead of a directory scan per call.
	n    int
	size int64

	// hooks intercepts I/O for fault injection; nil in production.
	// Guarded by mu like the rest of the mutable state.
	hooks *IOHooks

	// Write-behind intake state (see intake.go), guarded by mu: wal is
	// the open intake log (lazily created by the first AppendBatch),
	// tail the committed-but-unmaterialized containers for checkpoints
	// [n-len(tail), n), tailBytes their cumulative size.
	wal       *os.File
	tail      []tailEntry
	tailBytes int64

	// blocks, when non-nil, is the shared content-addressed block store
	// the data sections of new diffs are interned into: Append writes a
	// block-mapped container (see blockfile.go) instead of embedding
	// payload bytes, so identical chunks across every lineage sharing
	// the store exist on disk exactly once. nil means self-contained
	// (legacy) files, which remain readable either way. Set once before
	// the store is shared, immutable afterwards.
	blocks *blockstore.Store
	// ownBlocks records whether Close should close blocks: true when
	// NewFileStore auto-attached a sibling store, false when the caller
	// passed a shared one to NewFileStoreWith.
	ownBlocks bool
}

const (
	diffFileExt = ".gckp"
	tmpPrefix   = "ckpt-"
	tmpSuffix   = ".tmp"

	// QuarantineSuffix is appended to a corrupt diff file's name when
	// Scrub moves it aside. Quarantined files no longer parse as diff
	// names, so every store scan skips them; they are kept (not
	// deleted) as forensic evidence until repaired or manually removed.
	QuarantineSuffix = ".quarantine"
)

// SetIOHooks installs fault-injection hooks. Pass nil to remove them.
// Test-only seam; production stores never call it.
func (fs *FileStore) SetIOHooks(h *IOHooks) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hooks = h
}

// NewFileStore creates (or reopens) a lineage directory. Orphaned
// temporary files from a previous crash (created but never renamed
// into place) are swept on open, a manifest is loaded if present, and
// an interrupted compaction prune is completed (files below the
// committed baseline are deleted).
//
// If a sibling block store directory exists (<parent>/_blocks, the
// layout a ckptd root uses), it is opened and attached automatically,
// so single-lineage tools can read block-mapped diffs out of a server
// root without extra wiring; Close then closes the attached store. A
// plain directory with no sibling stays fully self-contained.
//
// When the sibling store's writable lock is held — the lineage sits
// inside a LIVE ckptd root — the attach falls back to read-only:
// loads still resolve block-mapped diffs, while any write that would
// intern into the shared store fails with blockstore.ErrReadOnly
// instead of racing the owner's recovery sweep and GC.
func NewFileStore(dir string) (*FileStore, error) {
	var bs *blockstore.Store
	sibling := filepath.Join(filepath.Dir(dir), blockstore.DirName)
	if st, err := os.Stat(sibling); err == nil && st.IsDir() {
		b, err := attachSiblingStore(sibling)
		if err != nil {
			return nil, err
		}
		bs = b
	}
	fs, err := newFileStore(dir, bs, bs != nil)
	if err != nil && bs != nil {
		bs.Close()
	}
	return fs, err
}

// attachSiblingStore opens a sibling block store for auto-attach:
// writable when this process can become the owner, read-only when a
// live owner already holds the lock. Ownership of the returned store
// passes to the caller.
func attachSiblingStore(sibling string) (*blockstore.Store, error) {
	b, err := blockstore.Open(sibling, blockstore.Options{})
	if !errors.Is(err, blockstore.ErrBusy) {
		return b, err
	}
	return blockstore.Open(sibling, blockstore.Options{ReadOnly: true})
}

// NewFileStoreWith creates (or reopens) a lineage directory whose new
// diffs intern their data sections into the shared block store bs —
// the multi-lineage configuration of the ckptd server, where one store
// de-duplicates across every lineage and tenant. The caller retains
// ownership of bs; closing the FileStore does not close it. bs may be
// nil, which is exactly NewFileStore minus the sibling auto-attach.
func NewFileStoreWith(dir string, bs *blockstore.Store) (*FileStore, error) {
	return newFileStore(dir, bs, false)
}

func newFileStore(dir string, bs *blockstore.Store, own bool) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating store %s: %w", dir, err)
	}
	fs := &FileStore{dir: dir, blocks: bs, ownBlocks: own}
	man, err := ReadManifestFile(fs.manifestPath())
	switch {
	case err == nil:
		fs.man = *man
	case os.IsNotExist(err):
		// No manifest: a legacy / never-compacted lineage, baseline 0.
	default:
		return nil, err
	}
	if err := fs.sweepTemp(); err != nil {
		return nil, err
	}
	// The intake log replay needs the file-level length, so it runs
	// between the two rescans: the first establishes where the files
	// end, the replay materializes the committed tail past that point,
	// and the final rescan folds the recovered files into the cache.
	if err := fs.rescanLocked(); err != nil {
		return nil, err
	}
	if err := fs.replayIntakeLocked(); err != nil {
		return nil, err
	}
	if _, _, err := fs.pruneBelowBaseLocked(); err != nil {
		return nil, err
	}
	if err := fs.rescanLocked(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Close flushes the write-behind intake tail and releases the
// auto-attached block store, if any. A FileStore opened with
// NewFileStoreWith leaves the shared store to its owner. Idempotent.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	err := fs.closeIntakeLocked()
	if fs.ownBlocks && fs.blocks != nil {
		fs.ownBlocks = false
		if berr := fs.blocks.Close(); err == nil {
			err = berr
		}
	}
	return err
}

// BlockStats returns the counters of the attached block store, or a
// zero snapshot when the lineage is self-contained.
func (fs *FileStore) BlockStats() blockstore.Stats {
	if fs.blocks == nil {
		return blockstore.Stats{}
	}
	return fs.blocks.Stats()
}

// sweepTemp removes stale ckpt-*.tmp files left by a crash between
// CreateTemp and Rename.
func (fs *FileStore) sweepTemp() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sweeping store %s: %w", fs.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, tmpPrefix) || !strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(fs.dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("checkpoint: removing stale temp file %s: %w", name, err)
		}
	}
	return nil
}

// Dir returns the store directory.
func (fs *FileStore) Dir() string { return fs.dir }

// diffPath returns the canonical file name of checkpoint ck.
func (fs *FileStore) diffPath(ck int) string {
	return filepath.Join(fs.dir, fmt.Sprintf("ckpt-%06d%s", ck, diffFileExt))
}

// manifestPath returns the manifest file name.
func (fs *FileStore) manifestPath() string {
	return filepath.Join(fs.dir, ManifestFileName)
}

// parseDiffName extracts the checkpoint index from a diff file name.
func parseDiffName(name string) (int, bool) {
	if !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, diffFileExt) {
		return 0, false
	}
	var ck int
	if _, err := fmt.Sscanf(name, "ckpt-%06d", &ck); err != nil {
		return 0, false
	}
	return ck, true
}

// rescanLocked recomputes the cached length and byte count from the
// directory: the contiguous run of diff files starting at the
// baseline. Stray files beyond a gap are ignored, as before.
func (fs *FileStore) rescanLocked() error {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: reading store: %w", err)
	}
	sizes := map[int]int64{}
	for _, e := range entries {
		ck, ok := parseDiffName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("checkpoint: stat %s: %w", e.Name(), err)
		}
		sizes[ck] = info.Size()
	}
	fs.n = int(fs.man.Base)
	fs.size = 0
	for {
		sz, ok := sizes[fs.n]
		if !ok {
			break
		}
		fs.size += sz
		fs.n++
	}
	return nil
}

// Base returns the baseline index: the first restorable checkpoint.
func (fs *FileStore) Base() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return int(fs.man.Base)
}

// Manifest returns a copy of the current lifecycle manifest.
func (fs *FileStore) Manifest() Manifest {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.man.Clone()
}

// Len returns one past the highest stored checkpoint index. For a
// never-compacted lineage this is the diff count; after compaction the
// stored diffs span [Base(), Len()). The error return is kept for
// interface stability; the cached value cannot fail.
func (fs *FileStore) Len() (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.n, nil
}

// Append writes diff d as the next checkpoint file. The diff's CkptID
// must equal the current length (contiguity), and its shifted
// duplicates must not reference a checkpoint below the baseline —
// after a compaction those bytes are gone, so a stale pusher that
// still holds pre-compaction history gets a clean error instead of
// storing an unrestorable diff. Concurrent appends of the same id are
// serialized and exactly one wins.
func (fs *FileStore) Append(d *Diff) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		return err
	}
	if int(d.CkptID) != fs.n {
		return fmt.Errorf("checkpoint: store has diffs [%d,%d), cannot append id %d",
			fs.man.Base, fs.n, d.CkptID)
	}
	for _, s := range d.ShiftDupl {
		if s.SrcCkpt < fs.man.Base {
			return fmt.Errorf("checkpoint: diff %d references checkpoint %d, pruned below baseline %d",
				d.CkptID, s.SrcCkpt, fs.man.Base)
		}
	}
	sz, err := fs.writeDiffLocked(fs.n, d)
	if err != nil {
		return err
	}
	fs.n++
	fs.size += sz
	return nil
}

// AppendBatch appends a contiguous run of diffs with one durability
// point for the whole batch instead of one per diff — the group
// commit behind the server's v4 stream path. The run is validated up
// front (contiguity, baseline references), every data section is
// interned in a single block-store call (one journal fsync covers the
// batch), and the encoded containers are committed to the write-behind
// intake log with one fsynced append (see intake.go). Per-checkpoint
// files materialize off the commit path.
//
// The batch commits atomically: on success every diff is durable and
// appended reports len(ds); on error nothing was committed and any
// just-taken block references are released again. A non-nil error
// alongside appended == len(ds) means the batch IS committed but a
// deferred materialization failed — the store needs attention, yet
// the data is safe in the log and recovers on reopen.
func (fs *FileStore) AppendBatch(ds []*Diff) (appended int, err error) {
	if len(ds) == 0 {
		return 0, nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i, d := range ds {
		if int(d.CkptID) != fs.n+i {
			return 0, fmt.Errorf("checkpoint: store has diffs [%d,%d), cannot append id %d at batch offset %d",
				fs.man.Base, fs.n, d.CkptID, i)
		}
		for _, s := range d.ShiftDupl {
			if s.SrcCkpt < fs.man.Base {
				return 0, fmt.Errorf("checkpoint: diff %d references checkpoint %d, pruned below baseline %d",
					d.CkptID, s.SrcCkpt, fs.man.Base)
			}
		}
	}

	// Intern every data section of the batch in one call: block
	// payload files and ONE journal append cover all of them, and the
	// ordering contract holds batch-wide — blocks and their journal
	// records are durable before the log record that references them.
	var refs []blockstore.Ref
	counts := make([]int, len(ds))
	if fs.blocks != nil {
		var chunks [][]byte
		for i, d := range ds {
			cs := fs.blocks.Split(d.Data)
			counts[i] = len(cs)
			chunks = append(chunks, cs...)
		}
		refs, err = fs.blocks.Intern(chunks)
		if err != nil {
			return 0, fmt.Errorf("checkpoint: interning batch: %w", err)
		}
	}

	// Encode the containers, then commit them all with one log append.
	cks := make([]int, len(ds))
	containers := make([][]byte, len(ds))
	off := 0
	for i, d := range ds {
		rs := refs[off : off+counts[i]]
		off += counts[i]
		cks[i] = int(d.CkptID)
		if fs.blocks == nil {
			var buf bytes.Buffer
			if err := d.Encode(&buf); err != nil {
				return 0, err
			}
			containers[i] = buf.Bytes()
		} else {
			var prefix bytes.Buffer
			if err := d.encodePrefix(&prefix); err != nil {
				fs.blocks.Release(refs)
				return 0, err
			}
			containers[i], err = encodeBlockDiff(prefix.Bytes(), rs, uint64(len(d.Data)))
			if err != nil {
				fs.blocks.Release(refs)
				return 0, err
			}
		}
	}
	if err := fs.appendIntakeLocked(cks, containers); err != nil {
		if fs.blocks != nil {
			fs.blocks.Release(refs)
		}
		return 0, err
	}
	for i := range ds {
		fs.tail = append(fs.tail, tailEntry{ck: cks[i], container: containers[i]})
		fs.tailBytes += int64(len(containers[i]))
		fs.n++
		fs.size += int64(len(containers[i])) + FooterSize
	}
	appended = len(ds)

	if len(fs.tail) >= tailMaxCount || fs.tailBytes >= tailMaxBytes {
		if merr := fs.ensureMaterializedLocked(); merr != nil {
			return appended, merr
		}
	}
	return appended, nil
}

// writeDiffLocked persists d (plus its integrity footer) as the file
// of checkpoint ck and returns the on-disk byte count. With a block
// store attached the file is a block-mapped container whose data
// section was interned first; otherwise it is the self-contained
// canonical encoding.
func (fs *FileStore) writeDiffLocked(ck int, d *Diff) (int64, error) {
	if fs.blocks == nil {
		return fs.writeFileLocked(ck, d.Encode)
	}
	return fs.writeBlockDiffLocked(ck, d)
}

// writeBlockDiffLocked interns d's data section into the shared block
// store, then writes the container file. The ordering is the crash
// contract of the store: block payloads and their journal records are
// durable BEFORE the container that references them is renamed into
// place, so a crash at any instant leaves either a fully referenced
// diff or unreferenced debris (leaked refcounts at worst) — never a
// committed diff pointing at missing blocks. On a non-crash write
// failure the just-taken references are released again.
func (fs *FileStore) writeBlockDiffLocked(ck int, d *Diff) (int64, error) {
	var prefix bytes.Buffer
	if err := d.encodePrefix(&prefix); err != nil {
		return 0, err
	}
	refs, err := fs.blocks.Intern(fs.blocks.Split(d.Data))
	if err != nil {
		return 0, fmt.Errorf("checkpoint: interning diff %d data: %w", ck, err)
	}
	container, err := encodeBlockDiff(prefix.Bytes(), refs, uint64(len(d.Data)))
	if err != nil {
		fs.blocks.Release(refs)
		return 0, err
	}
	sz, err := fs.writeFileLocked(ck, func(w io.Writer) error {
		if _, werr := w.Write(container); werr != nil {
			return werr
		}
		return nil
	})
	if err != nil && !errors.Is(err, ErrSimulatedCrash) {
		// The container never made it to disk; drop its references. A
		// simulated crash keeps them, exactly as a dying process would.
		fs.blocks.Release(refs)
	}
	return sz, err
}

// writeFileLocked streams encode (plus the integrity footer) into the
// file of checkpoint ck and returns the on-disk byte count. The commit
// is crash-durable, not just atomic: the temp file is fsynced before
// the rename and the parent directory after it, so once this returns
// the file survives power loss — a rename alone only orders the file
// against other renames, not against the disk.
//
// A hook error wrapping ErrSimulatedCrash is propagated without
// cleanup: the temp file (and, after the rename, the published file)
// stays exactly as a dying process would leave it, so crash tests can
// reopen the directory and exercise recovery on authentic debris.
func (fs *FileStore) writeFileLocked(ck int, encode func(io.Writer) error) (int64, error) {
	return fs.writeFile(ck, encode, true)
}

// writeFile is writeFileLocked with the parent-directory sync made
// optional: AppendBatch defers it to one call per batch. Skipping it
// does NOT weaken per-file atomicity (temp file is still fsynced
// before the rename); it only defers the point at which the rename
// itself is guaranteed to survive power loss.
func (fs *FileStore) writeFile(ck int, encode func(io.Writer) error, syncParent bool) (int64, error) {
	tmp, err := os.CreateTemp(fs.dir, tmpPrefix+"*"+tmpSuffix)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) (int64, error) {
		tmp.Close()
		if !errors.Is(err, ErrSimulatedCrash) {
			os.Remove(tmpName)
		}
		return 0, err
	}
	var w io.Writer = tmp
	if fs.hooks != nil && fs.hooks.WrapDiffWrite != nil {
		w = fs.hooks.WrapDiffWrite(ck, w)
	}
	cw := &crcWriter{w: w}
	if err := encode(cw); err != nil {
		return fail(err)
	}
	footer := footerFor(cw.crc)
	if _, err := w.Write(footer[:]); err != nil {
		return fail(fmt.Errorf("checkpoint: writing diff %d footer: %w", ck, err))
	}
	if fs.hooks != nil && fs.hooks.BeforeSync != nil {
		if err := fs.hooks.BeforeSync(tmpName); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("checkpoint: syncing diff %d: %w", ck, err))
	}
	if err := tmp.Close(); err != nil {
		if !errors.Is(err, ErrSimulatedCrash) {
			os.Remove(tmpName)
		}
		return 0, fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	final := fs.diffPath(ck)
	if fs.hooks != nil && fs.hooks.BeforeRename != nil {
		if err := fs.hooks.BeforeRename(tmpName, final); err != nil {
			if !errors.Is(err, ErrSimulatedCrash) {
				os.Remove(tmpName)
			}
			return 0, err
		}
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("checkpoint: publishing diff %d: %w", ck, err)
	}
	if fs.hooks != nil && fs.hooks.AfterRename != nil {
		if err := fs.hooks.AfterRename(final); err != nil {
			return 0, err
		}
	}
	if syncParent {
		if err := syncDir(fs.dir); err != nil {
			return 0, err
		}
	}
	return cw.n + FooterSize, nil
}

// ReplaceDiff atomically overwrites the file of stored checkpoint ck
// with d (temp file + rename). The compaction transaction uses it to
// install the materialized baseline and to rewrite suffix diffs; every
// replacement must be state-equivalent, which internal/lifecycle
// verifies before writing anything. d must carry the absolute id ck.
func (fs *FileStore) ReplaceDiff(ck int, d *Diff) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		return err
	}
	if ck < int(fs.man.Base) || ck >= fs.n {
		return fmt.Errorf("checkpoint: replace %d outside stored range [%d,%d)", ck, fs.man.Base, fs.n)
	}
	if int(d.CkptID) != ck {
		return fmt.Errorf("checkpoint: replacement for %d carries id %d", ck, d.CkptID)
	}
	old, err := os.Stat(fs.diffPath(ck))
	if err != nil {
		return fmt.Errorf("checkpoint: stat diff %d: %w", ck, err)
	}
	// Capture the old file's block references before the rename
	// destroys it; release them only after the replacement is durable.
	// This is also the transparent-intern path: replacing a legacy
	// self-contained file (no refs to release) writes a block-mapped
	// one, migrating the lineage into the shared store as compaction
	// naturally rewrites it.
	oldRefs := fs.blockRefsAt(ck)
	sz, err := fs.writeDiffLocked(ck, d)
	if err != nil {
		return err
	}
	fs.size += sz - old.Size()
	return fs.releaseRefs(oldRefs)
}

// CommitManifest atomically publishes m as the lineage manifest — the
// commit point of a compaction transaction. The baseline may only move
// forward, must keep at least one stored diff, and every pin must lie
// in the retained range. Files below the new baseline are NOT deleted
// here; call PruneBelowBase afterwards (recovery on reopen completes
// the prune if the process dies in between).
func (fs *FileStore) CommitManifest(m Manifest) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// Drain the write-behind tail first: the rescan below recomputes
	// fs.n from FILES, which would silently forget committed diffs
	// still waiting in the intake log.
	if err := fs.ensureMaterializedLocked(); err != nil {
		return err
	}
	if m.Base < fs.man.Base {
		return fmt.Errorf("checkpoint: manifest baseline %d behind committed %d", m.Base, fs.man.Base)
	}
	if int(m.Base) > fs.n || (fs.n > int(fs.man.Base) && int(m.Base) >= fs.n) {
		return fmt.Errorf("checkpoint: manifest baseline %d has no stored diff (range [%d,%d))",
			m.Base, fs.man.Base, fs.n)
	}
	if m.Generation <= fs.man.Generation {
		return fmt.Errorf("checkpoint: manifest generation %d does not advance %d",
			m.Generation, fs.man.Generation)
	}
	for _, p := range m.Pins {
		if int(p) >= fs.n {
			return fmt.Errorf("checkpoint: pin %d beyond stored range [%d,%d)", p, m.Base, fs.n)
		}
	}
	if err := WriteManifestFile(fs.manifestPath(), &m); err != nil {
		return err
	}
	fs.man = m.Clone()
	// The cached byte count covers [Base, n); rescan under the new
	// baseline (files below it still exist until PruneBelowBase runs).
	return fs.rescanLocked()
}

// PruneBelowBase deletes diff files below the committed baseline and
// returns how many files and bytes it removed. It is idempotent: the
// deletions are also performed on reopen, so a crash anywhere in the
// loop loses nothing but disk space until the next open.
func (fs *FileStore) PruneBelowBase() (int, int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		return 0, 0, err
	}
	return fs.pruneBelowBaseLocked()
}

func (fs *FileStore) pruneBelowBaseLocked() (int, int64, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: reading store: %w", err)
	}
	removed, freed := 0, int64(0)
	for _, e := range entries {
		ck, ok := parseDiffName(e.Name())
		if !ok || ck >= int(fs.man.Base) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return removed, freed, fmt.Errorf("checkpoint: stat %s: %w", e.Name(), err)
		}
		// Retention becomes a refcount decrement, not a payload delete:
		// capture the file's references, remove the file, then release.
		// The shared blocks survive as long as ANY lineage still points
		// at them; the next blockstore GC reclaims the rest. A crash
		// between remove and release leaks counts, never corrupts them.
		refs := fs.blockRefsAt(ck)
		if err := os.Remove(filepath.Join(fs.dir, e.Name())); err != nil && !os.IsNotExist(err) {
			return removed, freed, fmt.Errorf("checkpoint: pruning %s: %w", e.Name(), err)
		}
		if err := fs.releaseRefs(refs); err != nil {
			return removed, freed, err
		}
		removed++
		freed += info.Size()
	}
	return removed, freed, nil
}

// DiffBytes returns the encoded bytes of stored checkpoint ck with the
// integrity footer verified and stripped — the path a network server
// uses to serve a pull without decoding. A footer mismatch surfaces as
// a *CorruptError (errors.Is ErrCorrupt); a legacy footer-less file is
// returned as-is, unverified.
func (fs *FileStore) DiffBytes(ck int) ([]byte, error) {
	fs.mu.Lock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	base, length, hooks := int(fs.man.Base), fs.n, fs.hooks
	fs.mu.Unlock()
	if ck < base || ck >= length {
		return nil, fmt.Errorf("checkpoint: diff %d out of range [%d,%d)", ck, base, length)
	}
	encoded, _, err := fs.readVerified(ck, hooks)
	return encoded, err
}

// errNoBlockStore reports a block-mapped diff file in a store opened
// without a block store — a configuration problem (the `_blocks`
// sibling was moved or the wrong constructor was used), not data
// corruption, so it is deliberately NOT a *CorruptError: a scrub must
// abort rather than quarantine every file it cannot resolve.
var errNoBlockStore = errors.New("checkpoint: block-mapped diff but no block store attached")

// readVerified reads checkpoint ck's file, applies the read-time fault
// hook, and verifies+strips the integrity footer. A block-mapped
// container is reassembled into the canonical diff encoding, each
// payload block verified by the block store (CRC plus digest); callers
// never see container bytes. verified is false only for legacy
// footer-less files.
func (fs *FileStore) readVerified(ck int, hooks *IOHooks) (encoded []byte, verified bool, err error) {
	path := fs.diffPath(ck)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint: reading diff %d: %w", ck, err)
	}
	if hooks != nil && hooks.OnDiffRead != nil {
		raw = hooks.OnDiffRead(ck, raw)
	}
	encoded, verified, err = SplitFooter(raw)
	if err != nil {
		return nil, false, &CorruptError{Path: path, Ckpt: ck, Err: err}
	}
	if IsBlockMapped(encoded) {
		encoded, err = fs.reassemble(encoded)
		if err != nil {
			if errors.Is(err, errNoBlockStore) {
				return nil, false, err
			}
			return nil, false, &CorruptError{Path: path, Ckpt: ck, Err: err}
		}
		verified = true
	}
	return encoded, verified, nil
}

// reassemble expands a block-mapped container into the canonical diff
// encoding: prefix verbatim, then every referenced block fetched from
// the shared store. Both rot in the container (caught by its footer
// before this runs) and rot in a block (caught by the store's
// per-block verification here) surface as typed corruption.
func (fs *FileStore) reassemble(container []byte) ([]byte, error) {
	prefix, refs, dataLen, err := decodeBlockDiff(container)
	if err != nil {
		return nil, err
	}
	if fs.blocks == nil {
		return nil, errNoBlockStore
	}
	out := make([]byte, 0, uint64(len(prefix))+dataLen)
	out = append(out, prefix...)
	for _, r := range refs {
		p, err := fs.blocks.Get(r)
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	}
	return out, nil
}

// blockRefsAt returns the block references held by checkpoint ck's
// file, nil for self-contained or unreadable files. It is the
// release-side bookkeeping read: callers that are about to delete or
// overwrite the file capture its references first and release them
// only after the file is durably gone (crash in between leaks a
// count; it never underflows one).
func (fs *FileStore) blockRefsAt(ck int) []blockstore.Ref {
	raw, err := os.ReadFile(fs.diffPath(ck))
	if err != nil {
		return nil
	}
	encoded, _, err := SplitFooter(raw)
	if err != nil || !IsBlockMapped(encoded) {
		return nil
	}
	_, refs, _, err := decodeBlockDiff(encoded)
	if err != nil {
		return nil
	}
	return refs
}

// releaseRefs drops refs from the attached block store, tolerating
// underflow (a foreign or already-released reference) as the
// documented soft failure of best-effort cleanup.
func (fs *FileStore) releaseRefs(refs []blockstore.Ref) error {
	if fs.blocks == nil || len(refs) == 0 {
		return nil
	}
	if err := fs.blocks.Release(refs); err != nil && !errors.Is(err, blockstore.ErrUnderflow) {
		return err
	}
	return nil
}

// decodeVerified decodes the verified bytes of checkpoint ck and
// cross-checks the embedded id against the file name. Structural
// decode failures and id mismatches are *CorruptError like checksum
// failures: all three mean the file cannot be restored. verified is
// false for legacy footer-less files.
func (fs *FileStore) decodeVerified(ck int, hooks *IOHooks) (*Diff, bool, error) {
	encoded, verified, err := fs.readVerified(ck, hooks)
	if err != nil {
		return nil, false, err
	}
	d, err := Decode(bytes.NewReader(encoded))
	if err != nil {
		return nil, verified, &CorruptError{Path: fs.diffPath(ck), Ckpt: ck, Err: err}
	}
	if int(d.CkptID) != ck {
		return nil, verified, &CorruptError{Path: fs.diffPath(ck), Ckpt: ck,
			Err: fmt.Errorf("file holds diff id %d", d.CkptID)}
	}
	return d, verified, nil
}

// TotalBytes returns the cumulative on-disk size of the stored diffs.
func (fs *FileStore) TotalBytes() (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.size, nil
}

// Load reads the stored lineage [Base, Len) into a restorable Record.
// On-disk diffs carry absolute ids; Load rebases them to the 0-based
// contiguous ids the Record requires, so Record index i is absolute
// checkpoint Base()+i.
func (fs *FileStore) Load() (*Record, error) {
	fs.mu.Lock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	base, length, hooks := int(fs.man.Base), fs.n, fs.hooks
	fs.mu.Unlock()
	if length == base {
		return nil, fmt.Errorf("checkpoint: store %s is empty", fs.dir)
	}
	rec := NewRecord()
	for ck := base; ck < length; ck++ {
		d, _, err := fs.decodeVerified(ck, hooks)
		if err != nil {
			return nil, err
		}
		if err := d.Rebase(-int64(base)); err != nil {
			return nil, fmt.Errorf("checkpoint: diff %d: %w", ck, err)
		}
		if err := rec.Append(d); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// WriteRecord persists an in-memory record into an empty store.
func (fs *FileStore) WriteRecord(rec *Record) error {
	n, err := fs.Len()
	if err != nil {
		return err
	}
	if n != 0 {
		return fmt.Errorf("checkpoint: store %s already holds diffs up to %d", fs.dir, n)
	}
	for i := 0; i < rec.Len(); i++ {
		if err := fs.Append(rec.Diff(i)); err != nil {
			return err
		}
	}
	return nil
}

// ScrubReport summarizes a Scrub pass.
type ScrubReport struct {
	// Checked is how many stored diffs were read and verified.
	Checked int
	// Corrupt lists, in ascending order, the absolute checkpoint ids
	// whose files failed verification and were quarantined.
	Corrupt []int
	// Errors holds the *CorruptError for each entry of Corrupt.
	Errors []error
	// Unverified lists legacy footer-less diffs that decoded cleanly
	// but carry no checksum to verify.
	Unverified []int
}

// OK reports whether the scrub found no corruption.
func (r *ScrubReport) OK() bool { return len(r.Corrupt) == 0 }

// Scrub reads and verifies every stored diff: footer checksum,
// structural decode, and id-vs-filename agreement. Each corrupt file
// is quarantined — renamed to <name>.quarantine, which removes it from
// the store's namespace while preserving the bytes for forensics — and
// the cached range shrinks to the contiguous prefix before the first
// hole, exactly as if the file had never been written. Use
// ReinstallDiff (e.g. with bytes refetched from a ckptd peer, see the
// client's Repair) to fill the hole and reconnect the suffix.
//
// Scrub holds the store lock for the whole pass; concurrent appends
// and pulls wait rather than racing a quarantine rename.
func (fs *FileStore) Scrub() (*ScrubReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		return nil, err
	}
	rep := &ScrubReport{}
	for ck := int(fs.man.Base); ck < fs.n; ck++ {
		rep.Checked++
		_, verified, err := fs.decodeVerified(ck, fs.hooks)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				return rep, err // I/O failure, not corruption: abort the pass
			}
			path := fs.diffPath(ck)
			if err := os.Rename(path, path+QuarantineSuffix); err != nil {
				return rep, fmt.Errorf("checkpoint: quarantining diff %d: %w", ck, err)
			}
			rep.Corrupt = append(rep.Corrupt, ck)
			rep.Errors = append(rep.Errors, ce)
			continue
		}
		if !verified {
			rep.Unverified = append(rep.Unverified, ck)
		}
	}
	if len(rep.Corrupt) > 0 {
		if err := fs.rescanLocked(); err != nil {
			return rep, err
		}
	}
	sort.Ints(rep.Corrupt)
	return rep, nil
}

// ReinstallDiff writes d at its absolute checkpoint id, filling a hole
// left by Scrub quarantine (or overwriting an existing file with
// equivalent bytes). The id must lie at or above the baseline; after
// the write the store rescans, so a suffix stranded beyond the hole is
// reconnected and Len() grows back accordingly.
func (fs *FileStore) ReinstallDiff(d *Diff) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		return err
	}
	ck := int(d.CkptID)
	if ck < int(fs.man.Base) {
		return fmt.Errorf("checkpoint: reinstall %d below baseline %d", ck, fs.man.Base)
	}
	oldRefs := fs.blockRefsAt(ck)
	if _, err := fs.writeDiffLocked(ck, d); err != nil {
		return err
	}
	if err := fs.releaseRefs(oldRefs); err != nil {
		return err
	}
	return fs.rescanLocked()
}

// InstallSpan installs a replicated span pulled from a peer: diffs
// carry contiguous absolute ids [base, base+len(diffs)) and become
// the store's authoritative content, adopting base as the committed
// baseline when it lies beyond the current one. This is the resync
// commit of a follower whose primary folded its lineage — unlike
// CommitManifest (which moves the baseline of diffs already stored),
// InstallSpan may move the baseline PAST the mirror's current length,
// because the span's files are written first and the manifest commit
// only then publishes the new base over them.
//
// The transaction reuses the compaction crash contract: span files
// (durable, fsynced individually), then the atomic manifest rename,
// then the prune of files below the new baseline. A crash at any
// point leaves either the old committed state plus ignorable stranded
// files, or the new state with the prune completed on reopen.
func (fs *FileStore) InstallSpan(base int, diffs []*Diff) error {
	if len(diffs) == 0 {
		return fmt.Errorf("checkpoint: install span at %d with no diffs", base)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		return err
	}
	if base < int(fs.man.Base) {
		return fmt.Errorf("checkpoint: span baseline %d behind committed %d", base, fs.man.Base)
	}
	for i, d := range diffs {
		if int(d.CkptID) != base+i {
			return fmt.Errorf("checkpoint: span diff at offset %d carries id %d, want %d",
				i, d.CkptID, base+i)
		}
		for _, s := range d.ShiftDupl {
			if int(s.SrcCkpt) < base {
				return fmt.Errorf("checkpoint: span diff %d references checkpoint %d below its baseline %d",
					d.CkptID, s.SrcCkpt, base)
			}
		}
	}
	for i, d := range diffs {
		// An overwritten file's block references are captured before
		// the rename destroys it and released only once the
		// replacement is durable, as in ReplaceDiff.
		oldRefs := fs.blockRefsAt(base + i)
		if _, err := fs.writeDiffLocked(base+i, d); err != nil {
			return err
		}
		if err := fs.releaseRefs(oldRefs); err != nil {
			return err
		}
	}
	if base > int(fs.man.Base) {
		m := fs.man.Clone()
		m.Base = uint32(base)
		m.Generation++
		kept := m.Pins[:0]
		for _, p := range m.Pins {
			if int(p) >= base {
				kept = append(kept, p)
			}
		}
		m.Pins = kept
		if err := WriteManifestFile(fs.manifestPath(), &m); err != nil {
			return err
		}
		fs.man = m
	}
	if err := fs.rescanLocked(); err != nil {
		return err
	}
	_, _, err := fs.pruneBelowBaseLocked()
	return err
}

// Quarantined lists the quarantine file names currently in the store
// directory, in lexical order.
func (fs *FileStore) Quarantined() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), QuarantineSuffix) {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// QuarantinedIDs returns the checkpoint ids of the quarantine files in
// the store directory, ascending — the holes a repair pass (possibly
// in a later process than the scrub that quarantined them) still needs
// to fill.
func (fs *FileStore) QuarantinedIDs() ([]int, error) {
	names, err := fs.Quarantined()
	if err != nil {
		return nil, err
	}
	var out []int
	for _, name := range names {
		if ck, ok := parseDiffName(strings.TrimSuffix(name, QuarantineSuffix)); ok {
			out = append(out, ck)
		}
	}
	sort.Ints(out)
	return out, nil
}

// ClearQuarantine removes checkpoint ck's quarantine file, if any —
// called once a repair has reinstalled verified bytes at ck, so the
// forensic copy of the rotten file stops masquerading as an open hole.
func (fs *FileStore) ClearQuarantine(ck int) error {
	err := os.Remove(fs.diffPath(ck) + QuarantineSuffix)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: clearing quarantine of diff %d: %w", ck, err)
	}
	return nil
}

// Files lists the stored diff file names in checkpoint order. Callers
// read the files, so the write-behind tail is drained first.
func (fs *FileStore) Files() ([]string, error) {
	fs.mu.Lock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	base, length := int(fs.man.Base), fs.n
	fs.mu.Unlock()
	out := make([]string, 0, length-base)
	for ck := base; ck < length; ck++ {
		out = append(out, fs.diffPath(ck))
	}
	return out, nil
}
