package checkpoint

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/blockstore"
)

// openShared opens the shared block store plus two lineage stores
// under one root, the layout of a ckptd server.
func openShared(t *testing.T, root string, lineages ...string) (*blockstore.Store, []*FileStore) {
	t.Helper()
	bs, err := blockstore.Open(filepath.Join(root, blockstore.DirName), blockstore.Options{ChunkSize: 64})
	if err != nil {
		t.Fatalf("blockstore.Open: %v", err)
	}
	t.Cleanup(func() { bs.Close() })
	stores := make([]*FileStore, 0, len(lineages))
	for _, name := range lineages {
		fs, err := NewFileStoreWith(filepath.Join(root, name), bs)
		if err != nil {
			t.Fatalf("NewFileStoreWith(%s): %v", name, err)
		}
		stores = append(stores, fs)
	}
	return bs, stores
}

func randomDiff(ck int, seed int64, n int) *Diff {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return &Diff{Method: MethodFull, CkptID: uint32(ck), DataLen: uint64(n), ChunkSize: 16, Data: data}
}

// TestBlockStoreCrossLineageDedup is the tentpole acceptance: two
// lineages appending identical states share every payload block, so
// the shared store holds each chunk exactly once while both lineages
// restore byte-exact.
func TestBlockStoreCrossLineageDedup(t *testing.T) {
	root := t.TempDir()
	bs, stores := openShared(t, root, "tenant-a", "tenant-b")
	for ck := 0; ck < 4; ck++ {
		d := randomDiff(ck, int64(ck), 640) // identical bytes per ckpt in both lineages
		for _, fs := range stores {
			if err := fs.Append(d.CloneShallow()); err != nil {
				t.Fatalf("append ckpt %d: %v", ck, err)
			}
		}
	}
	st := bs.Stats()
	// Every chunk of lineage B was already interned by lineage A.
	if st.DedupHits != st.Interned {
		t.Fatalf("dedup hits %d, interned %d: second lineage did not fully dedup", st.DedupHits, st.Interned)
	}
	if st.SavedBytes != uint64(st.StoredBytes) {
		t.Fatalf("saved %d bytes, stored %d: shared chunks not stored exactly once", st.SavedBytes, st.StoredBytes)
	}
	for i, fs := range stores {
		rec, err := fs.Load()
		if err != nil {
			t.Fatalf("lineage %d load: %v", i, err)
		}
		for ck := 0; ck < 4; ck++ {
			got, err := rec.Restore(ck)
			if err != nil {
				t.Fatalf("lineage %d restore %d: %v", i, ck, err)
			}
			want := randomDiff(ck, int64(ck), 640).Data
			if !bytes.Equal(got, want) {
				t.Fatalf("lineage %d restore %d diverged", i, ck)
			}
		}
	}
}

// TestBlockStoreDiffBytesCanonical: a block-mapped file must serve the
// byte-identical canonical encoding a self-contained file would — the
// server's idempotent-replay CRC and every client depend on it.
func TestBlockStoreDiffBytesCanonical(t *testing.T) {
	root := t.TempDir()
	_, stores := openShared(t, root, "shared")
	plain, err := NewFileStore(filepath.Join(t.TempDir(), "plain"))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	d := randomDiff(0, 42, 333)
	if err := stores[0].Append(d.CloneShallow()); err != nil {
		t.Fatal(err)
	}
	if err := plain.Append(d.CloneShallow()); err != nil {
		t.Fatal(err)
	}
	b1, err := stores[0].DiffBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := plain.DiffBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("block-mapped DiffBytes diverged from canonical: %d vs %d bytes", len(b1), len(b2))
	}
	// The on-disk file, by contrast, is the small container.
	info, err := os.Stat(stores[0].diffPath(0))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= int64(len(b2)) {
		t.Fatalf("container file %d bytes, not smaller than canonical %d", info.Size(), len(b2))
	}
}

// TestBlockStoreReleaseOnPrune: retention pruning releases block
// references; blocks shared with a surviving lineage survive GC,
// blocks referenced by no one are reclaimed.
func TestBlockStoreReleaseOnPrune(t *testing.T) {
	root := t.TempDir()
	bs, stores := openShared(t, root, "a", "b")
	shared := randomDiff(0, 1, 640)
	for _, fs := range stores {
		if err := fs.Append(shared.CloneShallow()); err != nil {
			t.Fatal(err)
		}
	}
	// Lineage a grows private history, then compacts it away.
	for ck := 1; ck <= 3; ck++ {
		if err := stores[0].Append(randomDiff(ck, 100+int64(ck), 640)); err != nil {
			t.Fatal(err)
		}
	}
	// Move a's baseline to 3: files 0..2 pruned, their refs released.
	base := randomDiff(3, 999, 640)
	if err := stores[0].ReplaceDiff(3, base); err != nil {
		t.Fatal(err)
	}
	if err := stores[0].CommitManifest(Manifest{Base: 3, Generation: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := stores[0].PruneBelowBase(); err != nil {
		t.Fatal(err)
	}
	gc, err := bs.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gc.Reclaimed == 0 {
		t.Fatal("GC reclaimed nothing after pruning a's private history")
	}
	// b still restores its copy of the shared state byte-exact.
	rec, err := stores[1].Load()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.Restore(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shared.Data) {
		t.Fatal("lineage b's shared state corrupted by a's prune+GC")
	}
	// a restores its new baseline.
	reca, err := stores[0].Load()
	if err != nil {
		t.Fatal(err)
	}
	gota, err := reca.Restore(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gota, base.Data) {
		t.Fatal("lineage a's baseline corrupted by prune+GC")
	}
}

// TestBlockStoreLegacyCompat: a pre-blockstore (self-contained)
// lineage opens under a shared store, loads byte-exact, and is
// transparently interned when compaction rewrites a file.
func TestBlockStoreLegacyCompat(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "legacy")

	// Write a legacy lineage: no sibling _blocks, self-contained files.
	plain, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for ck := 0; ck < 3; ck++ {
		if err := plain.Append(randomDiff(ck, int64(ck), 640)); err != nil {
			t.Fatal(err)
		}
	}
	plain.Close()

	// Reopen the same directory attached to a shared store.
	bs, err := blockstore.Open(filepath.Join(root, blockstore.DirName), blockstore.Options{ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	fs, err := NewFileStoreWith(dir, bs)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := fs.Load()
	if err != nil {
		t.Fatalf("legacy lineage under shared store: %v", err)
	}
	for ck := 0; ck < 3; ck++ {
		got, err := rec.Restore(ck)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, randomDiff(ck, int64(ck), 640).Data) {
			t.Fatalf("legacy restore %d diverged", ck)
		}
	}
	if bs.Stats().Interned != 0 {
		t.Fatal("merely loading a legacy lineage interned blocks")
	}

	// Rewriting a file (the compaction path) interns it transparently.
	if err := fs.ReplaceDiff(1, randomDiff(1, 1, 640)); err != nil {
		t.Fatal(err)
	}
	if bs.Stats().Interned == 0 {
		t.Fatal("ReplaceDiff did not intern the rewritten diff")
	}
	encoded, err := os.ReadFile(fs.diffPath(1))
	if err != nil {
		t.Fatal(err)
	}
	body, _, err := SplitFooter(encoded)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBlockMapped(body) {
		t.Fatal("rewritten file is not block-mapped")
	}
	rec2, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec2.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, randomDiff(1, 1, 640).Data) {
		t.Fatal("transparently interned diff restores differently")
	}
}

// TestBlockStoreAutoAttach: NewFileStore on a lineage inside a server
// root (sibling _blocks present) attaches the store automatically, so
// restoretool and ReadRecordDir resolve block-mapped files; Close
// closes the attached store.
func TestBlockStoreAutoAttach(t *testing.T) {
	root := t.TempDir()
	bs, stores := openShared(t, root, "lineage")
	d := randomDiff(0, 5, 640)
	if err := stores[0].Append(d.CloneShallow()); err != nil {
		t.Fatal(err)
	}
	bs.Close() // single-owner rule: release before the tool opens it

	fs, err := NewFileStore(filepath.Join(root, "lineage"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := fs.Load()
	if err != nil {
		t.Fatalf("auto-attach load: %v", err)
	}
	got, err := rec.Restore(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, d.Data) {
		t.Fatal("auto-attach restore diverged")
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockStoreAutoAttachReadOnlyFallback: NewFileStore on a lineage
// inside a LIVE ckptd root (the writable owner still holds the block
// store lock) attaches read-only — loads resolve block-mapped diffs,
// while writes that would intern into the shared store fail typed
// instead of running a second, uncoordinated recovery (whose orphan
// sweep could delete a payload the owner is about to reference).
func TestBlockStoreAutoAttachReadOnlyFallback(t *testing.T) {
	if !blockstore.LockingSupported() {
		t.Skip("no owner locking on this platform")
	}
	root := t.TempDir()
	bs, stores := openShared(t, root, "lineage")
	d := randomDiff(0, 5, 640)
	if err := stores[0].Append(d.CloneShallow()); err != nil {
		t.Fatal(err)
	}
	// The owner stays open — the live-server case.
	fs, err := NewFileStore(filepath.Join(root, "lineage"))
	if err != nil {
		t.Fatalf("auto-attach with live owner: %v", err)
	}
	defer fs.Close()
	rec, err := fs.Load()
	if err != nil {
		t.Fatalf("read-only auto-attach load: %v", err)
	}
	got, err := rec.Restore(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, d.Data) {
		t.Fatal("read-only auto-attach restore diverged")
	}
	if err := fs.Append(randomDiff(1, 6, 640)); !errors.Is(err, blockstore.ErrReadOnly) {
		t.Fatalf("Append through read-only attach: %v, want blockstore.ErrReadOnly", err)
	}
	// The owner keeps working throughout.
	if err := stores[0].Append(randomDiff(1, 7, 640)); err != nil {
		t.Fatalf("owner append with read-only observer attached: %v", err)
	}
	_ = bs
}

// TestBlockStoreMissingStoreIsConfigError: a block-mapped lineage
// moved away from its _blocks sibling fails with a plain error, not
// corruption — scrub must not quarantine files it cannot resolve.
func TestBlockStoreMissingStoreIsConfigError(t *testing.T) {
	root := t.TempDir()
	bs, stores := openShared(t, root, "lineage")
	if err := stores[0].Append(randomDiff(0, 6, 640)); err != nil {
		t.Fatal(err)
	}
	bs.Close()

	// Copy the lineage dir elsewhere, stranding it from _blocks.
	stray := filepath.Join(t.TempDir(), "stray")
	if err := os.MkdirAll(stray, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(root, "lineage"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(root, "lineage", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(stray, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := NewFileStore(stray)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	_, err = fs.Load()
	if err == nil {
		t.Fatal("stranded block-mapped lineage loaded successfully")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("config error typed as corruption: %v", err)
	}
	if !errors.Is(err, errNoBlockStore) {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestBlockStoreRotSurfacesAsCorrupt: rot in a referenced block makes
// every referencing lineage fail typed, never restore garbage.
func TestBlockStoreRotSurfacesAsCorrupt(t *testing.T) {
	root := t.TempDir()
	bs, stores := openShared(t, root, "a", "b")
	d := randomDiff(0, 7, 640)
	for _, fs := range stores {
		if err := fs.Append(d.CloneShallow()); err != nil {
			t.Fatal(err)
		}
	}
	// Rot one shared block on disk.
	refs := stores[0].blockRefsAt(0)
	if len(refs) == 0 {
		t.Fatal("no block refs recorded")
	}
	path := bs.BlockPath(refs[0].ID)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for i, fs := range stores {
		if _, err := fs.Load(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("lineage %d load with rotten shared block: %v, want ErrCorrupt", i, err)
		}
	}
}
