package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Manifest is the on-disk lifecycle state of one lineage directory: the
// index of the materialized baseline (the first stored diff, a
// consolidated full checkpoint after the first compaction) and the
// explicitly pinned checkpoint indices that retention policies must not
// prune. It is the commit record of the compaction transaction: a
// lineage's restorable range is [Base, Len) and nothing below Base is
// ever read again, so deleting pruned files after the manifest rename
// is safe at any crash point.
//
// The manifest is written atomically (temp file + rename, like diff
// files) and decoded defensively (bounded counts, exact length), the
// same posture as the wire and diff formats: a corrupt manifest must
// fail loudly, never silently move the baseline.
type Manifest struct {
	// Base is the absolute index of the baseline checkpoint. Diffs
	// below Base have been folded into the baseline and their files
	// removed. Zero for a never-compacted lineage.
	Base uint32
	// Generation counts committed compaction transactions; every
	// manifest rewrite increments it, so it only moves forward.
	Generation uint64
	// Pins lists explicitly pinned checkpoint indices in strictly
	// ascending order. A pinned index is never folded away: retention
	// policies clamp the baseline to the smallest pin.
	Pins []uint32
}

const (
	manifestMagic   = 0x4d_4c_43_47 // "GCLM" little-endian
	manifestVersion = 1
	manifestHdrSize = 4 + 1 + 4 + 8 + 4 // magic, version, base, generation, pin count

	// ManifestFileName is the manifest's name inside a lineage
	// directory.
	ManifestFileName = "lineage.manifest"
)

// validate checks the structural invariants shared by Encode and
// DecodeManifest.
func (m *Manifest) validate() error {
	prev := int64(-1)
	for _, p := range m.Pins {
		if p < m.Base {
			return fmt.Errorf("checkpoint: manifest pin %d below baseline %d", p, m.Base)
		}
		if int64(p) <= prev {
			return fmt.Errorf("checkpoint: manifest pins not strictly ascending at %d", p)
		}
		prev = int64(p)
	}
	return nil
}

// Encode returns the canonical little-endian serialization of m.
func (m *Manifest) Encode() ([]byte, error) {
	if uint64(len(m.Pins)) > math.MaxUint32 {
		return nil, errors.New("checkpoint: manifest pin count exceeds format limit")
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, manifestHdrSize, manifestHdrSize+4*len(m.Pins))
	binary.LittleEndian.PutUint32(buf[0:], manifestMagic)
	buf[4] = manifestVersion
	binary.LittleEndian.PutUint32(buf[5:], m.Base)
	binary.LittleEndian.PutUint64(buf[9:], m.Generation)
	binary.LittleEndian.PutUint32(buf[17:], uint32(len(m.Pins)))
	for _, p := range m.Pins {
		buf = binary.LittleEndian.AppendUint32(buf, p)
	}
	return buf, nil
}

// DecodeManifest parses a manifest previously written by Encode. The
// declared pin count is bounded by the actual byte length before any
// allocation, and the payload must be exactly consumed.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < manifestHdrSize {
		return nil, errors.New("checkpoint: truncated manifest")
	}
	if binary.LittleEndian.Uint32(b[0:]) != manifestMagic {
		return nil, errors.New("checkpoint: bad manifest magic")
	}
	if b[4] != manifestVersion {
		return nil, fmt.Errorf("checkpoint: unsupported manifest version %d", b[4])
	}
	m := &Manifest{
		Base:       binary.LittleEndian.Uint32(b[5:]),
		Generation: binary.LittleEndian.Uint64(b[9:]),
	}
	nPins := binary.LittleEndian.Uint32(b[17:])
	rest := b[manifestHdrSize:]
	if uint64(nPins)*4 != uint64(len(rest)) {
		return nil, fmt.Errorf("checkpoint: manifest declares %d pins but carries %d trailing bytes",
			nPins, len(rest))
	}
	if nPins > 0 {
		m.Pins = make([]uint32, nPins)
		for i := range m.Pins {
			m.Pins[i] = binary.LittleEndian.Uint32(rest[4*i:])
		}
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadManifestFile loads and decodes a manifest file.
func ReadManifestFile(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: manifest %s: %w", path, err)
	}
	return m, nil
}

// WriteManifestFile atomically writes m to path (temp file in the same
// directory + rename). The temp name matches the ckpt-*.tmp pattern so
// a crash mid-write leaves only debris the store sweeps on open.
func WriteManifestFile(path string, m *Manifest) error {
	b, err := m.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"manifest-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("checkpoint: manifest temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: writing manifest: %w", err)
	}
	// The manifest is the commit point of compaction transactions: sync
	// the bytes before the rename and the directory after it, so a
	// committed baseline move survives power loss (rename alone does not
	// order against the disk).
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: closing manifest temp file: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: publishing manifest: %w", err)
	}
	return syncDir(dir)
}

// Clone returns a deep copy of m.
func (m *Manifest) Clone() Manifest {
	out := *m
	if m.Pins != nil {
		out.Pins = append([]uint32(nil), m.Pins...)
	}
	return out
}

// Rebase shifts every checkpoint id carried by d — its CkptID and the
// SrcCkpt of every shifted-duplicate region — by delta. The FileStore
// keeps absolute ids on disk (file ckpt-000057.gckp holds CkptID 57
// even after compaction moved the baseline to 50) and rebases to the
// 0-based ids Record.Append requires at load time; clients rebase the
// other way when re-encoding a pulled diff for push. A shift that
// would take any id out of uint32 range — in particular a SrcCkpt
// referencing a checkpoint below the subtracted baseline — is an
// error and leaves d unchanged.
func (d *Diff) Rebase(delta int64) error {
	shifted := func(v uint32) (uint32, error) {
		s := int64(v) + delta
		if s < 0 || s > math.MaxUint32 {
			return 0, fmt.Errorf("checkpoint: rebase of id %d by %d leaves uint32 range", v, delta)
		}
		return uint32(s), nil
	}
	id, err := shifted(d.CkptID)
	if err != nil {
		return err
	}
	srcs := make([]uint32, len(d.ShiftDupl))
	for i, s := range d.ShiftDupl {
		if srcs[i], err = shifted(s.SrcCkpt); err != nil {
			return fmt.Errorf("checkpoint: diff %d shift region %d: %w", d.CkptID, i, err)
		}
	}
	d.CkptID = id
	for i := range d.ShiftDupl {
		d.ShiftDupl[i].SrcCkpt = srcs[i]
	}
	return nil
}

// CloneShallow returns a copy of d whose ShiftDupl slice is freshly
// allocated, so the copy can be Rebased without mutating the original;
// the (immutable) Bitmap and Data sections stay shared.
func (d *Diff) CloneShallow() *Diff {
	cp := *d
	if d.ShiftDupl != nil {
		cp.ShiftDupl = append([]ShiftRegion(nil), d.ShiftDupl...)
	}
	return &cp
}
