package checkpoint

import (
	"errors"
	"fmt"
	"os"
)

// Anti-entropy digest plumbing: per-diff CONTENT checksums over a
// stored span. The content checksum is the CRC32C of the canonical
// diff encoding — the bytes a pull serves and a push's precondition
// hashes — NOT the raw file bytes: the same diff stored
// self-contained on one replica and block-mapped on another has
// different on-disk images but identical canonical encodings, and a
// digest that compared file bytes would see phantom divergence
// between healthy replicas.
//
// Computing a span checksum re-reads and re-verifies every diff in
// the span; that is the point, not an inefficiency — an anti-entropy
// round that trusted a cached checksum would never notice rot that
// happened after the cache was filled.

// SpanChecksums returns the content checksum of every stored diff in
// [lo, hi), in id order. The span must sit inside [Base, Len). A
// diff that fails verification surfaces as a *CorruptError naming
// the checkpoint (errors.Is ErrCorrupt) — the reconciler's local-rot
// signal.
func (fs *FileStore) SpanChecksums(lo, hi int) ([]uint32, error) {
	fs.mu.Lock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	base, length, hooks := int(fs.man.Base), fs.n, fs.hooks
	fs.mu.Unlock()
	if lo < base || hi > length || hi < lo {
		return nil, fmt.Errorf("checkpoint: digest span [%d,%d) outside stored [%d,%d)", lo, hi, base, length)
	}
	out := make([]uint32, 0, hi-lo)
	for ck := lo; ck < hi; ck++ {
		encoded, _, err := fs.readVerified(ck, hooks)
		if err != nil {
			return nil, err
		}
		out = append(out, DiffChecksum(encoded))
	}
	return out, nil
}

// VerifySpan re-reads and verifies every stored diff — footer CRC,
// block reassembly, structural decode, id cross-check — without
// mutating anything (unlike Scrub, nothing is quarantined). It
// returns the first *CorruptError found, or nil when the whole
// stored span is intact. This is the read-only health gate a standby
// runs before agreeing to be promoted.
func (fs *FileStore) VerifySpan() error {
	fs.mu.Lock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		fs.mu.Unlock()
		return err
	}
	base, length, hooks := int(fs.man.Base), fs.n, fs.hooks
	fs.mu.Unlock()
	for ck := base; ck < length; ck++ {
		if _, _, err := fs.decodeVerified(ck, hooks); err != nil {
			return err
		}
	}
	return nil
}

// QuarantineDiff moves checkpoint ck's file aside under
// QuarantineSuffix — the single-diff form of what Scrub does to every
// corrupt file — and rescans so the cached range shrinks to the
// contiguous prefix before the hole. The reconciler quarantines
// before it overwrites: the rotten bytes stay on disk as forensic
// evidence, and a crash mid-heal leaves a typed hole, never a
// half-written diff masquerading as healthy.
func (fs *FileStore) QuarantineDiff(ck int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.ensureMaterializedLocked(); err != nil {
		return err
	}
	if ck < int(fs.man.Base) || ck >= fs.n {
		return fmt.Errorf("checkpoint: quarantine %d outside stored [%d,%d)", ck, fs.man.Base, fs.n)
	}
	path := fs.diffPath(ck)
	if err := os.Rename(path, path+QuarantineSuffix); err != nil {
		return fmt.Errorf("checkpoint: quarantining diff %d: %w", ck, err)
	}
	return fs.rescanLocked()
}

// IsCorrupt reports whether err marks data that failed an integrity
// check — a *CorruptError from this package or a blockstore
// verification failure wrapped in one.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }
