package checkpoint

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// sampleDiffs returns one representative diff per method, each with a
// non-empty metadata section where the format allows one.
func sampleDiffs() []*Diff {
	return []*Diff{
		{Method: MethodFull, CkptID: 0, DataLen: 40, ChunkSize: 8,
			Data: bytes.Repeat([]byte{1}, 40)},
		{Method: MethodBasic, CkptID: 1, DataLen: 40, ChunkSize: 8,
			Bitmap: []byte{0b00011}, Data: bytes.Repeat([]byte{2}, 16)},
		{Method: MethodList, CkptID: 1, DataLen: 40, ChunkSize: 8,
			FirstOcur: []uint32{4}, ShiftDupl: []ShiftRegion{{Node: 5, SrcNode: 4, SrcCkpt: 0}},
			Data: bytes.Repeat([]byte{3}, 8)},
		{Method: MethodTree, CkptID: 1, DataLen: 40, ChunkSize: 8,
			FirstOcur: []uint32{1}, ShiftDupl: []ShiftRegion{{Node: 6, SrcNode: 1, SrcCkpt: 1}},
			Data: bytes.Repeat([]byte{4}, 24)},
	}
}

// TestDiffDecodeTruncated truncates each method's encoding at every
// byte boundary. Every prefix crosses a different field — header
// scalars, region metadata, bitmap, data — and each must produce an
// error, never a panic or a partial diff.
func TestDiffDecodeTruncated(t *testing.T) {
	for _, d := range sampleDiffs() {
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		enc := buf.Bytes()
		for i := 0; i < len(enc); i++ {
			if got, err := Decode(bytes.NewReader(enc[:i])); err == nil {
				t.Errorf("%v diff truncated to %d/%d bytes decoded: %+v", d.Method, i, len(enc), got)
			}
		}
		if _, err := Decode(bytes.NewReader(enc)); err != nil {
			t.Errorf("%v valid diff rejected: %v", d.Method, err)
		}
	}
}

// corruptHeader encodes d, applies mutate to the header bytes, and
// returns the result of decoding the mutated stream.
func corruptHeader(t *testing.T, d *Diff, mutate func(hdr []byte)) error {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	mutate(enc[:headerSize])
	_, err := Decode(bytes.NewReader(enc))
	return err
}

// TestDiffDecodeHeaderCorruption flips each header field to an invalid
// value and checks for the matching typed error.
func TestDiffDecodeHeaderCorruption(t *testing.T) {
	base := sampleDiffs()[3] // Tree: has every section populated
	cases := []struct {
		name    string
		mutate  func(hdr []byte)
		wantSub string
	}{
		{"bad magic", func(h []byte) { h[0] ^= 0xFF }, "bad magic"},
		{"bad version", func(h []byte) { h[4] = 99 }, "unsupported version"},
		{"bad method", func(h []byte) { h[5] = 42 }, "unknown method"},
		{"huge data length", func(h []byte) {
			binary.LittleEndian.PutUint64(h[10:], 1<<50)
		}, "implausible data length"},
		{"zero chunk size with metadata", func(h []byte) {
			binary.LittleEndian.PutUint32(h[18:], 0)
		}, "zero chunk size"},
		{"region count beyond tree", func(h []byte) {
			binary.LittleEndian.PutUint32(h[22:], 1<<31)
		}, "tree nodes"},
		{"shift count beyond tree", func(h []byte) {
			binary.LittleEndian.PutUint32(h[26:], 1<<31)
		}, "tree nodes"},
		{"bitmap beyond chunks", func(h []byte) {
			binary.LittleEndian.PutUint32(h[30:], 1<<30)
		}, "exceeds"},
		{"data beyond buffer", func(h []byte) {
			binary.LittleEndian.PutUint64(h[34:], 1<<40)
		}, "exceeds buffer length"},
		{"raw length beyond buffer", func(h []byte) {
			h[42] = 1 // pretend a codec
			binary.LittleEndian.PutUint64(h[43:], 1<<40)
		}, "raw data length"},
	}
	for _, tc := range cases {
		err := corruptHeader(t, base, tc.mutate)
		if err == nil {
			t.Errorf("%s: decoded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err=%v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}
