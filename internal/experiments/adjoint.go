package experiments

import (
	"bytes"
	"fmt"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
	"github.com/gpuckpt/gpuckpt/internal/stencil"
)

// AdjointResult aggregates one (solver, method) cell of the adjoint
// study.
type AdjointResult struct {
	Solver     string
	Method     string
	Steps      int
	InputBytes int64
	Stored     int64
	Ratio      float64
	Throughput float64
}

// Adjoint runs the §5 "other application classes" study: time-stepped
// PDE solvers checkpoint every step (the adjoint forward pass, §1's
// 10 ms-interval scenario), then the backward pass restores every
// intermediate state in reverse and verifies it bit-exactly against
// the forward pass.
func Adjoint(cfg Config) (*metrics.Table, []AdjointResult, error) {
	cfg = cfg.withDefaults()
	// Grid sized so the state is comparable to the GDV buffers.
	side := 64
	if cfg.TargetVertices >= 4096 {
		side = 128
	}
	steps := cfg.NumCheckpoints * 3

	solvers := []func() (stencil.Solver, error){
		func() (stencil.Solver, error) { return stencil.NewHeat2D(side, 100) },
		func() (stencil.Solver, error) { return stencil.NewWave2D(side, 10) },
	}
	t := metrics.NewTable(
		fmt.Sprintf("Adjoint scenario (§5): %d forward steps, checkpoint every step, backward pass verified", steps),
		"Solver", "Method", "Stored", "Ratio", "Throughput")
	pool := parallel.NewPool(cfg.Workers)
	var out []AdjointResult

	for _, mk := range solvers {
		for _, m := range checkpoint.Methods() {
			solver, err := mk()
			if err != nil {
				return nil, nil, err
			}
			dev := device.New(device.A100(), pool, nil)
			d, err := dedup.New(m, solver.StateLen(), dev, dedup.Options{ChunkSize: cfg.ChunkSize})
			if err != nil {
				return nil, nil, err
			}

			img := make([]byte, solver.StateLen())
			forward := make([][]byte, 0, steps)
			res := AdjointResult{Solver: solver.Name(), Method: m.String(), Steps: steps}
			for s := 0; s < steps; s++ {
				if err := solver.SerializeInto(img); err != nil {
					d.Close()
					return nil, nil, err
				}
				forward = append(forward, append([]byte(nil), img...))
				_, st, err := d.Checkpoint(img)
				if err != nil {
					d.Close()
					return nil, nil, fmt.Errorf("experiments: adjoint %s/%v step %d: %w", solver.Name(), m, s, err)
				}
				res.InputBytes += st.InputBytes
				res.Stored += st.DiffBytes
				solver.Step()
			}
			// Backward pass: every intermediate state, newest first.
			for s := steps - 1; s >= 0; s-- {
				state, err := d.Restore(s)
				if err != nil {
					d.Close()
					return nil, nil, err
				}
				if !bytes.Equal(state, forward[s]) {
					d.Close()
					return nil, nil, fmt.Errorf("experiments: adjoint %s/%v: backward state %d differs", solver.Name(), m, s)
				}
			}
			if res.Stored > 0 {
				res.Ratio = float64(res.InputBytes) / float64(res.Stored)
			}
			if el := dev.Elapsed(); el > 0 {
				res.Throughput = float64(res.InputBytes) / el.Seconds()
			}
			d.Close()
			t.Add(res.Solver, res.Method, metrics.Bytes(res.Stored),
				metrics.Ratio(res.Ratio), metrics.GBps(res.Throughput))
			out = append(out, res)
		}
	}
	return t, out, nil
}

// adjointRowsByMethod indexes results for assertions and reports.
func adjointRowsByMethod(rows []AdjointResult, solver, method string) (AdjointResult, bool) {
	for _, r := range rows {
		if r.Solver == solver && r.Method == method {
			return r, true
		}
	}
	return AdjointResult{}, false
}
