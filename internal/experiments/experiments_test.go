package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps the suite fast: tiny graphs, k=3, few points.
func smallCfg() Config {
	return Config{
		TargetVertices:  1200,
		MaxGraphletSize: 3,
		ChunkSizes:      []int{64, 256},
		Frequencies:     []int{2, 4},
		ProcCounts:      []int{1, 2},
		NumCheckpoints:  4,
		VerifyRestore:   true,
	}
}

func TestDefaultConfig(t *testing.T) {
	d := DefaultConfig()
	if d.TargetVertices <= 0 || len(d.ChunkSizes) != 5 || len(d.Frequencies) != 3 {
		t.Fatalf("defaults wrong: %+v", d)
	}
	// withDefaults fills empty fields.
	c := Config{}.withDefaults()
	if c.NumCheckpoints != d.NumCheckpoints || c.ChunkSize != d.ChunkSize {
		t.Fatal("withDefaults incomplete")
	}
}

func TestTable1(t *testing.T) {
	tb, err := Table1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tb.Rows))
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Message Race", "Asia OSM", "Delaunay N24"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table missing %s:\n%s", name, out)
		}
	}
}

func TestFig4(t *testing.T) {
	tb, rows, err := Fig4(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 4 graphs x 2 chunk sizes x 4 methods.
	if len(rows) != 4*2*4 {
		t.Fatalf("%d rows, want %d", len(rows), 4*2*4)
	}
	if len(tb.Rows) != len(rows) {
		t.Fatal("table/row mismatch")
	}
	// Tree must beat Full's ratio on every graph at every chunk size.
	ratios := map[string]map[int]map[string]float64{}
	for _, r := range rows {
		if ratios[r.Graph] == nil {
			ratios[r.Graph] = map[int]map[string]float64{}
		}
		if ratios[r.Graph][r.ChunkSize] == nil {
			ratios[r.Graph][r.ChunkSize] = map[string]float64{}
		}
		ratios[r.Graph][r.ChunkSize][r.Label] = r.Ratio
		if !r.RestoreVerified {
			t.Fatalf("row %s/%s not restore-verified", r.Graph, r.Label)
		}
	}
	for g, byChunk := range ratios {
		for cs, byMethod := range byChunk {
			if byMethod["Tree"] <= byMethod["Full"] {
				t.Errorf("%s chunk %d: Tree ratio %.2f <= Full %.2f", g, cs, byMethod["Tree"], byMethod["Full"])
			}
		}
	}
}

func TestFig5(t *testing.T) {
	cfg := smallCfg()
	_, rows, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 graphs x 2 frequencies x (4 methods + 5 codecs).
	want := 4 * 2 * (4 + 5)
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	// Every codec row has a ratio above 1 on GDV data.
	for _, r := range rows {
		if r.Label == "Zstd*" && r.Ratio <= 1 {
			t.Fatalf("Zstd* ratio %.2f", r.Ratio)
		}
	}
}

func TestFig5RejectsNonDivisorFrequencies(t *testing.T) {
	cfg := smallCfg()
	cfg.Frequencies = []int{3, 4}
	if _, _, err := Fig5(cfg); err == nil {
		t.Fatal("non-divisor frequencies accepted")
	}
}

func TestFig6(t *testing.T) {
	tb, rows, err := Fig6(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 proc counts x 2 methods
		t.Fatalf("%d rows, want 4", len(rows))
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Method == "Tree" && r.Ratio <= 1 {
			t.Fatalf("Tree scaling ratio %.2f at %d procs", r.Ratio, r.Procs)
		}
	}
}

func TestAblation(t *testing.T) {
	tb, rows, err := Ablation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || len(tb.Rows) != 6 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	base := rows[0]  // paper config
	list := rows[1]  // no compaction
	crypt := rows[5] // expensive hash
	if base.MetaBytes > list.MetaBytes {
		t.Fatalf("compaction increased metadata: %d vs %d", base.MetaBytes, list.MetaBytes)
	}
	if crypt.Throughput >= base.Throughput {
		t.Fatalf("MD5-class hash (%.2e B/s) not slower than Murmur3 (%.2e B/s)",
			crypt.Throughput, base.Throughput)
	}
}

func TestOverhead(t *testing.T) {
	tb, results, err := Overhead(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 || len(results) != 4 {
		t.Fatalf("%d rows, %d results", len(tb.Rows), len(results))
	}
	full := results["Full"]
	tree := results["Tree"]
	// The paper's architecture claim: Full hits host-buffer
	// backpressure at paper-scale sizes; Tree does not.
	if full.SpaceStall == 0 {
		t.Fatal("Full never stalled on host-buffer space")
	}
	if tree.SpaceStall > 0 {
		t.Fatalf("Tree stalled %v on host-buffer space", tree.SpaceStall)
	}
	if tree.IOOverhead() >= full.IOOverhead() {
		t.Fatalf("Tree I/O overhead %v not below Full %v", tree.IOOverhead(), full.IOOverhead())
	}
	if tree.BytesToPFS >= full.BytesToPFS {
		t.Fatal("Tree shipped more bytes than Full")
	}
	if full.Makespan <= 0 || tree.AllFlushed < tree.Makespan {
		t.Fatal("implausible timeline")
	}
}

func TestExtensions(t *testing.T) {
	tb, rows, err := Extensions(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || len(tb.Rows) != 7 {
		t.Fatalf("%d extension rows", len(rows))
	}
	base := rows[0]
	for _, r := range rows[1:] {
		if !r.RestoreVerified {
			t.Fatalf("%s not restore-verified", r.Label)
		}
	}
	// Compressing first occurrences must not grow the record.
	for _, i := range []int{1, 2, 3} {
		if rows[i].StoredBytes > base.StoredBytes {
			t.Fatalf("%s stored %d > baseline %d", rows[i].Label, rows[i].StoredBytes, base.StoredBytes)
		}
	}
	// Streaming must not reduce throughput.
	if rows[4].Throughput < base.Throughput {
		t.Fatalf("streaming throughput %.2e below baseline %.2e", rows[4].Throughput, base.Throughput)
	}
	// Verification changes nothing on collision-free input.
	if rows[6].StoredBytes != base.StoredBytes {
		t.Fatalf("verification changed stored bytes: %d vs %d", rows[6].StoredBytes, base.StoredBytes)
	}
}

func TestAdjoint(t *testing.T) {
	cfg := smallCfg()
	tb, rows, err := Adjoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 || len(tb.Rows) != 8 { // 2 solvers x 4 methods
		t.Fatalf("%d adjoint rows", len(rows))
	}
	for _, solver := range []string{"heat2d", "wave2d"} {
		full, ok1 := adjointRowsByMethod(rows, solver, "Full")
		tree, ok2 := adjointRowsByMethod(rows, solver, "Tree")
		if !ok1 || !ok2 {
			t.Fatalf("%s rows missing", solver)
		}
		if tree.Stored >= full.Stored {
			t.Fatalf("%s: Tree stored %d not below Full %d", solver, tree.Stored, full.Stored)
		}
		if tree.Ratio <= 1 || tree.Throughput <= 0 {
			t.Fatalf("%s: degenerate tree row %+v", solver, tree)
		}
	}
}

func TestHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The shape-regression harness needs a scale where the paper's
	// trends are visible; 6000 vertices / maxk 4 suffices and runs in
	// a few seconds.
	cfg := Config{
		TargetVertices:  6000,
		MaxGraphletSize: 4,
		ChunkSizes:      []int{32, 128, 512},
		Frequencies:     []int{5, 10, 20},
		ProcCounts:      []int{1, 8},
		NumCheckpoints:  10,
	}
	tb, claims, err := Headline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 7 || len(tb.Rows) != 7 {
		t.Fatalf("%d claims", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: %s (%s)", c.ID, c.Text, c.Detail)
		}
	}
	if !allPass(claims) && !t.Failed() {
		t.Error("allPass inconsistent")
	}
}
