package experiments

import (
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/workload"
)

// Extensions benchmarks the paper's §5 future-work directions as
// implemented by this repository: combining de-duplication with
// compression of the first-time occurrences, and streaming methods
// that overlap de-duplication with host transfers.
func Extensions(cfg Config) (*metrics.Table, []workload.Row, error) {
	cfg = cfg.withDefaults()
	series, err := buildSeries(cfg, "Message Race", cfg.NumCheckpoints)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable(
		"§5 extensions: Tree combined with compression and streaming (Message Race)",
		"Variant", "Stored", "Ratio", "Throughput")
	variants := []struct {
		name string
		opts dedup.Options
	}{
		{"Tree (baseline)", dedup.Options{}},
		{"Tree + LZ4 first occurrences", dedup.Options{Compressor: compress.NewLZ4()}},
		{"Tree + Cascaded first occurrences", dedup.Options{Compressor: compress.NewCascaded()}},
		{"Tree + Zstd* first occurrences", dedup.Options{Compressor: compress.NewZstdProxy()}},
		{"Tree + streaming transfers", dedup.Options{StreamingTransfer: true}},
		{"Tree + Cascaded + streaming", dedup.Options{Compressor: compress.NewCascaded(), StreamingTransfer: true}},
		{"Tree + duplicate verification", dedup.Options{VerifyDuplicates: true}},
	}
	var rows []workload.Row
	for _, v := range variants {
		row, err := workload.RunMethod(series, checkpoint.MethodTree, workload.Options{
			ChunkSize:     cfg.ChunkSize,
			Workers:       cfg.Workers,
			VerifyRestore: true, // extensions must never trade away correctness
			Pipelined:     cfg.Pipelined,
			Dedup:         v.opts,
		})
		if err != nil {
			return nil, nil, err
		}
		row.Label = v.name
		t.Add(v.name, metrics.Bytes(row.StoredBytes), metrics.Ratio(row.Ratio), metrics.GBps(row.Throughput))
		rows = append(rows, row)
	}
	return t, rows, nil
}
