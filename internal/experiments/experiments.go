// Package experiments regenerates every table and figure of the
// paper's evaluation section (Tan et al., ICPP 2023, §3) plus the
// ablation studies of the §2 design choices. It is shared by the
// ckptbench CLI and the repository's benchmark suite; EXPERIMENTS.md
// records the paper-vs-measured comparison produced from these runs.
package experiments

import (
	"fmt"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
	"github.com/gpuckpt/gpuckpt/internal/workload"
)

// Config scales and parameterizes the experiment suite.
type Config struct {
	// TargetVertices scales every input graph (paper scale: 11-18 M).
	TargetVertices int
	// Workers for enumeration and kernels (0 = GOMAXPROCS).
	Workers int
	// Seed drives the synthetic graph generators.
	Seed int64
	// MaxGraphletSize for ORANGES (paper: 5; default 4 for speed).
	MaxGraphletSize int
	// ChunkSizes for Figure 4 (paper: 32..512).
	ChunkSizes []int
	// Frequencies for Figure 5 (paper: 5, 10, 20).
	Frequencies []int
	// ProcCounts for Figure 6 (paper: 1..64).
	ProcCounts []int
	// NumCheckpoints for Figures 4 and 6 (paper: 10).
	NumCheckpoints int
	// ChunkSize for Figures 5 and 6.
	ChunkSize int
	// VerifyRestore re-derives every checkpoint after each run.
	VerifyRestore bool
	// ApplyGorder enables the Gorder pre-process (the generators emit
	// trace order natively; see DESIGN.md).
	ApplyGorder bool
	// Pipelined runs every method through the asynchronous checkpoint
	// engine (dedup.CheckpointAsync); output is bit-identical.
	Pipelined bool
}

// DefaultConfig returns the laptop-scale defaults (about 1/500 of the
// paper's input sizes; every dimension of the experiments is kept).
func DefaultConfig() Config {
	return Config{
		TargetVertices:  20000,
		MaxGraphletSize: 4,
		ChunkSizes:      []int{32, 64, 128, 256, 512},
		Frequencies:     []int{5, 10, 20},
		ProcCounts:      []int{1, 2, 4, 8, 16, 32, 64},
		NumCheckpoints:  10,
		ChunkSize:       128,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.TargetVertices <= 0 {
		c.TargetVertices = d.TargetVertices
	}
	if c.MaxGraphletSize == 0 {
		c.MaxGraphletSize = d.MaxGraphletSize
	}
	if len(c.ChunkSizes) == 0 {
		c.ChunkSizes = d.ChunkSizes
	}
	if len(c.Frequencies) == 0 {
		c.Frequencies = d.Frequencies
	}
	if len(c.ProcCounts) == 0 {
		c.ProcCounts = d.ProcCounts
	}
	if c.NumCheckpoints <= 0 {
		c.NumCheckpoints = d.NumCheckpoints
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = d.ChunkSize
	}
	return c
}

// singleGPUGraphs are the four inputs of the single-process scenarios
// (§3.2: "Delaunay is used for the scaling test").
var singleGPUGraphs = []string{"Message Race", "Unstructured Mesh", "Asia OSM", "Hugebubbles"}

// buildGraph generates and (optionally) Gorders one catalog input.
func buildGraph(cfg Config, name string) (*graph.Graph, error) {
	entry, err := graph.CatalogByName(name)
	if err != nil {
		return nil, err
	}
	g, err := entry.Generate(cfg.TargetVertices, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.ApplyGorder {
		return graph.ApplyGorder(g, 5)
	}
	return g, nil
}

// buildSeries generates the GDV snapshot series for one input.
func buildSeries(cfg Config, name string, checkpoints int) (*workload.Series, error) {
	g, err := buildGraph(cfg, name)
	if err != nil {
		return nil, err
	}
	pool := parallel.NewPool(cfg.Workers)
	defer pool.Close()
	return workload.BuildGDVSeries(g, checkpoints, cfg.MaxGraphletSize, pool)
}

// Table1 reproduces Table 1: the input graphs with their sizes, plus
// the paper's reference values for comparison.
func Table1(cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Table 1: input graphs (scaled to ~%d vertices; paper values in parentheses)", cfg.TargetVertices),
		"Graph", "|V|", "|E|", "GDV size", "paper |V|", "paper GDV")
	paperGDV := map[string]string{
		"Message Race": "3.26 GB", "Unstructured Mesh": "4.21 GB",
		"Asia OSM": "3.49 GB", "Hugebubbles": "5.35 GB", "Delaunay N24": "4.9 GB",
	}
	for _, e := range graph.Catalog() {
		g, err := buildGraph(cfg, e.Name)
		if err != nil {
			return nil, err
		}
		s := g.Summary()
		gdvBytes := int64(s.Vertices) * oranges.NumOrbits * 4
		t.Add(
			s.Name,
			fmt.Sprintf("%d", s.Vertices),
			fmt.Sprintf("%d", s.Edges/2),
			metrics.Bytes(gdvBytes),
			fmt.Sprintf("%d", e.PaperVertices),
			paperGDV[e.Name],
		)
	}
	return t, nil
}

func addRow(t *metrics.Table, r workload.Row) {
	t.Add(
		r.Graph,
		r.Label,
		fmt.Sprintf("%d", r.ChunkSize),
		fmt.Sprintf("%d", r.NumCkpts),
		metrics.Bytes(r.StoredBytes),
		metrics.Ratio(r.Ratio),
		metrics.GBps(r.Throughput),
	)
}

// Fig4 reproduces Figure 4: de-duplication ratio and throughput vs
// chunk size for Tree vs Full/Basic/List on the four single-GPU
// graphs.
func Fig4(cfg Config) (*metrics.Table, []workload.Row, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable(
		"Figure 4: impact of chunk size (single GPU, 10 checkpoints)",
		"Graph", "Method", "Chunk", "N", "Stored", "Ratio", "Throughput")
	var all []workload.Row
	for _, name := range singleGPUGraphs {
		series, err := buildSeries(cfg, name, cfg.NumCheckpoints)
		if err != nil {
			return nil, nil, err
		}
		rows, err := workload.ChunkSweep(series, checkpoint.Methods(), cfg.ChunkSizes,
			workload.Options{Workers: cfg.Workers, VerifyRestore: cfg.VerifyRestore, Pipelined: cfg.Pipelined})
		if err != nil {
			return nil, nil, err
		}
		for _, r := range rows {
			addRow(t, r)
		}
		all = append(all, rows...)
	}
	return t, all, nil
}

// Fig5 reproduces Figure 5: de-duplication ratio and throughput vs
// checkpoint frequency (N = 5, 10, 20) including the nvCOMP-family
// compression baselines.
func Fig5(cfg Config) (*metrics.Table, []workload.Row, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable(
		"Figure 5: impact of checkpoint frequency (single GPU)",
		"Graph", "Method", "Chunk", "N", "Stored", "Ratio", "Throughput")
	base := 0
	for _, n := range cfg.Frequencies {
		if n > base {
			base = n
		}
	}
	for _, n := range cfg.Frequencies {
		if base%n != 0 {
			return nil, nil, fmt.Errorf("experiments: frequency %d does not divide base series %d", n, base)
		}
	}
	var all []workload.Row
	for _, name := range singleGPUGraphs {
		series, err := buildSeries(cfg, name, base)
		if err != nil {
			return nil, nil, err
		}
		rows, err := workload.Frequency(series, cfg.Frequencies, checkpoint.Methods(), compress.Registry(),
			workload.Options{ChunkSize: cfg.ChunkSize, Workers: cfg.Workers, VerifyRestore: cfg.VerifyRestore, Pipelined: cfg.Pipelined})
		if err != nil {
			return nil, nil, err
		}
		for _, r := range rows {
			addRow(t, r)
		}
		all = append(all, rows...)
	}
	return t, all, nil
}

// Fig6 reproduces Figure 6: strong scaling on the Delaunay input —
// total checkpoint size and aggregate throughput, Tree vs Full.
func Fig6(cfg Config) (*metrics.Table, []workload.ScalingRow, error) {
	cfg = cfg.withDefaults()
	g, err := buildGraph(cfg, "Delaunay N24")
	if err != nil {
		return nil, nil, err
	}
	rows, err := workload.Scaling(workload.ScalingConfig{
		Graph:           g,
		ProcCounts:      cfg.ProcCounts,
		GPUsPerNode:     8,
		NumCheckpoints:  cfg.NumCheckpoints,
		MaxGraphletSize: cfg.MaxGraphletSize,
		Methods:         []checkpoint.Method{checkpoint.MethodFull, checkpoint.MethodTree},
		Options:         workload.Options{ChunkSize: cfg.ChunkSize, Workers: cfg.Workers},
	})
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable(
		"Figure 6: strong scaling, Delaunay input (10 checkpoints per process)",
		"Procs", "Method", "Total ckpt size", "Reduction", "Agg throughput")
	reduction := map[int]float64{}
	for _, r := range rows {
		if r.Method == "Full" {
			reduction[r.Procs] = float64(r.TotalStored)
		}
	}
	for _, r := range rows {
		red := "1.00x"
		if full, ok := reduction[r.Procs]; ok && r.TotalStored > 0 {
			red = metrics.Ratio(full / float64(r.TotalStored))
		}
		t.Add(
			fmt.Sprintf("%d", r.Procs),
			r.Method,
			metrics.Bytes(r.TotalStored),
			red,
			metrics.GBps(r.Throughput),
		)
	}
	return t, rows, nil
}

// Ablation benchmarks the §2 design choices on the Message Race input:
// metadata compaction (Tree vs List), two-stage labeling, team-based
// gather, kernel fusion, and the Murmur3-vs-cryptographic hash choice.
func Ablation(cfg Config) (*metrics.Table, []workload.Row, error) {
	cfg = cfg.withDefaults()
	series, err := buildSeries(cfg, "Message Race", cfg.NumCheckpoints)
	if err != nil {
		return nil, nil, err
	}
	t := metrics.NewTable(
		"Ablation: design choices of §2 (Message Race, Tree method)",
		"Variant", "Stored", "Metadata", "Ratio", "Throughput")
	variants := []struct {
		name   string
		method checkpoint.Method
		opts   dedup.Options
	}{
		{"Tree (paper config)", checkpoint.MethodTree, dedup.Options{}},
		{"no metadata compaction (List)", checkpoint.MethodList, dedup.Options{}},
		{"single-stage labeling", checkpoint.MethodTree, dedup.Options{SingleStage: true}},
		{"per-thread gather", checkpoint.MethodTree, dedup.Options{PerThreadGather: true}},
		{"unfused kernels", checkpoint.MethodTree, dedup.Options{Unfused: true}},
		{"MD5-class hash (20x cost)", checkpoint.MethodTree, dedup.Options{HashCostMultiplier: 20}},
	}
	var all []workload.Row
	for _, v := range variants {
		row, err := workload.RunMethod(series, v.method, workload.Options{
			ChunkSize:     cfg.ChunkSize,
			Workers:       cfg.Workers,
			VerifyRestore: cfg.VerifyRestore,
			Pipelined:     cfg.Pipelined,
			Dedup:         v.opts,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: ablation %q: %w", v.name, err)
		}
		row.Label = v.name
		t.Add(v.name, metrics.Bytes(row.StoredBytes), metrics.Bytes(row.MetaBytes),
			metrics.Ratio(row.Ratio), metrics.GBps(row.Throughput))
		all = append(all, row)
	}
	return t, all, nil
}
