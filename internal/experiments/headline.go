package experiments

import (
	"fmt"

	"github.com/gpuckpt/gpuckpt/internal/metrics"
)

// Claim is one qualitative statement of the paper checked against a
// measured run.
type Claim struct {
	ID     string
	Text   string
	Detail string
	Pass   bool
}

// Headline runs Figures 4-6 and the overhead study, then checks the
// paper's qualitative claims — the orderings, trends and crossovers
// that must survive any substrate — and reports PASS/FAIL per claim.
// It is the reproduction's regression harness: if a code change flips
// one of these, the reproduction is broken even though unit tests may
// still pass.
func Headline(cfg Config) (*metrics.Table, []Claim, error) {
	cfg = cfg.withDefaults()
	_, fig4, err := Fig4(cfg)
	if err != nil {
		return nil, nil, err
	}
	_, fig5, err := Fig5(cfg)
	if err != nil {
		return nil, nil, err
	}
	_, fig6, err := Fig6(cfg)
	if err != nil {
		return nil, nil, err
	}
	_, overhead, err := Overhead(cfg)
	if err != nil {
		return nil, nil, err
	}

	ratio4 := func(g, m string, chunk int) float64 {
		for _, r := range fig4 {
			if r.Graph == g && r.Label == m && r.ChunkSize == chunk {
				return r.Ratio
			}
		}
		return -1
	}
	tput4 := func(g, m string, chunk int) float64 {
		for _, r := range fig4 {
			if r.Graph == g && r.Label == m && r.ChunkSize == chunk {
				return r.Throughput
			}
		}
		return -1
	}
	ratio5 := func(g, m string, n int) float64 {
		for _, r := range fig5 {
			if r.Graph == g && r.Label == m && r.NumCkpts == n {
				return r.Ratio
			}
		}
		return -1
	}

	minChunk, maxChunk := cfg.ChunkSizes[0], cfg.ChunkSizes[0]
	for _, c := range cfg.ChunkSizes {
		if c < minChunk {
			minChunk = c
		}
		if c > maxChunk {
			maxChunk = c
		}
	}
	minN, maxN := cfg.Frequencies[0], cfg.Frequencies[0]
	for _, n := range cfg.Frequencies {
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}

	var claims []Claim
	add := func(id, text string, pass bool, detail string) {
		claims = append(claims, Claim{ID: id, Text: text, Pass: pass, Detail: detail})
	}

	// C1: method ordering at fine granularity (Fig. 4).
	pass := true
	detail := ""
	for _, g := range singleGPUGraphs {
		tr, li, ba, fu := ratio4(g, "Tree", minChunk), ratio4(g, "List", minChunk),
			ratio4(g, "Basic", minChunk), ratio4(g, "Full", minChunk)
		if !(tr >= li && li > ba && ba > fu) {
			pass = false
			detail = fmt.Sprintf("%s: tree %.1f list %.1f basic %.1f full %.1f", g, tr, li, ba, fu)
			break
		}
	}
	add("C1", fmt.Sprintf("ratio ordering Tree>=List>Basic>Full at %dB chunks, all graphs", minChunk), pass, detail)

	// C2: finer chunks improve the Tree ratio (Fig. 4).
	pass, detail = true, ""
	for _, g := range singleGPUGraphs {
		if ratio4(g, "Tree", minChunk) <= ratio4(g, "Tree", maxChunk) {
			pass = false
			detail = fmt.Sprintf("%s: %dB %.1f vs %dB %.1f", g, minChunk,
				ratio4(g, "Tree", minChunk), maxChunk, ratio4(g, "Tree", maxChunk))
			break
		}
	}
	add("C2", "Tree ratio improves as chunks shrink", pass, detail)

	// C3: throughput degrades below 256 B (Fig. 4).
	pass, detail = true, ""
	if len(cfg.ChunkSizes) >= 2 {
		second := cfg.ChunkSizes[1]
		for _, g := range singleGPUGraphs {
			if tput4(g, "Tree", minChunk) >= tput4(g, "Tree", second)*1.01 {
				pass = false
				detail = fmt.Sprintf("%s: %dB %.1f GB/s vs %dB %.1f GB/s", g, minChunk,
					tput4(g, "Tree", minChunk)/1e9, second, tput4(g, "Tree", second)/1e9)
				break
			}
		}
	}
	add("C3", "throughput degrades at the smallest chunks", pass, detail)

	// C4: Tree ratio grows with checkpoint frequency; compression
	// barely moves (Fig. 5).
	pass, detail = true, ""
	for _, g := range singleGPUGraphs {
		tGrowth := ratio5(g, "Tree", maxN) / ratio5(g, "Tree", minN)
		zGrowth := ratio5(g, "Zstd*", maxN) / ratio5(g, "Zstd*", minN)
		if tGrowth < 1.2 || tGrowth <= zGrowth {
			pass = false
			detail = fmt.Sprintf("%s: tree growth %.2fx, zstd growth %.2fx", g, tGrowth, zGrowth)
			break
		}
	}
	add("C4", "temporal redundancy: Tree ratio grows with N, compression does not keep pace", pass, detail)

	// C5: compression wins at low frequency (Fig. 5).
	pass, detail = true, ""
	for _, g := range singleGPUGraphs {
		if ratio5(g, "Tree", minN) >= ratio5(g, "Zstd*", minN) {
			pass = false
			detail = fmt.Sprintf("%s: tree %.1f vs zstd %.1f at N=%d", g,
				ratio5(g, "Tree", minN), ratio5(g, "Zstd*", minN), minN)
			break
		}
	}
	add("C5", fmt.Sprintf("Zstd* beats Tree at N=%d on every graph", minN), pass, detail)

	// C6: strong scaling — reduction grows with process count and Tree
	// out-throughputs Full (Fig. 6).
	var firstRed, lastRed, treeT, fullT float64
	minProcs, maxProcs := 1<<30, 0
	for _, r := range fig6 {
		if r.Procs < minProcs {
			minProcs = r.Procs
		}
		if r.Procs > maxProcs {
			maxProcs = r.Procs
		}
	}
	for _, r := range fig6 {
		if r.Method == "Tree" && r.Procs == minProcs {
			firstRed = r.Ratio
		}
		if r.Method == "Tree" && r.Procs == maxProcs {
			lastRed = r.Ratio
			treeT = r.Throughput
		}
		if r.Method == "Full" && r.Procs == maxProcs {
			fullT = r.Throughput
		}
	}
	pass = lastRed > firstRed && treeT > fullT && lastRed > 10
	add("C6", "scaling: reduction grows with processes and stays >10x; Tree out-throughputs Full",
		pass, fmt.Sprintf("reduction %.1fx -> %.1fx; throughput tree %.0f vs full %.0f GB/s",
			firstRed, lastRed, treeT/1e9, fullT/1e9))

	// C7: end-to-end I/O overhead collapses by >=10x (§1, §2.3).
	fullOv := overhead["Full"].IOOverhead()
	treeOv := overhead["Tree"].IOOverhead()
	pass = treeOv*10 < fullOv && overhead["Tree"].SpaceStall == 0
	add("C7", "async runtime: Tree I/O overhead >=10x below Full, no backpressure stalls",
		pass, fmt.Sprintf("full %v vs tree %v", fullOv, treeOv))

	t := metrics.NewTable(
		fmt.Sprintf("Headline claims at ~%d vertices (the reproduction's shape-regression harness)", cfg.TargetVertices),
		"Claim", "Statement", "Result", "Detail")
	for _, c := range claims {
		res := "PASS"
		if !c.Pass {
			res = "FAIL"
		}
		t.Add(c.ID, c.Text, res, c.Detail)
	}
	return t, claims, nil
}

// allPass reports whether every claim passed.
func allPass(claims []Claim) bool {
	for _, c := range claims {
		if !c.Pass {
			return false
		}
	}
	return true
}
