package experiments

import (
	"fmt"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/metrics"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
	"github.com/gpuckpt/gpuckpt/internal/storage"
)

// Overhead runs the end-to-end I/O overhead study of the paper's §2.3
// architecture (Figure 3): 64 processes on a ThetaGPU-like system
// checkpoint at a fixed interval; the asynchronous multi-level runtime
// drains host buffers to SSDs and the shared Lustre file system. The
// paper's headline — de-duplication "reduces the I/O overhead ... by
// up to orders of magnitude" (§1) — appears as host-buffer
// backpressure stalls for Full that vanish under Tree.
//
// The de-duplication stalls and diff sizes are measured on the scaled
// workload and projected to paper scale (11 M vertices, 3.26 GB GDV)
// by the vertex-count ratio, so the storage system is exercised at the
// data volumes the paper's machines saw.
func Overhead(cfg Config) (*metrics.Table, map[string]storage.Result, error) {
	cfg = cfg.withDefaults()
	const (
		procs       = 64
		gpusPerNode = 8
		interval    = 1 * time.Second
	)
	entry, err := graph.CatalogByName("Message Race")
	if err != nil {
		return nil, nil, err
	}
	scale := float64(entry.PaperVertices) / float64(cfg.TargetVertices)
	series, err := buildSeries(cfg, "Message Race", cfg.NumCheckpoints)
	if err != nil {
		return nil, nil, err
	}

	t := metrics.NewTable(
		fmt.Sprintf("I/O overhead: %d procs, %v checkpoint interval, ALCF-like tiers (sizes projected x%.0f to paper scale)",
			procs, interval, scale),
		"Method", "To PFS", "Dedup stall", "Space stall", "I/O overhead", "Makespan")
	results := make(map[string]storage.Result, 4)

	pool := parallel.NewPool(cfg.Workers)
	for _, m := range checkpoint.Methods() {
		dev := device.New(device.A100(), pool, nil)
		dev.Node().SetConcurrentTransfers(gpusPerNode)
		d, err := dedup.New(m, series.DataLen, dev, dedup.Options{ChunkSize: cfg.ChunkSize})
		if err != nil {
			return nil, nil, err
		}
		stalls := make([]time.Duration, 0, len(series.Images))
		sizes := make([]int64, 0, len(series.Images))
		for ck, img := range series.Images {
			_, st, err := d.Checkpoint(img)
			if err != nil {
				d.Close()
				return nil, nil, fmt.Errorf("experiments: overhead %v ckpt %d: %w", m, ck, err)
			}
			stalls = append(stalls, time.Duration(float64(st.DedupTime+st.TransferTime)*scale))
			sizes = append(sizes, int64(float64(st.DiffBytes)*scale))
		}
		d.Close()

		res, err := storage.Simulate(storage.ALCFSpec(procs/gpusPerNode), storage.JobConfig{
			Procs:           procs,
			NumCheckpoints:  len(series.Images),
			ComputeInterval: interval,
			CheckpointCost: func(proc, ck int) (time.Duration, int64) {
				return stalls[ck], sizes[ck]
			},
		})
		if err != nil {
			return nil, nil, err
		}
		results[m.String()] = res
		t.Add(
			m.String(),
			metrics.Bytes(res.BytesToPFS),
			res.DedupStall.Round(time.Millisecond).String(),
			res.SpaceStall.Round(time.Millisecond).String(),
			res.IOOverhead().Round(time.Millisecond).String(),
			res.Makespan.Round(time.Millisecond).String(),
		)
	}
	return t, results, nil
}
