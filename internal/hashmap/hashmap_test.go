package hashmap

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/gpuckpt/gpuckpt/internal/murmur3"
)

func digestOf(i int) murmur3.Digest {
	var b [8]byte
	b[0] = byte(i)
	b[1] = byte(i >> 8)
	b[2] = byte(i >> 16)
	b[3] = byte(i >> 24)
	return murmur3.Sum128(b[:], 99)
}

func TestInsertFind(t *testing.T) {
	m := New(100)
	for i := 0; i < 100; i++ {
		e := Entry{Node: uint32(i), Ckpt: 7}
		prev, inserted, err := m.InsertIfAbsent(digestOf(i), e)
		if err != nil || !inserted || prev != e {
			t.Fatalf("insert %d: prev=%v inserted=%v err=%v", i, prev, inserted, err)
		}
	}
	if m.Size() != 100 {
		t.Fatalf("size=%d want 100", m.Size())
	}
	for i := 0; i < 100; i++ {
		got, ok := m.Find(digestOf(i))
		if !ok || got.Node != uint32(i) || got.Ckpt != 7 {
			t.Fatalf("find %d: got=%v ok=%v", i, got, ok)
		}
	}
	if _, ok := m.Find(digestOf(1000)); ok {
		t.Fatal("found digest that was never inserted")
	}
	if m.Contains(digestOf(1000)) {
		t.Fatal("contains digest that was never inserted")
	}
}

func TestInsertDuplicateReturnsExisting(t *testing.T) {
	m := New(10)
	d := digestOf(1)
	first := Entry{Node: 5, Ckpt: 0}
	if _, inserted, _ := m.InsertIfAbsent(d, first); !inserted {
		t.Fatal("first insert failed")
	}
	prev, inserted, err := m.InsertIfAbsent(d, Entry{Node: 9, Ckpt: 1})
	if err != nil || inserted {
		t.Fatalf("duplicate insert reported inserted=%v err=%v", inserted, err)
	}
	if prev != first {
		t.Fatalf("duplicate insert returned %v, want %v", prev, first)
	}
	if m.Size() != 1 {
		t.Fatalf("size=%d want 1", m.Size())
	}
}

func TestFullTable(t *testing.T) {
	m := New(1)
	capacity := m.Capacity()
	var errs int
	for i := 0; i < capacity+10; i++ {
		_, _, err := m.InsertIfAbsent(digestOf(i), Entry{Node: uint32(i)})
		if err != nil {
			errs++
		}
	}
	if errs != 10 {
		t.Fatalf("got %d ErrFull, want 10 (capacity=%d)", errs, capacity)
	}
}

func TestUpdateIfEarlier(t *testing.T) {
	m := New(10)
	d := digestOf(3)
	m.InsertIfAbsent(d, Entry{Node: 50, Ckpt: 2})

	// Later node in same checkpoint: no swap.
	if _, swapped := m.UpdateIfEarlier(d, Entry{Node: 60, Ckpt: 2}); swapped {
		t.Fatal("swapped with a later node")
	}
	// Different checkpoint: no swap even if node is earlier.
	if _, swapped := m.UpdateIfEarlier(d, Entry{Node: 10, Ckpt: 3}); swapped {
		t.Fatal("swapped across checkpoints")
	}
	// Earlier node, same checkpoint: swap and report demoted entry.
	demoted, swapped := m.UpdateIfEarlier(d, Entry{Node: 20, Ckpt: 2})
	if !swapped || demoted.Node != 50 {
		t.Fatalf("swap failed: demoted=%v swapped=%v", demoted, swapped)
	}
	got, _ := m.Find(d)
	if got.Node != 20 {
		t.Fatalf("entry after swap = %v, want node 20", got)
	}
	// Missing digest: no swap.
	if _, swapped := m.UpdateIfEarlier(digestOf(999), Entry{}); swapped {
		t.Fatal("swapped a missing digest")
	}
}

func TestConcurrentDistinctInserts(t *testing.T) {
	const n = 20000
	m := New(n)
	var wg sync.WaitGroup
	workers := 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if _, inserted, err := m.InsertIfAbsent(digestOf(i), Entry{Node: uint32(i)}); err != nil || !inserted {
					t.Errorf("insert %d failed: inserted=%v err=%v", i, inserted, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Size() != n {
		t.Fatalf("size=%d want %d", m.Size(), n)
	}
	for i := 0; i < n; i++ {
		if e, ok := m.Find(digestOf(i)); !ok || e.Node != uint32(i) {
			t.Fatalf("lost entry %d: %v %v", i, e, ok)
		}
	}
}

// TestConcurrentRacingInserts verifies first-inserter-wins: many
// goroutines insert the same digest; exactly one must report
// inserted=true and everyone must agree on the winning entry.
func TestConcurrentRacingInserts(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		m := New(64)
		d := digestOf(trial)
		var wins int64
		var winner atomic.Uint64
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				e := Entry{Node: uint32(g), Ckpt: 1}
				prev, inserted, err := m.InsertIfAbsent(d, e)
				if err != nil {
					t.Errorf("unexpected error: %v", err)
					return
				}
				if inserted {
					atomic.AddInt64(&wins, 1)
					winner.Store(uint64(prev.Node) + 1)
				}
			}(g)
		}
		wg.Wait()
		if wins != 1 {
			t.Fatalf("trial %d: %d winners, want 1", trial, wins)
		}
		got, ok := m.Find(d)
		if !ok || uint64(got.Node)+1 != winner.Load() {
			t.Fatalf("trial %d: final entry %v does not match winner", trial, got)
		}
	}
}

// TestConcurrentUpdateConvergesToMinimum races UpdateIfEarlier from
// many goroutines: the stored node must converge to the global
// minimum, which is what guarantees deterministic FIRST_OCUR labels.
func TestConcurrentUpdateConvergesToMinimum(t *testing.T) {
	m := New(8)
	d := digestOf(0)
	m.InsertIfAbsent(d, Entry{Node: 1 << 30, Ckpt: 5})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.UpdateIfEarlier(d, Entry{Node: uint32(g*100 + i), Ckpt: 5})
			}
		}(g)
	}
	wg.Wait()
	got, _ := m.Find(d)
	if got.Node != 0 {
		t.Fatalf("converged to node %d, want 0", got.Node)
	}
}

func TestRange(t *testing.T) {
	m := New(16)
	for i := 0; i < 10; i++ {
		m.InsertIfAbsent(digestOf(i), Entry{Node: uint32(i)})
	}
	count := 0
	m.Range(func(d murmur3.Digest, e Entry) bool {
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("ranged over %d entries, want 10", count)
	}
	count = 0
	m.Range(func(murmur3.Digest, Entry) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early-exit range visited %d entries, want 1", count)
	}
}

func TestEntryPackRoundTrip(t *testing.T) {
	f := func(node, ckpt uint32) bool {
		e := Entry{Node: node, Ckpt: ckpt}
		return unpack(e.pack()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewSmall(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		m := New(n)
		if m.Capacity() < 2 {
			t.Fatalf("New(%d) capacity %d too small", n, m.Capacity())
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	m := New(b.N)
	digests := make([]murmur3.Digest, b.N)
	for i := range digests {
		digests[i] = digestOf(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.InsertIfAbsent(digests[i], Entry{Node: uint32(i)})
	}
}

func BenchmarkFindHit(b *testing.B) {
	const n = 1 << 16
	m := New(n)
	digests := make([]murmur3.Digest, n)
	for i := range digests {
		digests[i] = digestOf(i)
		m.InsertIfAbsent(digests[i], Entry{Node: uint32(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Find(digests[i&(n-1)])
	}
}

// TestProbeWraparound fills a small table so probes must wrap past the
// end of the slot array and still find/insert correctly.
func TestProbeWraparound(t *testing.T) {
	m := New(4) // capacity 8 or 16
	capacity := m.Capacity()
	inserted := 0
	for i := 0; inserted < capacity; i++ {
		if _, ok, err := m.InsertIfAbsent(digestOf(i), Entry{Node: uint32(i)}); err != nil {
			t.Fatalf("table filled early at %d/%d", inserted, capacity)
		} else if ok {
			inserted++
		}
	}
	// Every inserted key is findable even with a 100% load factor.
	found := 0
	for i := 0; found < capacity && i < capacity*64; i++ {
		if e, ok := m.Find(digestOf(i)); ok {
			if e.Node != uint32(i) {
				t.Fatalf("key %d maps to %v", i, e)
			}
			found++
		}
	}
	if found != capacity {
		t.Fatalf("found %d of %d keys in a full table", found, capacity)
	}
	// Updates work at full load too.
	m.UpdateIfEarlier(digestOf(0), Entry{Node: 0, Ckpt: 0})
}

func TestFindMissingInFullTable(t *testing.T) {
	m := New(2)
	capacity := m.Capacity()
	inserted := 0
	for i := 0; inserted < capacity; i++ {
		if _, ok, _ := m.InsertIfAbsent(digestOf(i), Entry{}); ok {
			inserted++
		}
	}
	// A missing key in a full table must terminate (probe bound).
	if _, ok := m.Find(digestOf(1 << 20)); ok {
		t.Fatal("found key that was never inserted")
	}
	if _, ok := m.UpdateIfEarlier(digestOf(1<<20), Entry{}); ok {
		t.Fatal("updated key that was never inserted")
	}
}
