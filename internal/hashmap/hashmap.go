// Package hashmap provides a lock-free, fixed-capacity, open-addressing
// concurrent hash table from 128-bit chunk digests to first-occurrence
// entries.
//
// It is the stand-in for Kokkos::UnorderedMap, which the paper uses as
// the "historical record of unique hashes" (Tan et al., ICPP 2023,
// §2.1, §2.4): thousands of GPU threads insert concurrently, the first
// inserter of a digest wins, and later inserters observe the winning
// entry. That first-inserter-wins semantics is load-bearing for
// Algorithm 1, which classifies a chunk as FIRST_OCUR exactly when its
// insert succeeds.
//
// The table never rehashes: like its Kokkos counterpart it is sized up
// front (the dedup layer sizes it to hold every tree node of the
// checkpoint record) and reports failure when full.
package hashmap

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"github.com/gpuckpt/gpuckpt/internal/murmur3"
)

// Entry records where a digest was first observed: the Merkle tree
// node covering the region and the checkpoint in which it appeared.
type Entry struct {
	Node uint32 // tree node index of the first occurrence
	Ckpt uint32 // checkpoint id of the first occurrence
}

func (e Entry) pack() uint64   { return uint64(e.Node)<<32 | uint64(e.Ckpt) }
func unpack(v uint64) Entry    { return Entry{Node: uint32(v >> 32), Ckpt: uint32(v)} }
func (e Entry) String() string { return fmt.Sprintf("(node=%d,ckpt=%d)", e.Node, e.Ckpt) }

// slot states. A slot moves empty -> claiming -> full exactly once;
// keys are immutable after publication, values may be CAS-updated.
const (
	slotEmpty uint32 = iota
	slotClaiming
	slotFull
)

// ErrFull is returned when an insert cannot find a free slot.
var ErrFull = errors.New("hashmap: table full")

// Map is the concurrent digest table. All methods are safe for
// concurrent use by any number of goroutines.
type Map struct {
	mask  uint64
	state []atomic.Uint32
	keyH1 []uint64
	keyH2 []uint64
	vals  []atomic.Uint64
	size  atomic.Int64
}

// New creates a map with capacity for at least n entries. The backing
// table is sized to the next power of two of 2n to keep the load
// factor at or below 0.5, matching the sizing discipline of GPU open
// addressing tables.
func New(n int) *Map {
	if n < 1 {
		n = 1
	}
	capacity := 1 << bits.Len64(uint64(2*n-1))
	if capacity < 8 {
		capacity = 8
	}
	m := &Map{
		mask:  uint64(capacity - 1),
		state: make([]atomic.Uint32, capacity),
		keyH1: make([]uint64, capacity),
		keyH2: make([]uint64, capacity),
		vals:  make([]atomic.Uint64, capacity),
	}
	return m
}

// Capacity returns the number of slots in the backing table.
func (m *Map) Capacity() int { return int(m.mask + 1) }

// Size returns the number of entries currently stored.
func (m *Map) Size() int { return int(m.size.Load()) }

// probe start: the digest is already a high-quality hash, so its low
// bits index directly; linear probing keeps neighboring probes in
// cache, the CPU analog of coalesced accesses.
func (m *Map) home(d murmur3.Digest) uint64 { return d.H1 & m.mask }

// InsertIfAbsent inserts (d, e) if d is not present. It returns the
// entry now associated with d and inserted=true when this call
// performed the insert. When d was already present (or became present
// concurrently), inserted is false and prev holds the existing entry.
// Returns ErrFull when no slot is available.
func (m *Map) InsertIfAbsent(d murmur3.Digest, e Entry) (prev Entry, inserted bool, err error) {
	idx := m.home(d)
	for probes := uint64(0); probes <= m.mask; probes++ {
		i := (idx + probes) & m.mask
		for {
			switch m.state[i].Load() {
			case slotEmpty:
				if m.state[i].CompareAndSwap(slotEmpty, slotClaiming) {
					m.keyH1[i] = d.H1
					m.keyH2[i] = d.H2
					m.vals[i].Store(e.pack())
					m.state[i].Store(slotFull)
					m.size.Add(1)
					return e, true, nil
				}
				continue // lost the race; re-inspect the slot
			case slotClaiming:
				// Another goroutine is publishing this slot; yield
				// until the key is visible.
				runtime.Gosched()
				continue
			case slotFull:
				if m.keyH1[i] == d.H1 && m.keyH2[i] == d.H2 {
					return unpack(m.vals[i].Load()), false, nil
				}
			}
			break // full with a different key: advance the probe
		}
	}
	return Entry{}, false, ErrFull
}

// Find returns the entry associated with d.
func (m *Map) Find(d murmur3.Digest) (Entry, bool) {
	idx := m.home(d)
	for probes := uint64(0); probes <= m.mask; probes++ {
		i := (idx + probes) & m.mask
		switch m.state[i].Load() {
		case slotEmpty:
			return Entry{}, false
		case slotClaiming:
			// Key not yet visible; treat as a potential match being
			// published and spin briefly by retrying the same slot.
			for m.state[i].Load() == slotClaiming {
				runtime.Gosched()
			}
			if m.state[i].Load() == slotFull && m.keyH1[i] == d.H1 && m.keyH2[i] == d.H2 {
				return unpack(m.vals[i].Load()), true
			}
		case slotFull:
			if m.keyH1[i] == d.H1 && m.keyH2[i] == d.H2 {
				return unpack(m.vals[i].Load()), true
			}
		}
	}
	return Entry{}, false
}

// Contains reports whether d is present.
func (m *Map) Contains(d murmur3.Digest) bool {
	_, ok := m.Find(d)
	return ok
}

// UpdateIfEarlier atomically replaces the entry for d with e when e
// belongs to the same checkpoint and covers an earlier node than the
// stored entry. It implements lines 13-16 of Algorithm 1: when two
// identical chunks appear in the same checkpoint, the earliest offset
// is canonical and the later one becomes a shifted duplicate. Returns
// the entry that lost the comparison (the one demoted to SHIFT_DUPL)
// and whether a swap occurred.
func (m *Map) UpdateIfEarlier(d murmur3.Digest, e Entry) (demoted Entry, swapped bool) {
	idx := m.home(d)
	for probes := uint64(0); probes <= m.mask; probes++ {
		i := (idx + probes) & m.mask
		switch m.state[i].Load() {
		case slotEmpty:
			return Entry{}, false
		case slotClaiming:
			for m.state[i].Load() == slotClaiming {
				runtime.Gosched()
			}
			fallthrough
		case slotFull:
			if m.keyH1[i] != d.H1 || m.keyH2[i] != d.H2 {
				continue
			}
			for {
				cur := m.vals[i].Load()
				curE := unpack(cur)
				if curE.Ckpt != e.Ckpt || e.Node >= curE.Node {
					return curE, false
				}
				if m.vals[i].CompareAndSwap(cur, e.pack()) {
					return curE, true
				}
			}
		}
	}
	return Entry{}, false
}

// Range calls fn for every (digest, entry) pair. It must not run
// concurrently with writers; it exists for tests and diagnostics.
func (m *Map) Range(fn func(d murmur3.Digest, e Entry) bool) {
	for i := range m.state {
		if m.state[i].Load() == slotFull {
			d := murmur3.Digest{H1: m.keyH1[i], H2: m.keyH2[i]}
			if !fn(d, unpack(m.vals[i].Load())) {
				return
			}
		}
	}
}
