// Package connpool provides the bounded, health-checked client
// connection pool behind gpuckpt.Client and the replication
// follower (internal/follower, which runs it at MaxActive=1 purely
// for the parked protocol session and redial health checks).
//
// The shape follows the classic outbound-pool idiom (blox pool.go): a
// fixed number of checkout permits bounds total connections, returned
// connections park on a LIFO idle stack so the hottest socket (with
// the warmest TCP window and server-side caches) is reused first, and
// a background reaper closes connections that have sat idle past a
// deadline. A checkout of a connection that has been idle long enough
// to be suspect is health-probed with a zero-timeout read before it
// is handed out, so a server restart or idle-timeout RST is absorbed
// by the pool instead of surfacing as a mid-request error.
//
// Each pooled connection carries an opaque Session payload created by
// the dial function — the client parks its per-connection protocol
// state there (negotiated wire version, epoch-scoped handle cache,
// reusable frame buffers), which is what makes the zero-copy push
// path allocation-free across checkouts.
package connpool

import (
	"errors"
	"net"
	"sync"
	"syscall"
	"time"
)

// Errors.
var (
	// ErrClosed reports an operation on a pool this process already
	// closed.
	ErrClosed = errors.New("connpool: pool closed")
	// ErrExhausted reports a Get that waited WaitTimeout without a
	// permit becoming free — every connection is checked out and busy.
	ErrExhausted = errors.New("connpool: all connections busy")
)

// Defaults applied by New for zero Options fields.
const (
	DefaultMaxActive   = 8
	DefaultIdleTimeout = 90 * time.Second
	DefaultWaitTimeout = 30 * time.Second
	DefaultProbeAfter  = time.Second
)

// Options configures a Pool.
type Options struct {
	// Dial opens one new connection and its Session payload. It is
	// called without pool locks held, so a slow dial never blocks
	// checkins. Required.
	Dial func() (net.Conn, any, error)

	// MaxActive bounds the total number of connections (checked out +
	// idle). 0 selects DefaultMaxActive.
	MaxActive int
	// MaxIdle bounds the parked idle stack; a checkin beyond it closes
	// the connection instead. 0 selects MaxActive.
	MaxIdle int
	// IdleTimeout is how long a parked connection may sit unused
	// before the reaper closes it. 0 selects DefaultIdleTimeout;
	// negative disables reaping.
	IdleTimeout time.Duration
	// WaitTimeout is how long Get blocks for a free permit before
	// returning ErrExhausted. 0 selects DefaultWaitTimeout.
	WaitTimeout time.Duration
	// ProbeAfter is the idle age beyond which a checked-out connection
	// is health-probed first. Fresh checkins skip the probe — the
	// probe's deadline round trip (and the net.OpError a healthy
	// timeout allocates) would otherwise tax every hot-path checkout.
	// 0 selects DefaultProbeAfter; negative probes every checkout.
	ProbeAfter time.Duration
}

// Conn is one checked-out pooled connection. Exactly one of Release
// or Discard must be called when the caller is done with it; the
// ckptlint closecontract check enforces the same discipline as for
// other owned resources.
type Conn struct {
	// NC is the underlying network connection.
	NC net.Conn
	// Session is the opaque payload Dial created alongside NC. It
	// lives and dies with the connection: a Discard drops it, so state
	// cached there (handles, buffers) can never outlive its socket.
	Session any

	pool      *Pool
	idleSince time.Time // zero while checked out
	done      bool      // Release/Discard already called
}

// Release returns a healthy connection to the pool's idle stack (or
// closes it if the stack is full or the pool is closed).
func (c *Conn) Release() { c.pool.checkin(c, true) }

// Discard closes a broken connection and frees its permit, so the
// next Get can dial a replacement. Safe on a connection whose socket
// already errored.
func (c *Conn) Discard() { c.pool.checkin(c, false) }

// Pool is a bounded set of reusable connections. The zero value is
// not usable; call New.
type Pool struct {
	opts Options

	permits chan struct{} // capacity MaxActive; a token = the right to hold one conn

	mu sync.Mutex
	// idle is LIFO: idle[len-1] is the most recently used.
	//ckptlint:guardedby mu
	idle []*Conn
	//ckptlint:guardedby mu
	closed bool

	reapStop chan struct{}
	reapDone chan struct{}

	// now is stubbed by tests to drive idle expiry without sleeping.
	now func() time.Time
}

// New builds a pool. No connection is dialed until the first Get.
// The caller owns the pool and must Close it.
func New(opts Options) (*Pool, error) {
	if opts.Dial == nil {
		return nil, errors.New("connpool: Options.Dial is required")
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = DefaultMaxActive
	}
	if opts.MaxIdle <= 0 || opts.MaxIdle > opts.MaxActive {
		opts.MaxIdle = opts.MaxActive
	}
	if opts.IdleTimeout == 0 {
		opts.IdleTimeout = DefaultIdleTimeout
	}
	if opts.WaitTimeout == 0 {
		opts.WaitTimeout = DefaultWaitTimeout
	}
	if opts.ProbeAfter == 0 {
		opts.ProbeAfter = DefaultProbeAfter
	}
	p := &Pool{
		opts:     opts,
		permits:  make(chan struct{}, opts.MaxActive),
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
		now:      time.Now,
	}
	for i := 0; i < opts.MaxActive; i++ {
		p.permits <- struct{}{}
	}
	if opts.IdleTimeout > 0 {
		go p.reapLoop()
	} else {
		close(p.reapDone)
	}
	return p, nil
}

// Get checks out a connection: the freshest healthy idle one, or a
// newly dialed one when the stack is empty. It blocks up to
// WaitTimeout for a permit when MaxActive connections are already out.
func (p *Pool) Get() (*Conn, error) {
	// Fast path: a free permit costs no timer allocation, keeping the
	// steady-state checkout on the push hot path allocation-free.
	select {
	case <-p.permits:
	default:
		timer := time.NewTimer(p.opts.WaitTimeout)
		select {
		case <-p.permits:
			timer.Stop()
		case <-p.reapStop:
			timer.Stop()
			return nil, ErrClosed
		case <-timer.C:
			return nil, ErrExhausted
		}
	}
	// Permit held from here: every return path either hands it to the
	// caller inside a Conn or puts it back.
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.permits <- struct{}{}
		return nil, ErrClosed
	}
	for {
		c := p.popIdle()
		if c == nil {
			break
		}
		if p.healthy(c) {
			c.idleSince = time.Time{}
			c.done = false
			return c, nil
		}
		c.NC.Close()
	}
	nc, session, err := p.opts.Dial()
	if err != nil {
		p.permits <- struct{}{}
		return nil, err
	}
	return &Conn{NC: nc, Session: session, pool: p}, nil
}

// popIdle takes the most recently used idle connection, or nil.
func (p *Pool) popIdle() *Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.idle) == 0 {
		return nil
	}
	c := p.idle[len(p.idle)-1]
	p.idle[len(p.idle)-1] = nil
	p.idle = p.idle[:len(p.idle)-1]
	return c
}

// healthy decides whether an idle connection can be handed out. A
// connection parked for less than ProbeAfter is trusted as-is; an
// older one gets a non-blocking one-byte peek at the socket: EAGAIN
// means the socket is open and quiet (healthy), anything else —
// unsolicited data outside a request/response exchange, EOF, a reset
// — means it is not the connection we parked. The raw-syscall read is
// deliberate: a deadline-based probe never reaches the socket at all
// (the runtime poller fails an expired deadline before issuing the
// read), so it cannot distinguish a live connection from a dead one.
func (p *Pool) healthy(c *Conn) bool {
	if p.opts.ProbeAfter > 0 && p.now().Sub(c.idleSince) < p.opts.ProbeAfter {
		return true
	}
	sc, ok := c.NC.(syscall.Conn)
	if !ok {
		// In-memory conns (net.Pipe in tests) have no descriptor to
		// peek; trust them and let the first real I/O error surface.
		return true
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	alive := false
	rerr := raw.Read(func(fd uintptr) bool {
		var one [1]byte
		n, err := syscall.Read(int(fd), one[:])
		// The pooled fd is non-blocking: EAGAIN is the only healthy
		// outcome. n > 0 is protocol garbage, n == 0 with a nil error
		// is EOF, anything else is a real socket error.
		alive = n < 0 && (err == syscall.EAGAIN || err == syscall.EWOULDBLOCK)
		return true // never park in the poller: this is a peek, not a read
	})
	return rerr == nil && alive
}

// checkin returns a connection's permit and, when ok and the pool has
// room, parks the connection for reuse.
func (p *Pool) checkin(c *Conn, ok bool) {
	p.mu.Lock()
	if c.done {
		p.mu.Unlock()
		return
	}
	c.done = true
	park := ok && !p.closed && len(p.idle) < p.opts.MaxIdle
	if park {
		c.idleSince = p.now()
		p.idle = append(p.idle, c)
	}
	p.mu.Unlock()
	if !park {
		c.NC.Close()
	}
	p.permits <- struct{}{}
}

// reapLoop closes connections idle past IdleTimeout. It scans at
// half the timeout so a parked connection outlives its deadline by at
// most 50%.
func (p *Pool) reapLoop() {
	defer close(p.reapDone)
	tick := time.NewTicker(p.opts.IdleTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-p.reapStop:
			return
		case <-tick.C:
			p.reapIdle()
		}
	}
}

// reapIdle closes and drops idle connections older than IdleTimeout.
// The stack is LIFO, so expired connections sit at the bottom: keep
// the youngest suffix.
func (p *Pool) reapIdle() {
	cutoff := p.now().Add(-p.opts.IdleTimeout)
	var expired []*Conn
	p.mu.Lock()
	i := 0
	for i < len(p.idle) && p.idle[i].idleSince.Before(cutoff) {
		i++
	}
	if i > 0 {
		expired = append(expired, p.idle[:i]...)
		p.idle = append(p.idle[:0], p.idle[i:]...)
	}
	p.mu.Unlock()
	for _, c := range expired {
		c.NC.Close()
	}
}

// IdleCount reports the number of parked connections (tests and
// stats; the value is stale the moment it returns).
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close closes every idle connection and fails pending and future
// Gets with ErrClosed. Connections currently checked out are not
// torn from their callers: their eventual Release/Discard closes
// them. Close is idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.reapDone
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.reapStop)
	<-p.reapDone
	var first error
	for _, c := range idle {
		if err := c.NC.Close(); err != nil && first == nil && !errors.Is(err, net.ErrClosed) {
			first = err
		}
	}
	return first
}

// ForEachIdle calls fn with every currently idle connection and its
// Session payload. The client uses it to invalidate cached
// per-connection state (e.g. prune a lineage handle the server
// declared unknown) without waiting for each connection's next
// checkout; tests use the conn to sever parked sockets. fn must not
// retain either value or call back into the pool.
func (p *Pool) ForEachIdle(fn func(nc net.Conn, session any)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.idle {
		fn(c.NC, c.Session)
	}
}
