package connpool

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoListener accepts connections and leaves them open (optionally
// writing a poison byte), returning the dial function for a pool.
type harness struct {
	ln    net.Listener
	dials atomic.Int64

	mu       sync.Mutex
	accepted []net.Conn
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{ln: ln}
	t.Cleanup(h.closeAll)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			h.mu.Lock()
			h.accepted = append(h.accepted, c)
			h.mu.Unlock()
			// Hold the connection open; never write.
			go func() {
				buf := make([]byte, 128)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()
	return h
}

// closeAll tears down the server side: the listener and every
// accepted connection.
func (h *harness) closeAll() {
	h.ln.Close()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, c := range h.accepted {
		c.Close()
	}
	h.accepted = nil
}

func (h *harness) dial() (net.Conn, any, error) {
	h.dials.Add(1)
	c, err := net.Dial("tcp", h.ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	return c, &struct{ n int }{}, nil
}

func TestPoolReusesConnections(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	sess := c1.Session
	c1.Release()
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c2.Session != sess {
		t.Fatal("fresh checkout did not reuse the parked connection")
	}
	c2.Release()
	if got := h.dials.Load(); got != 1 {
		t.Fatalf("dialed %d times, want 1", got)
	}
}

func TestPoolLIFO(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	a, _ := p.Get()
	b, _ := p.Get()
	if a == nil || b == nil {
		t.Fatal("checkout failed")
	}
	sa, sb := a.Session, b.Session
	a.Release()
	b.Release() // most recent
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c.Session != sb {
		t.Fatal("checkout is not LIFO")
	}
	d, _ := p.Get()
	if d.Session != sa {
		t.Fatal("second checkout missed the older idle conn")
	}
	c.Release()
	d.Release()
}

func TestPoolBoundsActive(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 2, WaitTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	a, _ := p.Get()
	b, _ := p.Get()
	if _, err := p.Get(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("third checkout: %v, want ErrExhausted", err)
	}
	a.Release()
	c, err := p.Get()
	if err != nil {
		t.Fatalf("checkout after release: %v", err)
	}
	c.Release()
	b.Release()
}

func TestPoolDiscardFreesPermit(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 1, WaitTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, _ := p.Get()
	c.Discard()
	d, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if d.Session == c.Session {
		t.Fatal("discarded connection came back")
	}
	d.Release()
	if got := h.dials.Load(); got != 2 {
		t.Fatalf("dialed %d times, want 2", got)
	}
}

func TestPoolProbeDropsDeadConn(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 2, ProbeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, _ := p.Get()
	c.Release()
	// Kill the server side; the parked socket is now half-closed and
	// the always-on probe (ProbeAfter < 0) must reject it.
	h.closeAll()
	time.Sleep(20 * time.Millisecond)
	if _, err := p.Get(); err == nil {
		t.Fatal("checkout dialed through a closed listener")
	}
	if p.IdleCount() != 0 {
		t.Fatal("dead connection still parked")
	}
}

func TestPoolProbeSkippedWhenFresh(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 2, ProbeAfter: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, _ := p.Get()
	c.Release()
	d, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	// A fresh conn skips the probe, so no deadline was ever set; a
	// plain read with data available must still work. (We can't read
	// here without a server write; just assert reuse happened.)
	if d.Session != c.Session {
		t.Fatal("fresh connection not reused")
	}
	d.Release()
}

func TestPoolIdleReap(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 4, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, _ := p.Get()
	c.Release()
	if p.IdleCount() != 1 {
		t.Fatal("connection not parked")
	}
	// Age the parked connection artificially and reap.
	p.mu.Lock()
	p.idle[0].idleSince = time.Now().Add(-time.Hour)
	p.mu.Unlock()
	p.opts.IdleTimeout = time.Minute
	p.reapIdle()
	if p.IdleCount() != 0 {
		t.Fatal("expired connection survived the reaper")
	}
}

func TestPoolClose(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := p.Get()
	d, _ := p.Get()
	c.Release()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close: %v", err)
	}
	// A straggler checkin after Close must close the conn, not park it.
	d.Release()
	if p.IdleCount() != 0 {
		t.Fatal("connection parked after Close")
	}
	if err := p.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
}

func TestPoolConcurrentChurn(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 4, WaitTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				if (g+i)%7 == 0 {
					c.Discard()
				} else {
					c.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := p.IdleCount(); n > 4 {
		t.Fatalf("%d idle connections exceed MaxActive", n)
	}
}

func TestPoolDoubleReleaseHarmless(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 1, WaitTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, _ := p.Get()
	c.Release()
	c.Release() // must not double-credit the permit or double-park
	if p.IdleCount() != 1 {
		t.Fatalf("idle count %d after double release", p.IdleCount())
	}
	d, _ := p.Get()
	d.Discard()
	d.Discard()
	e, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	e.Release()
}

func TestPoolForEachIdleSession(t *testing.T) {
	h := newHarness(t)
	p, err := New(Options{Dial: h.dial, MaxActive: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, _ := p.Get()
	b, _ := p.Get()
	a.Release()
	b.Release()
	n := 0
	p.ForEachIdle(func(nc net.Conn, s any) {
		if nc == nil || s == nil {
			t.Error("nil conn or session")
		}
		n++
	})
	if n != 2 {
		t.Fatalf("visited %d sessions, want 2", n)
	}
}

// pruneSession is the shape the client parks on each pooled
// connection: a handle cache that ForEachIdle invalidates in place.
type pruneSession struct {
	handles map[string]uint32
}

// TestRaceForEachIdlePrune churns checkouts (each mutating its own
// session cache, as the client does when it resolves a handle) against
// ForEachIdle pruning the caches of parked connections and the reaper
// retiring them. Sessions are handed between owners through p.mu —
// checkin parks, popIdle claims, ForEachIdle iterates — so the
// unsynchronized per-owner mutation is safe; this test is the -race
// witness for that handoff, covering the epoch-cache prune the client
// runs when the server restarts underneath the pool.
func TestRaceForEachIdlePrune(t *testing.T) {
	h := newHarness(t)
	dial := func() (net.Conn, any, error) {
		c, err := net.Dial("tcp", h.ln.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		return c, &pruneSession{handles: map[string]uint32{}}, nil
	}
	p, err := New(Options{Dial: dial, MaxActive: 4, IdleTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c, err := p.Get()
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				s := c.Session.(*pruneSession)
				s.handles["lineage"] = uint32(i)
				if i%3 == 0 {
					c.Discard() // force a redial path too
				} else {
					c.Release()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			p.ForEachIdle(func(nc net.Conn, session any) {
				s := session.(*pruneSession)
				for k := range s.handles {
					delete(s.handles, k)
				}
			})
		}
	}()
	wg.Wait()
}
