// Package stencil provides the second application class of the
// reproduction: time-stepped PDE solvers whose intermediate states are
// checkpointed at every step, the adjoint-computation scenario the
// paper's §1 motivates (10 ms checkpoint intervals) and §5 names as
// future work ("evaluating the benefits of our method for other
// classes of applications, such as adjoint computations").
//
// The solvers use fixed-point (Q16.16) integer arithmetic so a state
// restored from a checkpoint resumes *bit-exactly* — the property an
// adjoint backward pass needs — and so checkpoints carry the
// plateau-rich integer fields that de-duplicate the way real quantized
// solver snapshots do.
package stencil

import (
	"encoding/binary"
	"fmt"
)

// Solver is a deterministic time-stepped simulation whose full state
// serializes to a fixed-size buffer.
type Solver interface {
	// Name identifies the solver in reports.
	Name() string
	// Step advances the simulation by one time step.
	Step()
	// StepCount returns the number of steps taken.
	StepCount() int
	// StateLen returns the serialized state size in bytes.
	StateLen() int
	// SerializeInto writes the full state into dst (len StateLen).
	SerializeInto(dst []byte) error
	// Restore replaces the full state from a serialized image. The
	// step counter is the caller's to manage.
	Restore(src []byte) error
}

// fixed-point scale: Q16.16.
const fpOne = 1 << 16

// Heat2D is an explicit 2-D heat-diffusion solver on an n x n grid
// with insulated (reflecting) boundaries, in Q16.16 fixed point.
type Heat2D struct {
	n     int
	cur   []int32
	next  []int32
	steps int
}

// NewHeat2D creates an n x n plate with a hot square in the middle
// (temperature hot, in degrees) over a cold background.
func NewHeat2D(n int, hot float64) (*Heat2D, error) {
	if n < 4 {
		return nil, fmt.Errorf("stencil: grid %d too small", n)
	}
	h := &Heat2D{n: n, cur: make([]int32, n*n), next: make([]int32, n*n)}
	hq := int32(hot * fpOne)
	for y := n / 4; y < 3*n/4; y++ {
		for x := n / 4; x < 3*n/4; x++ {
			h.cur[y*n+x] = hq
		}
	}
	return h, nil
}

// Name implements Solver.
func (h *Heat2D) Name() string { return "heat2d" }

// StepCount implements Solver.
func (h *Heat2D) StepCount() int { return h.steps }

// at clamps coordinates to the grid (insulated boundary).
func (h *Heat2D) at(x, y int) int32 {
	if x < 0 {
		x = 0
	}
	if x >= h.n {
		x = h.n - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= h.n {
		y = h.n - 1
	}
	return h.cur[y*h.n+x]
}

// Step advances one explicit Euler step with alpha = 1/8 (stable for
// the 5-point Laplacian). Integer shifts keep it exact and fast.
func (h *Heat2D) Step() {
	n := h.n
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c := int64(h.cur[y*n+x])
			lap := int64(h.at(x-1, y)) + int64(h.at(x+1, y)) +
				int64(h.at(x, y-1)) + int64(h.at(x, y+1)) - 4*c
			h.next[y*n+x] = int32(c + lap>>3)
		}
	}
	h.cur, h.next = h.next, h.cur
	h.steps++
}

// StateLen implements Solver.
func (h *Heat2D) StateLen() int { return h.n * h.n * 4 }

// SerializeInto implements Solver.
func (h *Heat2D) SerializeInto(dst []byte) error {
	if len(dst) != h.StateLen() {
		return fmt.Errorf("stencil: buffer %d bytes, want %d", len(dst), h.StateLen())
	}
	for i, v := range h.cur {
		binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
	}
	return nil
}

// Restore implements Solver.
func (h *Heat2D) Restore(src []byte) error {
	if len(src) != h.StateLen() {
		return fmt.Errorf("stencil: image %d bytes, want %d", len(src), h.StateLen())
	}
	for i := range h.cur {
		h.cur[i] = int32(binary.LittleEndian.Uint32(src[i*4:]))
	}
	return nil
}

// Temperature returns the value at (x, y) in degrees.
func (h *Heat2D) Temperature(x, y int) float64 {
	return float64(h.cur[y*h.n+x]) / fpOne
}

// Max returns the maximum temperature (the maximum principle says it
// must not increase under diffusion).
func (h *Heat2D) Max() float64 {
	var m int32
	for _, v := range h.cur {
		if v > m {
			m = v
		}
	}
	return float64(m) / fpOne
}

// Wave2D is an explicit 2-D wave-equation solver (leapfrog, two time
// levels) on an n x n grid with fixed (reflecting) boundaries, in
// Q16.16 fixed point. Its serialized state carries both time levels.
type Wave2D struct {
	n         int
	cur, prev []int32
	next      []int32
	steps     int
}

// NewWave2D creates an n x n membrane with a centered square pulse.
func NewWave2D(n int, amplitude float64) (*Wave2D, error) {
	if n < 4 {
		return nil, fmt.Errorf("stencil: grid %d too small", n)
	}
	w := &Wave2D{
		n:    n,
		cur:  make([]int32, n*n),
		prev: make([]int32, n*n),
		next: make([]int32, n*n),
	}
	aq := int32(amplitude * fpOne)
	for y := 3 * n / 8; y < 5*n/8; y++ {
		for x := 3 * n / 8; x < 5*n/8; x++ {
			w.cur[y*n+x] = aq
			w.prev[y*n+x] = aq // starts at rest
		}
	}
	return w, nil
}

// Name implements Solver.
func (w *Wave2D) Name() string { return "wave2d" }

// StepCount implements Solver.
func (w *Wave2D) StepCount() int { return w.steps }

// Step advances one leapfrog step with c^2 dt^2/dx^2 = 1/4.
func (w *Wave2D) Step() {
	n := w.n
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			i := y*n + x
			c := int64(w.cur[i])
			lap := int64(w.cur[i-1]) + int64(w.cur[i+1]) +
				int64(w.cur[i-n]) + int64(w.cur[i+n]) - 4*c
			w.next[i] = int32(2*c - int64(w.prev[i]) + lap>>2)
		}
	}
	// Fixed boundary: next stays zero at the rim (already zeroed by
	// never writing it after init... the rim of next must be cleared
	// because of the triple-buffer rotation).
	for x := 0; x < n; x++ {
		w.next[x] = 0
		w.next[(n-1)*n+x] = 0
	}
	for y := 0; y < n; y++ {
		w.next[y*n] = 0
		w.next[y*n+n-1] = 0
	}
	w.prev, w.cur, w.next = w.cur, w.next, w.prev
	w.steps++
}

// StateLen implements Solver.
func (w *Wave2D) StateLen() int { return 2 * w.n * w.n * 4 }

// SerializeInto implements Solver.
func (w *Wave2D) SerializeInto(dst []byte) error {
	if len(dst) != w.StateLen() {
		return fmt.Errorf("stencil: buffer %d bytes, want %d", len(dst), w.StateLen())
	}
	half := w.n * w.n * 4
	for i, v := range w.cur {
		binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
	}
	for i, v := range w.prev {
		binary.LittleEndian.PutUint32(dst[half+i*4:], uint32(v))
	}
	return nil
}

// Restore implements Solver.
func (w *Wave2D) Restore(src []byte) error {
	if len(src) != w.StateLen() {
		return fmt.Errorf("stencil: image %d bytes, want %d", len(src), w.StateLen())
	}
	half := w.n * w.n * 4
	for i := range w.cur {
		w.cur[i] = int32(binary.LittleEndian.Uint32(src[i*4:]))
	}
	for i := range w.prev {
		w.prev[i] = int32(binary.LittleEndian.Uint32(src[half+i*4:]))
	}
	return nil
}

// Amplitude returns the displacement at (x, y).
func (w *Wave2D) Amplitude(x, y int) float64 {
	return float64(w.cur[y*w.n+x]) / fpOne
}
