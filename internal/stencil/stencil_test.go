package stencil

import (
	"bytes"
	"testing"
)

func TestHeat2DBasics(t *testing.T) {
	h, err := NewHeat2D(32, 100)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "heat2d" || h.StateLen() != 32*32*4 {
		t.Fatal("identity wrong")
	}
	if h.Temperature(16, 16) != 100 {
		t.Fatalf("hot center %v", h.Temperature(16, 16))
	}
	if h.Temperature(0, 0) != 0 {
		t.Fatal("cold corner not cold")
	}
	maxBefore := h.Max()
	for s := 0; s < 50; s++ {
		h.Step()
		// Maximum principle: diffusion never increases the max.
		if m := h.Max(); m > maxBefore {
			t.Fatalf("max grew from %v to %v at step %d", maxBefore, m, s)
		} else {
			maxBefore = m
		}
	}
	if h.StepCount() != 50 {
		t.Fatalf("step count %d", h.StepCount())
	}
	// Heat must have spread to the corner by now... or at least the
	// center must have cooled.
	if h.Temperature(16, 16) >= 100 {
		t.Fatal("center never cooled")
	}
	if _, err := NewHeat2D(2, 1); err == nil {
		t.Fatal("tiny grid accepted")
	}
}

func TestHeat2DSymmetry(t *testing.T) {
	// A symmetric initial condition stays symmetric forever.
	h, _ := NewHeat2D(24, 50)
	for s := 0; s < 30; s++ {
		h.Step()
	}
	for y := 0; y < 24; y++ {
		for x := 0; x < 24; x++ {
			if h.Temperature(x, y) != h.Temperature(23-x, y) {
				t.Fatalf("x-asymmetry at (%d,%d)", x, y)
			}
			if h.Temperature(x, y) != h.Temperature(x, 23-y) {
				t.Fatalf("y-asymmetry at (%d,%d)", x, y)
			}
		}
	}
}

func TestWave2DBasics(t *testing.T) {
	w, err := NewWave2D(32, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "wave2d" || w.StateLen() != 2*32*32*4 {
		t.Fatal("identity wrong")
	}
	if w.Amplitude(16, 16) != 10 {
		t.Fatal("pulse missing")
	}
	for s := 0; s < 40; s++ {
		w.Step()
	}
	if w.StepCount() != 40 {
		t.Fatal("step count wrong")
	}
	// The wave must have left the center region (it radiates).
	if w.Amplitude(16, 16) == 10 {
		t.Fatal("pulse never moved")
	}
	// Boundaries stay pinned.
	if w.Amplitude(0, 5) != 0 || w.Amplitude(31, 31) != 0 {
		t.Fatal("boundary moved")
	}
	if _, err := NewWave2D(3, 1); err == nil {
		t.Fatal("tiny grid accepted")
	}
}

func TestSerializeRestoreExactResume(t *testing.T) {
	// The adjoint property: restore + resume == uninterrupted run,
	// bit for bit, for both solvers.
	solvers := []func() Solver{
		func() Solver { h, _ := NewHeat2D(20, 75); return h },
		func() Solver { w, _ := NewWave2D(20, 5); return w },
	}
	for _, mk := range solvers {
		ref := mk()
		forked := mk()
		for s := 0; s < 10; s++ {
			ref.Step()
			forked.Step()
		}
		// Snapshot the fork at step 10, run both to 25.
		img := make([]byte, forked.StateLen())
		if err := forked.SerializeInto(img); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 15; s++ {
			ref.Step()
		}
		resumed := mk()
		if err := resumed.Restore(img); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 15; s++ {
			resumed.Step()
		}
		a := make([]byte, ref.StateLen())
		b := make([]byte, resumed.StateLen())
		if err := ref.SerializeInto(a); err != nil {
			t.Fatal(err)
		}
		if err := resumed.SerializeInto(b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: restored resume diverged from uninterrupted run", ref.Name())
		}
	}
}

func TestSerializeValidation(t *testing.T) {
	h, _ := NewHeat2D(8, 1)
	if err := h.SerializeInto(make([]byte, 3)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := h.Restore(make([]byte, 3)); err == nil {
		t.Fatal("short image accepted")
	}
	w, _ := NewWave2D(8, 1)
	if err := w.SerializeInto(make([]byte, 3)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := w.Restore(make([]byte, 3)); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewHeat2D(16, 33)
	b, _ := NewHeat2D(16, 33)
	for s := 0; s < 20; s++ {
		a.Step()
		b.Step()
	}
	ia := make([]byte, a.StateLen())
	ib := make([]byte, b.StateLen())
	_ = a.SerializeInto(ia)
	_ = b.SerializeInto(ib)
	if !bytes.Equal(ia, ib) {
		t.Fatal("heat solver not deterministic")
	}
}
