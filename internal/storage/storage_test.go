package storage

import (
	"math/rand"
	"testing"
	"time"
)

func tinySys() SystemSpec {
	return SystemSpec{
		Nodes:       1,
		GPUsPerNode: 4,
		HostBuffer:  Tier{Name: "host", Bandwidth: 10, Capacity: 100},
		SSD:         Tier{Name: "ssd", Bandwidth: 5, Capacity: 1000},
		PFS:         Tier{Name: "pfs", Bandwidth: 1000, Capacity: 1 << 40},
	}
}

func TestSingleCheckpointTimeline(t *testing.T) {
	job := JobConfig{
		Procs:           1,
		NumCheckpoints:  1,
		ComputeInterval: time.Second,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return 500 * time.Millisecond, 10
		},
	}
	res, err := Simulate(tinySys(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 1500*time.Millisecond {
		t.Fatalf("makespan %v, want 1.5s", res.Makespan)
	}
	// Host drain: 10 bytes at 10 B/s = 1s, done at 2.5s; SSD->PFS at
	// min(5,1000)=5 B/s = 2s, done at 4.5s.
	if res.AllFlushed != 4500*time.Millisecond {
		t.Fatalf("all flushed at %v, want 4.5s", res.AllFlushed)
	}
	if res.BytesToPFS != 10 {
		t.Fatalf("bytes to PFS %d", res.BytesToPFS)
	}
	if res.DedupStall != 500*time.Millisecond || res.SpaceStall != 0 {
		t.Fatalf("stalls %v/%v", res.DedupStall, res.SpaceStall)
	}
	if res.IOOverhead() != 500*time.Millisecond {
		t.Fatalf("io overhead %v", res.IOOverhead())
	}
	if res.PeakHostOccupancy != 10 {
		t.Fatalf("peak host %d", res.PeakHostOccupancy)
	}
}

func TestBackpressureStall(t *testing.T) {
	sys := tinySys()
	sys.HostBuffer = Tier{Name: "host", Bandwidth: 1, Capacity: 10} // 10s per drain
	job := JobConfig{
		Procs:           1,
		NumCheckpoints:  2,
		ComputeInterval: time.Second,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return 0, 10
		},
	}
	res, err := Simulate(sys, job)
	if err != nil {
		t.Fatal(err)
	}
	// ckpt0 admitted at 1s; drain finishes at 11s; ckpt1 ready at 2s
	// but waits 9s for space.
	if res.SpaceStall != 9*time.Second {
		t.Fatalf("space stall %v, want 9s", res.SpaceStall)
	}
	if res.Makespan != 11*time.Second {
		t.Fatalf("makespan %v, want 11s", res.Makespan)
	}
	if res.BytesToPFS != 20 {
		t.Fatalf("bytes %d", res.BytesToPFS)
	}
}

func TestSmallCheckpointsAvoidBackpressure(t *testing.T) {
	sys := tinySys()
	sys.HostBuffer = Tier{Name: "host", Bandwidth: 1, Capacity: 10}
	job := JobConfig{
		Procs:           1,
		NumCheckpoints:  5,
		ComputeInterval: 2 * time.Second,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return 0, 1 // tiny diffs drain within the compute interval
		},
	}
	res, err := Simulate(sys, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpaceStall != 0 {
		t.Fatalf("small checkpoints stalled %v", res.SpaceStall)
	}
	if res.Makespan != 10*time.Second {
		t.Fatalf("makespan %v, want 10s", res.Makespan)
	}
}

func TestDedupReducesIOOverhead(t *testing.T) {
	// The paper's core claim at the storage level: shipping 100x less
	// data eliminates backpressure stalls.
	sys := ALCFSpec(2)
	full := JobConfig{
		Procs:           16,
		NumCheckpoints:  10,
		ComputeInterval: time.Second,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return 200 * time.Millisecond, 5 << 30 // 5 GB full checkpoints
		},
	}
	tree := full
	tree.CheckpointCost = func(proc, ck int) (time.Duration, int64) {
		return 50 * time.Millisecond, 50 << 20 // 50 MB diffs
	}
	fr, err := Simulate(sys, full)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Simulate(sys, tree)
	if err != nil {
		t.Fatal(err)
	}
	if fr.SpaceStall == 0 {
		t.Fatal("full checkpoints never hit backpressure; system spec too generous for the test")
	}
	if tr.SpaceStall != 0 {
		t.Fatalf("deduped checkpoints stalled %v", tr.SpaceStall)
	}
	if tr.IOOverhead() >= fr.IOOverhead() {
		t.Fatalf("dedup overhead %v not below full %v", tr.IOOverhead(), fr.IOOverhead())
	}
	if tr.Makespan >= fr.Makespan {
		t.Fatalf("dedup makespan %v not below full %v", tr.Makespan, fr.Makespan)
	}
}

func TestByteConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sizes := make([]int64, 50)
	var total int64
	for i := range sizes {
		sizes[i] = int64(rng.Intn(90) + 1)
		total += sizes[i]
	}
	job := JobConfig{
		Procs:           2,
		NumCheckpoints:  25,
		ComputeInterval: 100 * time.Millisecond,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return 0, sizes[proc*25+ck]
		},
	}
	res, err := Simulate(tinySys(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesToPFS != total {
		t.Fatalf("bytes to PFS %d, want %d", res.BytesToPFS, total)
	}
	if res.AllFlushed < res.Makespan {
		t.Fatal("flush completed before makespan")
	}
}

func TestMultiNodePFSContention(t *testing.T) {
	// PFS bandwidth is the global bottleneck: doubling the nodes
	// cannot flush faster than the PFS allows.
	sys := SystemSpec{
		Nodes:       4,
		GPUsPerNode: 1,
		HostBuffer:  Tier{Name: "host", Bandwidth: 1000, Capacity: 1 << 30},
		SSD:         Tier{Name: "ssd", Bandwidth: 1000, Capacity: 1 << 30},
		PFS:         Tier{Name: "pfs", Bandwidth: 100, Capacity: 1 << 40},
	}
	job := JobConfig{
		Procs:           4,
		NumCheckpoints:  1,
		ComputeInterval: time.Millisecond,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return 0, 1000 // 4000 bytes total, PFS at 100 B/s -> >= 40s
		},
	}
	res, err := Simulate(sys, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllFlushed < 40*time.Second {
		t.Fatalf("flush finished at %v despite 40s of PFS work", res.AllFlushed)
	}
	if res.BytesToPFS != 4000 {
		t.Fatalf("bytes %d", res.BytesToPFS)
	}
}

func TestOversizedCheckpointClamped(t *testing.T) {
	sys := tinySys() // host capacity 100
	job := JobConfig{
		Procs:           1,
		NumCheckpoints:  1,
		ComputeInterval: time.Millisecond,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return 0, 500 // bigger than the staging buffer
		},
	}
	res, err := Simulate(sys, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesToPFS != 100 {
		t.Fatalf("clamped checkpoint flushed %d bytes", res.BytesToPFS)
	}
}

func TestValidation(t *testing.T) {
	good := JobConfig{
		Procs: 1, NumCheckpoints: 1, ComputeInterval: time.Second,
		CheckpointCost: func(int, int) (time.Duration, int64) { return 0, 1 },
	}
	if _, err := Simulate(SystemSpec{}, good); err == nil {
		t.Fatal("empty system accepted")
	}
	sys := tinySys()
	bad := good
	bad.Procs = 100
	if _, err := Simulate(sys, bad); err == nil {
		t.Fatal("too many procs accepted")
	}
	bad = good
	bad.NumCheckpoints = 0
	if _, err := Simulate(sys, bad); err == nil {
		t.Fatal("zero checkpoints accepted")
	}
	bad = good
	bad.CheckpointCost = nil
	if _, err := Simulate(sys, bad); err == nil {
		t.Fatal("nil cost function accepted")
	}
}

func TestDeterminism(t *testing.T) {
	sys := ALCFSpec(2)
	job := JobConfig{
		Procs:           16,
		NumCheckpoints:  5,
		ComputeInterval: 300 * time.Millisecond,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return time.Duration(proc+ck) * time.Millisecond, int64(proc+1) << 28
		},
	}
	a, err := Simulate(sys, job)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(sys, job)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestALCFSpecSane(t *testing.T) {
	s := ALCFSpec(3)
	if s.Nodes != 3 || s.GPUsPerNode != 8 {
		t.Fatal("ALCF geometry wrong")
	}
	if s.PFS.Bandwidth != 250e9 {
		t.Fatal("Lustre bandwidth wrong")
	}
	if s.HostBuffer.Capacity <= 0 || s.SSD.Capacity <= s.HostBuffer.Capacity {
		t.Fatal("tier capacities implausible")
	}
}

func BenchmarkSimulate(b *testing.B) {
	sys := ALCFSpec(8)
	job := JobConfig{
		Procs:           64,
		NumCheckpoints:  20,
		ComputeInterval: time.Second,
		CheckpointCost: func(proc, ck int) (time.Duration, int64) {
			return 50 * time.Millisecond, 3 << 30
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(sys, job); err != nil {
			b.Fatal(err)
		}
	}
}
