// Package storage models the multi-level asynchronous checkpointing
// architecture of the paper (Tan et al., ICPP 2023, §2.3, Figure 3):
// each process writes its consolidated difference to host memory
// (already modeled by the device layer's PCIe transfer), after which a
// background runtime drains host buffers to node-local SSDs and from
// there to the shared parallel file system.
//
// The runtime is a deterministic discrete-event simulation: transfers
// serialize through per-node SSDs and the shared PFS at their modeled
// bandwidths; a process stalls only when its node's host buffer cannot
// admit the next checkpoint — exactly the failure mode the paper
// predicts for high-frequency checkpointing with large (non-deduped)
// checkpoints ("the HPC workflow may be delayed if it produces new
// checkpoints faster than they can be flushed", §1).
package storage

import (
	"container/heap"
	"fmt"
	"time"
)

// Tier describes one storage level.
type Tier struct {
	Name      string
	Bandwidth float64 // bytes/second drained from this tier
	Capacity  int64   // bytes this tier can hold
}

// SystemSpec describes the machine: nodes with host buffers and local
// SSDs, sharing one parallel file system.
type SystemSpec struct {
	Nodes       int
	GPUsPerNode int
	HostBuffer  Tier // per node; Bandwidth is the host->SSD drain rate
	SSD         Tier // per node; Bandwidth is the SSD->PFS drain rate
	PFS         Tier // global; Bandwidth shared by all nodes
}

// ALCFSpec models a ThetaGPU-like system (§3.1): 8 GPUs per node,
// tens of GB of spare host DRAM for checkpoint staging, multi-GB/s
// NVMe, and a Lustre file system with 250 GB/s aggregate bandwidth.
func ALCFSpec(nodes int) SystemSpec {
	return SystemSpec{
		Nodes:       nodes,
		GPUsPerNode: 8,
		HostBuffer:  Tier{Name: "host", Bandwidth: 10e9, Capacity: 64 << 30},
		SSD:         Tier{Name: "ssd", Bandwidth: 3.2e9, Capacity: 3 << 40},
		PFS:         Tier{Name: "pfs", Bandwidth: 250e9, Capacity: 1 << 50},
	}
}

// JobConfig describes the checkpointing workload.
type JobConfig struct {
	// Procs is the number of application processes (one per GPU).
	Procs int
	// NumCheckpoints per process.
	NumCheckpoints int
	// ComputeInterval is the application time between checkpoints.
	ComputeInterval time.Duration
	// CheckpointCost returns the synchronous stall (de-duplication +
	// device-to-host transfer) and the bytes submitted to the host
	// buffer for checkpoint ck of process proc.
	CheckpointCost func(proc, ck int) (stall time.Duration, size int64)
}

// Result summarizes a simulated job.
type Result struct {
	// Makespan is when the last process finished its last checkpoint
	// submission (application end-to-end time).
	Makespan time.Duration
	// AllFlushed is when the last byte reached the PFS.
	AllFlushed time.Duration
	// DedupStall is the total synchronous checkpoint stall across
	// processes (compute blocked on de-duplication + D2H).
	DedupStall time.Duration
	// SpaceStall is the total time processes waited for host-buffer
	// space (backpressure from slow flushing).
	SpaceStall time.Duration
	// BytesToPFS is the total data that reached the file system.
	BytesToPFS int64
	// PeakHostOccupancy is the maximum bytes held in any node's host
	// buffer at once.
	PeakHostOccupancy int64
}

// IOOverhead is the paper's I/O overhead metric: total time the
// application was blocked on checkpointing.
func (r Result) IOOverhead() time.Duration { return r.DedupStall + r.SpaceStall }

// --- discrete-event simulation ---

type eventKind uint8

const (
	evProcReady eventKind = iota // process finished compute+stall, wants to submit
	evHostDrainDone
	evSSDDrainDone
)

type event struct {
	at   time.Duration
	seq  int64
	kind eventKind
	proc int
	node int
	size int64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type nodeState struct {
	hostUsed int64
	ssdUsed  int64
	hostQ    []int64 // FIFO of item sizes staged in host memory
	ssdQ     []int64 // FIFO of item sizes staged on SSD
	hostBusy bool
	waiting  []waiter // processes blocked on host space, FIFO
	peakHost int64
}

type waiter struct {
	proc int
	size int64
}

type sim struct {
	sys        SystemSpec
	job        JobConfig
	events     eventHeap
	seq        int64
	nodes      []nodeState
	pfsBusy    bool
	now        time.Duration
	nextCkpt   []int
	doneAt     []time.Duration
	dedupStall time.Duration
	spaceStall time.Duration
	waitingAt  []time.Duration // when each proc started waiting for space
	bytesToPFS int64
	lastFlush  time.Duration
}

// Simulate runs the job to completion and reports the result.
func Simulate(sys SystemSpec, job JobConfig) (Result, error) {
	if sys.Nodes < 1 || sys.GPUsPerNode < 1 {
		return Result{}, fmt.Errorf("storage: system needs at least one node and GPU")
	}
	if job.Procs < 1 || job.Procs > sys.Nodes*sys.GPUsPerNode {
		return Result{}, fmt.Errorf("storage: %d procs exceed %d slots", job.Procs, sys.Nodes*sys.GPUsPerNode)
	}
	if job.NumCheckpoints < 1 || job.CheckpointCost == nil {
		return Result{}, fmt.Errorf("storage: job needs checkpoints and a cost function")
	}
	s := &sim{
		sys:       sys,
		job:       job,
		nodes:     make([]nodeState, sys.Nodes),
		nextCkpt:  make([]int, job.Procs),
		doneAt:    make([]time.Duration, job.Procs),
		waitingAt: make([]time.Duration, job.Procs),
	}
	heap.Init(&s.events)
	for p := 0; p < job.Procs; p++ {
		s.scheduleProc(p, 0)
	}
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		switch e.kind {
		case evProcReady:
			s.procReady(e.proc, e.size)
		case evHostDrainDone:
			s.hostDrainDone(e.node, e.size)
		case evSSDDrainDone:
			s.ssdDrainDone(e.node, e.size)
		}
	}
	res := Result{
		DedupStall: s.dedupStall,
		SpaceStall: s.spaceStall,
		BytesToPFS: s.bytesToPFS,
		AllFlushed: s.lastFlush,
	}
	for p := 0; p < job.Procs; p++ {
		if s.doneAt[p] > res.Makespan {
			res.Makespan = s.doneAt[p]
		}
	}
	for i := range s.nodes {
		if s.nodes[i].peakHost > res.PeakHostOccupancy {
			res.PeakHostOccupancy = s.nodes[i].peakHost
		}
	}
	if res.AllFlushed < res.Makespan {
		res.AllFlushed = res.Makespan
	}
	return res, nil
}

func (s *sim) nodeOf(proc int) int { return proc / s.sys.GPUsPerNode }

func (s *sim) push(e event) {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.events, e)
}

// scheduleProc advances process p through its next compute interval
// and checkpoint stall, then emits a submission-ready event.
func (s *sim) scheduleProc(p int, from time.Duration) {
	ck := s.nextCkpt[p]
	if ck >= s.job.NumCheckpoints {
		s.doneAt[p] = from
		return
	}
	stall, size := s.job.CheckpointCost(p, ck)
	s.dedupStall += stall
	s.push(event{
		at:   from + s.job.ComputeInterval + stall,
		kind: evProcReady,
		proc: p,
		size: size,
	})
}

// procReady attempts to admit process p's checkpoint into its node's
// host buffer; on success the process immediately resumes computing.
func (s *sim) procReady(p int, size int64) {
	node := s.nodeOf(p)
	ns := &s.nodes[node]
	if size > s.sys.HostBuffer.Capacity {
		// A checkpoint larger than the staging buffer degenerates to a
		// synchronous write-through; model as waiting for an empty
		// buffer then passing straight through.
		size = s.sys.HostBuffer.Capacity
	}
	if ns.hostUsed+size <= s.sys.HostBuffer.Capacity && len(ns.waiting) == 0 {
		s.admit(p, node, size)
		return
	}
	ns.waiting = append(ns.waiting, waiter{proc: p, size: size})
	s.waitingAt[p] = s.now
}

// admit stages the checkpoint in host memory and lets the process run.
func (s *sim) admit(p, node int, size int64) {
	ns := &s.nodes[node]
	ns.hostUsed += size
	if ns.hostUsed > ns.peakHost {
		ns.peakHost = ns.hostUsed
	}
	ns.hostQ = append(ns.hostQ, size)
	s.startHostDrain(node)
	s.nextCkpt[p]++
	s.scheduleProc(p, s.now)
}

// startHostDrain begins the next host->SSD transfer if the drain
// channel is idle and the SSD has room.
func (s *sim) startHostDrain(node int) {
	ns := &s.nodes[node]
	if ns.hostBusy || len(ns.hostQ) == 0 {
		return
	}
	size := ns.hostQ[0]
	if ns.ssdUsed+size > s.sys.SSD.Capacity {
		return // retried when the SSD drains
	}
	ns.hostQ = ns.hostQ[1:]
	ns.hostBusy = true
	dur := time.Duration(float64(size) / s.sys.HostBuffer.Bandwidth * float64(time.Second))
	s.push(event{at: s.now + dur, kind: evHostDrainDone, node: node, size: size})
}

// hostDrainDone moves an item from host memory onto the SSD, frees
// host space and unblocks waiting processes in FIFO order.
func (s *sim) hostDrainDone(node int, size int64) {
	ns := &s.nodes[node]
	ns.hostBusy = false
	ns.hostUsed -= size
	ns.ssdUsed += size
	ns.ssdQ = append(ns.ssdQ, size)
	s.pumpPFS()
	// Admit as many waiting processes as now fit, preserving order.
	for len(ns.waiting) > 0 {
		w := ns.waiting[0]
		if ns.hostUsed+w.size > s.sys.HostBuffer.Capacity {
			break
		}
		ns.waiting = ns.waiting[1:]
		s.spaceStall += s.now - s.waitingAt[w.proc]
		s.admit(w.proc, node, w.size)
	}
	s.startHostDrain(node)
}

// pumpPFS begins the next SSD->PFS transfer if the PFS channel is
// idle. The PFS is a single shared resource: one item transfers at a
// time at min(SSD, PFS) bandwidth — equivalent in total time to fair
// sharing, and deterministic. Nodes are scanned in index order.
func (s *sim) pumpPFS() {
	if s.pfsBusy {
		return
	}
	for n := range s.nodes {
		ns := &s.nodes[n]
		if len(ns.ssdQ) == 0 {
			continue
		}
		size := ns.ssdQ[0]
		ns.ssdQ = ns.ssdQ[1:]
		s.pfsBusy = true
		rate := s.sys.SSD.Bandwidth
		if s.sys.PFS.Bandwidth < rate {
			rate = s.sys.PFS.Bandwidth
		}
		dur := time.Duration(float64(size) / rate * float64(time.Second))
		s.push(event{at: s.now + dur, kind: evSSDDrainDone, node: n, size: size})
		return
	}
}

// ssdDrainDone lands an item on the PFS and starts the next transfer.
func (s *sim) ssdDrainDone(node int, size int64) {
	ns := &s.nodes[node]
	ns.ssdUsed -= size
	s.bytesToPFS += size
	s.lastFlush = s.now
	s.pfsBusy = false
	s.pumpPFS()
	// SSD space freed: host drains blocked on SSD capacity can resume.
	s.startHostDrain(node)
}
