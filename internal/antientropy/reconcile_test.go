package antientropy

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// newStore opens a FileStore in a fresh test directory.
func newStore(t *testing.T) *checkpoint.FileStore {
	t.Helper()
	st, err := checkpoint.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// appendChain appends n full diffs with per-id deterministic content.
// tagOf lets a test plant divergent content at chosen ids.
func appendChain(t *testing.T, st *checkpoint.FileStore, n int, tagOf func(ck int) byte) {
	t.Helper()
	start, err := st.Len()
	if err != nil {
		t.Fatal(err)
	}
	for ck := start; ck < n; ck++ {
		d := &checkpoint.Diff{Method: checkpoint.MethodFull, CkptID: uint32(ck),
			DataLen: 64, ChunkSize: 16, Data: bytes.Repeat([]byte{tagOf(ck)}, 64)}
		if err := st.Append(d); err != nil {
			t.Fatalf("append %d: %v", ck, err)
		}
	}
}

func defaultTag(ck int) byte { return byte(0x10 + ck) }

// rot flips one payload byte of checkpoint ck's stored file.
func rot(t *testing.T, st *checkpoint.FileStore, ck int) {
	t.Helper()
	path := filepath.Join(st.Dir(), fmt.Sprintf("ckpt-%06d.gckp", ck))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// storePeer adapts a local FileStore into a Peer, mapping store
// failures onto RemoteError exactly as the server's StatusErr path
// would — the reconciler under test cannot tell it from a socket.
type storePeer struct {
	st *checkpoint.FileStore
}

func (p *storePeer) Addr() string { return "test-peer" }

func (p *storePeer) Digest(lineage string, q wire.DigestReq) (wire.DigestResp, error) {
	resp, err := BuildResp(p.st, q)
	if err != nil {
		return wire.DigestResp{}, &wire.RemoteError{Msg: err.Error()}
	}
	return resp, nil
}

func (p *storePeer) Pull(lineage string, ck int) ([]byte, error) {
	b, err := p.st.DiffBytes(ck)
	if err != nil {
		return nil, &wire.RemoteError{Msg: err.Error()}
	}
	return b, nil
}

func (p *storePeer) Close() error { return nil }

func newReconciler(t *testing.T, local, peer *checkpoint.FileStore, cfg Config) *Reconciler {
	t.Helper()
	cfg.Lineage = "lin"
	cfg.Store = local
	cfg.Peer = &storePeer{st: peer}
	cfg.Logf = t.Logf
	r, err := NewReconciler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// verifyConverged asserts both stores hold byte-identical content
// over the same span.
func verifyConverged(t *testing.T, a, b *checkpoint.FileStore) {
	t.Helper()
	na, err := a.Len()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Len()
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || a.Base() != b.Base() {
		t.Fatalf("spans differ: [%d,%d) vs [%d,%d)", a.Base(), na, b.Base(), nb)
	}
	for ck := a.Base(); ck < na; ck++ {
		ba, err := a.DiffBytes(ck)
		if err != nil {
			t.Fatalf("local diff %d: %v", ck, err)
		}
		bb, err := b.DiffBytes(ck)
		if err != nil {
			t.Fatalf("peer diff %d: %v", ck, err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("diff %d content differs", ck)
		}
	}
}

func TestSpanRootProperties(t *testing.T) {
	crcs := []uint32{0x11, 0x22, 0x33, 0x44, 0x55}
	root := SpanRoot(3, crcs)
	if root == ([16]byte{}) {
		t.Fatal("non-empty span digested to zero root")
	}
	if SpanRoot(3, crcs) != root {
		t.Fatal("root not deterministic")
	}
	if SpanRoot(4, crcs) == root {
		t.Fatal("shifted span collides with original")
	}
	mutated := append([]uint32(nil), crcs...)
	mutated[2] ^= 1
	if SpanRoot(3, mutated) == root {
		t.Fatal("mutated checksum did not change root")
	}
	if SpanRoot(0, nil) != ([16]byte{}) {
		t.Fatal("empty span must digest to the zero root")
	}
	if FoldCRCs(crcs) == FoldCRCs(mutated) {
		t.Fatal("fold CRC ignored a mutation")
	}
}

func TestBuildRespClipping(t *testing.T) {
	st := newStore(t)
	appendChain(t, st, 6, defaultTag)

	whole, err := BuildResp(st, wire.DigestReq{})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Base != 0 || whole.Len != 6 || whole.SpanLo != 0 || whole.SpanHi != 6 {
		t.Fatalf("whole-span digest: %+v", whole)
	}
	part, err := BuildResp(st, wire.DigestReq{Lo: 2, Hi: 99, Detail: true})
	if err != nil {
		t.Fatal(err)
	}
	if part.SpanLo != 2 || part.SpanHi != 6 || len(part.Detail) != 4 {
		t.Fatalf("clipped digest: %+v", part)
	}
	crcs, err := st.SpanChecksums(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if part.CRC != FoldCRCs(crcs) || part.Root != SpanRoot(2, crcs) {
		t.Fatal("digest does not match direct span checksums")
	}
	outside, err := BuildResp(st, wire.DigestReq{Lo: 40, Hi: 50})
	if err != nil {
		t.Fatal(err)
	}
	if outside.SpanLo != outside.SpanHi {
		t.Fatalf("out-of-span request must collapse empty: %+v", outside)
	}
}

func TestRoundCleanReplicas(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 8, defaultTag)
	appendChain(t, peer, 8, defaultTag)
	r := newReconciler(t, local, peer, Config{})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeClean || res.Healed != 0 || res.BytesPulled != 0 {
		t.Fatalf("clean replicas: %+v", res)
	}
}

func TestRoundEmptyReplicas(t *testing.T) {
	r := newReconciler(t, newStore(t), newStore(t), Config{})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeClean {
		t.Fatalf("empty replicas: %+v", res)
	}
}

func TestRoundHealsLocalRot(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 8, defaultTag)
	appendChain(t, peer, 8, defaultTag)
	rot(t, local, 3)

	r := newReconciler(t, local, peer, Config{})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeHealed || res.Healed != 1 || res.BytesPulled == 0 {
		t.Fatalf("rot heal: %+v", res)
	}
	verifyConverged(t, local, peer)
	holes, err := local.QuarantinedIDs()
	if err != nil || len(holes) != 0 {
		t.Fatalf("quarantine not cleared after heal: %v %v", holes, err)
	}
	if res, err := r.Round(); err != nil || res.Outcome != OutcomeClean {
		t.Fatalf("second round after heal: %+v %v", res, err)
	}
}

func TestRoundRefillsQuarantineHole(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 8, defaultTag)
	appendChain(t, peer, 8, defaultTag)
	if err := local.QuarantineDiff(4); err != nil {
		t.Fatal(err)
	}
	if n, err := local.Len(); err != nil || n != 4 {
		t.Fatalf("quarantine should shrink length to the hole: n=%d err=%v", n, err)
	}

	r := newReconciler(t, local, peer, Config{})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeHealed || res.Healed != 1 {
		t.Fatalf("hole refill: %+v", res)
	}
	verifyConverged(t, local, peer)
}

func TestRoundPullsMissingSuffix(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 3, defaultTag)
	appendChain(t, peer, 9, defaultTag)

	r := newReconciler(t, local, peer, Config{})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeHealed || res.Healed != 6 {
		t.Fatalf("suffix pull: %+v", res)
	}
	verifyConverged(t, local, peer)
}

func TestRoundResyncsAfterPeerFold(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 6, defaultTag)
	appendChain(t, peer, 6, defaultTag)
	// Fold the peer: adopt [2, 6) as its authoritative span. Its
	// manifest generation and baseline advance past the local ones.
	diffs := make([]*checkpoint.Diff, 0, 4)
	for ck := 2; ck < 6; ck++ {
		b, err := peer.DiffBytes(ck)
		if err != nil {
			t.Fatal(err)
		}
		d, err := checkpoint.Decode(bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		diffs = append(diffs, d)
	}
	if err := peer.InstallSpan(2, diffs); err != nil {
		t.Fatal(err)
	}

	r := newReconciler(t, local, peer, Config{})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeHealed || !res.Resynced {
		t.Fatalf("fold resync: %+v", res)
	}
	if local.Base() != 2 {
		t.Fatalf("local baseline after resync: %d", local.Base())
	}
	verifyConverged(t, local, peer)
}

func TestRoundPeerBehind(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 9, defaultTag)
	appendChain(t, peer, 4, defaultTag)

	r := newReconciler(t, local, peer, Config{})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomePeerBehind || res.Healed != 0 {
		t.Fatalf("peer behind: %+v", res)
	}
	if n, _ := local.Len(); n != 9 {
		t.Fatalf("local span mutated: %d", n)
	}
}

func TestRoundPeerDamagedLocalHealthy(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 8, defaultTag)
	appendChain(t, peer, 8, defaultTag)
	rot(t, peer, 5)

	r := newReconciler(t, local, peer, Config{})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomePeerDamaged || res.Healed != 0 {
		t.Fatalf("damaged peer: %+v", res)
	}
	// Pull-only repair: the local replica must be untouched.
	if err := local.VerifySpan(); err != nil {
		t.Fatalf("local span mutated: %v", err)
	}
}

// TestRoundBothRotten: the same diff rots on BOTH replicas. Healing
// must fail typed (the pulled replacement is rotten too), never
// ping-pong, and repeated failures must fail-stop the lineage with a
// quarantine error.
func TestRoundBothRotten(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 8, defaultTag)
	appendChain(t, peer, 8, defaultTag)
	rot(t, local, 3)
	rot(t, peer, 3)

	r := newReconciler(t, local, peer, Config{MaxHealFailures: 2})
	if _, err := r.Round(); !errors.Is(err, ErrHealFailed) {
		t.Fatalf("first failing round: %v", err)
	}
	if r.Quarantined() != nil {
		t.Fatal("quarantined before the failure budget")
	}
	_, err := r.Round()
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("second failing round must quarantine: %v", err)
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) || qe.Lineage != "lin" {
		t.Fatalf("quarantine error shape: %v", err)
	}
	// Fail-stopped: further rounds return the same typed error
	// without touching anything.
	if _, err := r.Round(); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("round after quarantine: %v", err)
	}
	if r.Quarantined() == nil {
		t.Fatal("Quarantined() must report the fail-stop")
	}
	// The local rotten file was never replaced with unverified bytes.
	b, err := os.ReadFile(filepath.Join(local.Dir(), "ckpt-000003.gckp"))
	if err != nil {
		t.Fatalf("rotten diff must remain on disk: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("rotten diff truncated")
	}
}

// TestRoundDivergence: both replicas hold verifying content at the
// same id with different bytes. No winner can be picked — the round
// must fail-stop immediately with ErrDiverged/ErrQuarantined.
func TestRoundDivergence(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 8, defaultTag)
	appendChain(t, peer, 8, func(ck int) byte {
		if ck == 5 {
			return 0xEE
		}
		return defaultTag(ck)
	})

	r := newReconciler(t, local, peer, Config{})
	_, err := r.Round()
	if !errors.Is(err, ErrDiverged) || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("divergence must quarantine immediately: %v", err)
	}
	var de *DivergenceError
	if !errors.As(err, &de) || de.Ckpt != 5 {
		t.Fatalf("divergence error shape: %v", err)
	}
	// Neither replica's content moved.
	if err := local.VerifySpan(); err != nil {
		t.Fatal(err)
	}
	if err := peer.VerifySpan(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundHealFailureResets: a failing round followed by a healthy
// one must reset the fail-stop budget.
func TestRoundHealFailureResets(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 6, defaultTag)
	appendChain(t, peer, 6, defaultTag)
	rot(t, local, 2)
	rot(t, peer, 2)

	r := newReconciler(t, local, peer, Config{MaxHealFailures: 2})
	if _, err := r.Round(); !errors.Is(err, ErrHealFailed) {
		t.Fatalf("failing round: %v", err)
	}
	// The peer recovers (its own reconciler healed it, here simulated
	// by rewriting the healthy bytes).
	d := &checkpoint.Diff{Method: checkpoint.MethodFull, CkptID: 2,
		DataLen: 64, ChunkSize: 16, Data: bytes.Repeat([]byte{defaultTag(2)}, 64)}
	if err := peer.ReinstallDiff(d); err != nil {
		t.Fatal(err)
	}
	res, err := r.Round()
	if err != nil || res.Outcome != OutcomeHealed {
		t.Fatalf("recovery round: %+v %v", res, err)
	}
	verifyConverged(t, local, peer)
	// Budget reset: a later single failure must not quarantine.
	rot(t, local, 4)
	rot(t, peer, 4)
	if _, err := r.Round(); !errors.Is(err, ErrHealFailed) {
		t.Fatalf("post-reset failing round: %v", err)
	}
	if r.Quarantined() != nil {
		t.Fatal("failure budget did not reset after a clean round")
	}
}

// TestRoundBisectionNarrow: a single rotten diff in a longer lineage
// must be found through bisection with a small detail window.
func TestRoundBisection(t *testing.T) {
	local, peer := newStore(t), newStore(t)
	appendChain(t, local, 40, defaultTag)
	appendChain(t, peer, 40, defaultTag)
	rot(t, local, 29)

	r := newReconciler(t, local, peer, Config{DetailWindow: 4})
	res, err := r.Round()
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeHealed || res.Healed != 1 {
		t.Fatalf("bisected heal: %+v", res)
	}
	verifyConverged(t, local, peer)
}

func TestRoundUnsupportedPeer(t *testing.T) {
	local := newStore(t)
	appendChain(t, local, 4, defaultTag)
	r, err := NewReconciler(Config{Lineage: "lin", Store: local, Peer: unsupportedPeer{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Round()
	if err != nil || res.Outcome != OutcomeUnsupported {
		t.Fatalf("v5 peer must degrade to a no-op: %+v %v", res, err)
	}
}

type unsupportedPeer struct{}

func (unsupportedPeer) Addr() string { return "old-peer" }
func (unsupportedPeer) Digest(string, wire.DigestReq) (wire.DigestResp, error) {
	return wire.DigestResp{}, &wire.RemoteError{Msg: "unsupported", Unsupported: true}
}
func (unsupportedPeer) Pull(string, int) ([]byte, error) {
	return nil, &wire.RemoteError{Msg: "unsupported", Unsupported: true}
}
func (unsupportedPeer) Close() error { return nil }

func TestBackoffDeterministicJitter(t *testing.T) {
	a := NewBackoff(10*time.Millisecond, 160*time.Millisecond, 42)
	b := NewBackoff(10*time.Millisecond, 160*time.Millisecond, 42)
	prevCeil := time.Duration(0)
	for i := 0; i < 10; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, da, db)
		}
		if da <= 0 || da > 160*time.Millisecond {
			t.Fatalf("step %d delay %v outside bounds", i, da)
		}
		if da > prevCeil*2 && prevCeil > 0 && da > 160*time.Millisecond {
			t.Fatalf("delay grew faster than doubling: %v after %v", da, prevCeil)
		}
		prevCeil = da
	}
	a.Reset()
	if d := a.Next(); d > 10*time.Millisecond {
		t.Fatalf("reset did not return to the minimum: %v", d)
	}
}
