// Package antientropy implements the background reconciler that keeps
// replicated checkpoint lineages converged: each round it exchanges
// compact span digests with a peer (wire v6 TDigest), bisects any
// mismatch down to the diverging checkpoints, classifies the damage
// (local rot, missing suffix, stale fold) and heals by pulling
// verified diffs from the healthy side. Replicas never exchange bulk
// data while they agree — a clean round costs one 48-byte digest.
//
// The safety posture is deliberately asymmetric, pull-only: a
// reconciler only ever repairs its OWN store from a peer, never
// pushes repairs at the peer. A damaged peer is reported
// (OutcomePeerDamaged) and left to its own reconciler, which sees the
// rot as local and heals it. That asymmetry is what rules out
// repair ping-pong: no node ever overwrites remote state, so two
// replicas can never take turns "fixing" each other with conflicting
// bytes. When healing cannot make progress — the peer's copy is
// rotten too, or both copies verify but disagree — the reconciler
// fail-stops the lineage with a typed quarantine error rather than
// converge on wrong data or diverge silently.
package antientropy

import (
	"encoding/binary"
	"fmt"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/merkle"
	"github.com/gpuckpt/gpuckpt/internal/murmur3"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// Store is the slice of checkpoint.FileStore the reconciler depends
// on; *checkpoint.FileStore satisfies it directly. An interface so
// the reconciler tests can interpose failure-injecting wrappers
// without touching the store implementation.
type Store interface {
	// Manifest returns the committed manifest (baseline, compaction
	// generation).
	Manifest() checkpoint.Manifest
	// Len returns the contiguous stored length.
	Len() (int, error)
	// SpanChecksums returns per-diff content CRCs for [lo, hi);
	// *checkpoint.CorruptError on rot.
	SpanChecksums(lo, hi int) ([]uint32, error)
	// QuarantineDiff moves one rotten diff file aside.
	QuarantineDiff(ck int) error
	// QuarantinedIDs lists the quarantine holes still open.
	QuarantinedIDs() ([]int, error)
	// ClearQuarantine removes ck's quarantine file after a heal.
	ClearQuarantine(ck int) error
	// ReinstallDiff writes a verified diff at its absolute id,
	// filling a hole or extending the stored suffix.
	ReinstallDiff(d *checkpoint.Diff) error
	// InstallSpan atomically adopts a peer's authoritative span.
	InstallSpan(base int, diffs []*checkpoint.Diff) error
}

// SpanRoot computes the murmur3-128 merkle root over a span's
// per-diff content checksums: leaf i hashes the pair (absolute
// checkpoint id lo+i, crcs[i]) so a span that slid by one diff never
// collides with its shifted self, and internal nodes combine their
// children with SumPair. An empty span digests to the zero root.
//
// The tree reuses the flattened-array merkle geometry of the dedup
// layer (internal/merkle); its bottom-up Levels sweep is the same
// Algorithm 1 walk, over checkpoints instead of chunks.
func SpanRoot(lo int, crcs []uint32) [16]byte {
	if len(crcs) == 0 {
		return [16]byte{}
	}
	t := merkle.New(len(crcs))
	var leaf [8]byte
	for i, crc := range crcs {
		binary.BigEndian.PutUint32(leaf[0:], uint32(lo+i))
		binary.BigEndian.PutUint32(leaf[4:], crc)
		t.Digests[t.LeafNode(i)] = murmur3.Sum128(leaf[:], 0)
	}
	for _, lv := range t.Levels() {
		for v := lv[0]; v < lv[1]; v++ {
			t.Digests[v] = murmur3.SumPair(t.Digests[merkle.Left(v)], t.Digests[merkle.Right(v)], 0)
		}
	}
	return t.Digests[0].Bytes()
}

// FoldCRCs folds a span's per-diff content checksums into one rolling
// CRC32C (big-endian entries, ChecksumAdd-extended). The cheap half
// of the digest pair: the merkle root localizes WHERE spans differ,
// the fold is the fast WHETHER.
func FoldCRCs(crcs []uint32) uint32 {
	var sum uint32
	var buf [4]byte
	for _, crc := range crcs {
		binary.BigEndian.PutUint32(buf[:], crc)
		sum = wire.ChecksumAdd(sum, buf[:])
	}
	return sum
}

// BuildResp computes the TDigest response for one request against a
// store: the lineage coordinates plus summary (and, when asked,
// per-diff) checksums of the requested span clipped to the stored
// one. Shared by the server's TDigest handler and the reconciler's
// local side of every comparison, so both ends of the wire digest
// identically by construction.
//
// Rot inside the digested span surfaces as the store's
// *checkpoint.CorruptError: a digest NEVER papers over a diff it
// cannot verify. The server turns that into a StatusErr the remote
// reconciler reports as a damaged peer; the local reconciler treats
// it as the signal to bisect and heal.
func BuildResp(st Store, q wire.DigestReq) (wire.DigestResp, error) {
	n, err := st.Len()
	if err != nil {
		return wire.DigestResp{}, err
	}
	man := st.Manifest()
	base := int(man.Base)
	lo, hi := int(q.Lo), int(q.Hi)
	if q.Lo == 0 && q.Hi == 0 {
		lo, hi = base, n
	}
	// Clip to the stored span; a request that misses it entirely
	// collapses to an empty span at the nearest stored edge.
	if lo < base {
		lo = base
	}
	if lo > n {
		lo = n
	}
	if hi < lo {
		hi = lo
	}
	if hi > n {
		hi = n
	}
	if q.Detail && hi-lo > wire.DigestMaxDetail {
		return wire.DigestResp{}, fmt.Errorf("antientropy: detail span [%d,%d) exceeds %d ids",
			lo, hi, wire.DigestMaxDetail)
	}
	crcs, err := st.SpanChecksums(lo, hi)
	if err != nil {
		return wire.DigestResp{}, err
	}
	resp := wire.DigestResp{
		Base:       uint32(base),
		Len:        uint32(n),
		Generation: man.Generation,
		CRC:        FoldCRCs(crcs),
		Root:       SpanRoot(lo, crcs),
		SpanLo:     uint32(lo),
		SpanHi:     uint32(hi),
	}
	if q.Detail {
		resp.Detail = crcs
	}
	return resp, nil
}
