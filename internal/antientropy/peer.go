package antientropy

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/connpool"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// Peer is the reconciler's view of one remote replica: digest a span,
// pull a diff. An interface so tests can stand in a local store or a
// lying peer without a socket.
type Peer interface {
	// Addr identifies the peer for logs and stats.
	Addr() string
	// Digest requests a TDigest of lineage's span. A peer that does
	// not speak v6 surfaces as an error matching wire.ErrUnsupported;
	// a peer that is alive but cannot verify its own span surfaces as
	// a *wire.RemoteError.
	Digest(lineage string, q wire.DigestReq) (wire.DigestResp, error)
	// Pull fetches checkpoint ck's canonical encoded bytes.
	Pull(lineage string, ck int) ([]byte, error)
	// Close releases the peer's connections.
	Close() error
}

// Dialer opens the transport to a peer; the chaos suite injects
// fault-wrapped connections through it.
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

// DefaultPeerTimeout bounds dials and request round trips when
// PeerOptions.Timeout is zero.
const DefaultPeerTimeout = 10 * time.Second

// peerBufSize matches the server's per-connection buffer.
const peerBufSize = 64 << 10

// PeerOptions configures a WirePeer.
type PeerOptions struct {
	// Timeout bounds dials and request round trips (default
	// DefaultPeerTimeout).
	Timeout time.Duration
	// Dialer overrides the transport dial (default net.DialTimeout).
	Dialer Dialer
}

// peerSession is the per-connection protocol state parked in the
// pool: the negotiated version, the connection's buffered endpoints,
// reusable frame storage, and the epoch-scoped lineage handle cache
// (valid exactly as long as its socket — a Discard drops both).
type peerSession struct {
	version uint8
	br      *bufio.Reader
	bw      *bufio.Writer
	frame   wire.Frame
	scratch []byte
	handles map[string]uint32
}

// WirePeer is the production Peer: one pooled connection to a ckptd
// replica (MaxActive=1 — anti-entropy traffic is sequential and
// sparse; the pool buys the parked session and redial health checks,
// the same shape as the replication follower). A WirePeer must be
// Closed (ckptlint closecontract).
type WirePeer struct {
	addr string
	opts PeerOptions
	pool *connpool.Pool
}

// NewWirePeer builds a peer client for addr. No connection is dialed
// until the first request.
func NewWirePeer(addr string, opts PeerOptions) (*WirePeer, error) {
	if addr == "" {
		return nil, errors.New("antientropy: peer address is required")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultPeerTimeout
	}
	if opts.Dialer == nil {
		opts.Dialer = func(a string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", a, timeout)
		}
	}
	p := &WirePeer{addr: addr, opts: opts}
	pool, err := connpool.New(connpool.Options{
		Dial:        p.dial,
		MaxActive:   1,
		WaitTimeout: opts.Timeout,
	})
	if err != nil {
		return nil, err
	}
	p.pool = pool
	return p, nil
}

// Addr identifies the peer.
func (p *WirePeer) Addr() string { return p.addr }

// Close releases the pooled connections. Idempotent.
func (p *WirePeer) Close() error { return p.pool.Close() }

// dial opens and handshakes one pooled connection.
func (p *WirePeer) dial() (net.Conn, any, error) {
	nc, err := p.opts.Dialer(p.addr, p.opts.Timeout)
	if err != nil {
		return nil, nil, err
	}
	nc.SetDeadline(time.Now().Add(p.opts.Timeout))
	v, err := wire.Handshake(nc)
	if err != nil {
		nc.Close()
		return nil, nil, err
	}
	nc.SetDeadline(time.Time{})
	return nc, &peerSession{
		version: v,
		br:      bufio.NewReaderSize(nc, peerBufSize),
		bw:      bufio.NewWriterSize(nc, peerBufSize),
		handles: make(map[string]uint32),
	}, nil
}

// Digest requests a span digest of lineage from the peer.
func (p *WirePeer) Digest(lineage string, q wire.DigestReq) (wire.DigestResp, error) {
	var resp wire.DigestResp
	err := p.withConn(lineage, func(c *connpool.Conn, handle uint32) error {
		sess := c.Session.(*peerSession)
		if sess.version < 6 {
			// The peer's hello already settled below v6: don't send a
			// frame it cannot parse. Same typed outcome as a v6-pinned
			// old server answering StatusUnsupported.
			return fmt.Errorf("antientropy: peer %s speaks v%d (digest needs v6): %w",
				p.addr, sess.version, wire.ErrUnsupported)
		}
		fr, err := p.roundTrip(c, &wire.Frame{
			Type: wire.TDigest, Lineage: handle, Payload: wire.EncodeDigestReq(q)})
		if err != nil {
			return err
		}
		resp, err = wire.DecodeDigestResp(fr.Payload)
		return err
	})
	return resp, err
}

// Pull fetches checkpoint ck's canonical encoded bytes. The copy is
// deliberate: the frame payload aliases the session scratch buffer.
func (p *WirePeer) Pull(lineage string, ck int) ([]byte, error) {
	var out []byte
	err := p.withConn(lineage, func(c *connpool.Conn, handle uint32) error {
		fr, err := p.roundTrip(c, &wire.Frame{
			Type: wire.TPull, Lineage: handle, Ckpt: uint32(ck)})
		if err != nil {
			return err
		}
		out = append([]byte(nil), fr.Payload...)
		return nil
	})
	return out, err
}

// withConn runs fn with a checked-out connection and its lineage
// handle, retrying once on a fresh connection when the pooled one
// fails at the transport level (a parked socket severed by a peer
// restart). Typed remote errors are NOT retried — the peer answered;
// its connection is healthy and the error is the result.
func (p *WirePeer) withConn(lineage string, fn func(c *connpool.Conn, handle uint32) error) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		c, err := p.pool.Get()
		if err != nil {
			return err
		}
		handle, err := p.openLineage(c, lineage)
		if err == nil {
			err = fn(c, handle)
		}
		var re *wire.RemoteError
		if err == nil || errors.As(err, &re) {
			c.Release()
			return err
		}
		c.Discard()
		lastErr = err
	}
	return lastErr
}

// openLineage resolves lineage to this connection's handle, caching
// it in the session for the socket's lifetime.
func (p *WirePeer) openLineage(c *connpool.Conn, lineage string) (uint32, error) {
	sess := c.Session.(*peerSession)
	if h, ok := sess.handles[lineage]; ok {
		return h, nil
	}
	fr, err := p.roundTrip(c, &wire.Frame{Type: wire.TOpen, Payload: []byte(lineage)})
	if err != nil {
		return 0, err
	}
	sess.handles[lineage] = fr.Lineage
	return fr.Lineage, nil
}

// roundTrip writes one request and reads one response under Timeout
// deadlines, surfacing error frames as their typed RemoteError.
func (p *WirePeer) roundTrip(c *connpool.Conn, req *wire.Frame) (*wire.Frame, error) {
	sess := c.Session.(*peerSession)
	c.NC.SetWriteDeadline(time.Now().Add(p.opts.Timeout))
	if err := wire.WriteFrame(sess.bw, req); err != nil {
		return nil, err
	}
	if err := sess.bw.Flush(); err != nil {
		return nil, err
	}
	c.NC.SetReadDeadline(time.Now().Add(p.opts.Timeout))
	if err := wire.ReadFrameInto(sess.br, wire.DefaultMaxPayload, &sess.frame, &sess.scratch); err != nil {
		return nil, err
	}
	resp := &sess.frame
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if resp.Type == wire.TErr {
		return nil, fmt.Errorf("antientropy: peer %s answered error frame without status", p.addr)
	}
	return resp, nil
}
