package antientropy

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// Typed reconciliation failures.
var (
	// ErrDiverged marks the unresolvable case: both replicas hold a
	// diff that passes verification at the same checkpoint id with
	// different content. No heal is attempted — there is no way to
	// pick a winner without losing acknowledged data — and the
	// lineage fail-stops immediately.
	ErrDiverged = errors.New("antientropy: replicas hold conflicting verified content")
	// ErrHealFailed matches (via errors.Is) a *HealError: a repair
	// that could not complete — the peer's copy was rotten too, the
	// pulled bytes failed verification, or the install failed.
	ErrHealFailed = errors.New("antientropy: heal failed")
	// ErrQuarantined matches (via errors.Is) a *QuarantineError: the
	// reconciler fail-stopped this lineage and will not run further
	// rounds until the operator intervenes.
	ErrQuarantined = errors.New("antientropy: lineage quarantined")

	// errRaced ends a round whose spans moved underneath it (a
	// compaction or append landed mid-bisection); the next round
	// starts over from fresh coordinates.
	errRaced = errors.New("antientropy: span moved mid-round")
	// errPeerDamaged ends a round because the peer answered a digest
	// request with a remote verification failure: the peer is alive
	// but cannot vouch for its own span. Pull-only repair means that
	// is the PEER's reconciler's problem — it will see the same rot
	// as local and heal from us.
	errPeerDamaged = errors.New("antientropy: peer cannot verify its span")
)

// DivergenceError reports conflicting verified content at one
// checkpoint. errors.Is(err, ErrDiverged).
type DivergenceError struct {
	Lineage string
	Ckpt    int
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("antientropy: lineage %q diverged at checkpoint %d: both replicas verify, content differs",
		e.Lineage, e.Ckpt)
}

// Is matches a DivergenceError against ErrDiverged.
func (e *DivergenceError) Is(target error) bool { return target == ErrDiverged }

// HealError reports one failed repair. errors.Is(err, ErrHealFailed).
type HealError struct {
	Lineage string
	Ckpt    int
	Cause   error
}

func (e *HealError) Error() string {
	return fmt.Sprintf("antientropy: healing lineage %q checkpoint %d: %v", e.Lineage, e.Ckpt, e.Cause)
}

// Unwrap exposes the underlying failure.
func (e *HealError) Unwrap() error { return e.Cause }

// Is matches a HealError against ErrHealFailed.
func (e *HealError) Is(target error) bool { return target == ErrHealFailed }

// QuarantineError reports a fail-stopped lineage: MaxHealFailures
// consecutive rounds could not heal (or the replicas diverged), so
// the reconciler refuses to run further rounds rather than oscillate
// or silently serve unrepairable state. errors.Is(err, ErrQuarantined).
type QuarantineError struct {
	Lineage string
	Cause   error
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("antientropy: lineage %q quarantined: %v", e.Lineage, e.Cause)
}

// Unwrap exposes the terminal failure.
func (e *QuarantineError) Unwrap() error { return e.Cause }

// Is matches a QuarantineError against ErrQuarantined.
func (e *QuarantineError) Is(target error) bool { return target == ErrQuarantined }

// Outcome classifies one completed reconciliation round.
type Outcome int

const (
	// OutcomeClean: the digests matched; nothing moved.
	OutcomeClean Outcome = iota
	// OutcomeHealed: this round repaired local damage or pulled a
	// missing suffix (Result.Healed / BytesPulled say how much).
	OutcomeHealed
	// OutcomePeerBehind: the peer stores a strict subset of local
	// state. Pull-only repair means nothing to do here — the peer's
	// own reconciler pulls the difference from us.
	OutcomePeerBehind
	// OutcomePeerDamaged: the peer answered a digest with a remote
	// verification failure; its reconciler heals it from us.
	OutcomePeerDamaged
	// OutcomeUnsupported: the peer does not speak wire v6; the
	// reconciler degrades to doing nothing against it.
	OutcomeUnsupported
	// OutcomeRaced: a compaction or append moved a span mid-round;
	// nothing was concluded, the next round starts over.
	OutcomeRaced
)

// String names an outcome for logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeHealed:
		return "healed"
	case OutcomePeerBehind:
		return "peer-behind"
	case OutcomePeerDamaged:
		return "peer-damaged"
	case OutcomeUnsupported:
		return "unsupported"
	case OutcomeRaced:
		return "raced"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Result summarizes one reconciliation round.
type Result struct {
	Outcome Outcome
	// Healed counts diffs repaired or installed this round (partial
	// progress is reported even when the round then failed).
	Healed int
	// BytesPulled counts encoded diff bytes fetched from the peer.
	BytesPulled int64
	// Resynced reports that the round adopted the peer's folded span
	// wholesale (InstallSpan) instead of patching diffs.
	Resynced bool
}

// Defaults applied by NewReconciler for zero Config fields.
const (
	// DefaultMaxHealFailures is the consecutive failed-heal-round
	// budget before a lineage fail-stops.
	DefaultMaxHealFailures = 3
	// DefaultDetailWindow is the bisection leaf width: spans at or
	// below it are compared per-diff instead of split further.
	DefaultDetailWindow = 256
)

// Config parameterizes a Reconciler.
type Config struct {
	// Lineage names the lineage under reconciliation. Required.
	Lineage string
	// Store is the local replica. Required.
	Store Store
	// Peer is the remote replica. Required.
	Peer Peer
	// Locked serializes store mutations with the store's owner — the
	// server passes a closure taking its per-lineage lock, so a heal
	// never interleaves with a concurrent push or compaction. nil
	// runs mutations directly (single-owner stores: tests, Repair).
	Locked func(fn func() error) error
	// MaxHealFailures bounds consecutive failed heal rounds before
	// the lineage fail-stops (default DefaultMaxHealFailures).
	MaxHealFailures int
	// DetailWindow is the bisection leaf width (default
	// DefaultDetailWindow, capped at wire.DigestMaxDetail).
	DetailWindow int
	// Logf sinks reconciler logs (default: silent).
	Logf func(format string, args ...any)
}

// Reconciler drives anti-entropy rounds for one lineage against one
// peer. Round is safe for use by one worker goroutine at a time; the
// fail-stop state is internally locked so observers (stats, tests)
// may poll Quarantined concurrently.
type Reconciler struct {
	cfg Config

	mu sync.Mutex
	// failures counts consecutive rounds that ended in a heal
	// failure; reset by any round that completes.
	//ckptlint:guardedby mu
	failures int
	// stopped, once set, is the terminal QuarantineError every
	// further Round returns without touching the store.
	//ckptlint:guardedby mu
	stopped error
}

// NewReconciler validates cfg and builds a Reconciler.
func NewReconciler(cfg Config) (*Reconciler, error) {
	if cfg.Lineage == "" || cfg.Store == nil || cfg.Peer == nil {
		return nil, errors.New("antientropy: Lineage, Store and Peer are required")
	}
	if cfg.MaxHealFailures <= 0 {
		cfg.MaxHealFailures = DefaultMaxHealFailures
	}
	if cfg.DetailWindow <= 0 || cfg.DetailWindow > wire.DigestMaxDetail {
		cfg.DetailWindow = DefaultDetailWindow
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Reconciler{cfg: cfg}, nil
}

// Quarantined returns the terminal QuarantineError if this lineage
// has fail-stopped, nil otherwise.
func (r *Reconciler) Quarantined() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// Round runs one reconciliation round and classifies its outcome.
//
// Error contract: a transport failure (peer unreachable) comes back
// as-is — the caller backs off and flags the peer degraded; it does
// NOT count toward fail-stop, because an unreachable peer says
// nothing about local health. A heal failure (errors.Is ErrHealFailed)
// counts: MaxHealFailures consecutive failing rounds quarantine the
// lineage. Divergence (errors.Is ErrDiverged) quarantines
// immediately. Once quarantined, every further Round returns the
// same *QuarantineError (errors.Is ErrQuarantined) without touching
// the store — fail-stop, not fail-retry.
func (r *Reconciler) Round() (Result, error) {
	r.mu.Lock()
	if r.stopped != nil {
		err := r.stopped
		r.mu.Unlock()
		return Result{}, err
	}
	r.mu.Unlock()

	res, err := r.round()

	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case err == nil:
		r.failures = 0
		return res, nil
	case errors.Is(err, errRaced):
		res.Outcome = OutcomeRaced
		return res, nil
	case errors.Is(err, errPeerDamaged):
		res.Outcome = OutcomePeerDamaged
		return res, nil
	case errors.Is(err, ErrDiverged):
		r.stopped = &QuarantineError{Lineage: r.cfg.Lineage, Cause: err}
		r.cfg.Logf("antientropy %s: %v", r.cfg.Lineage, r.stopped)
		return res, r.stopped
	case errors.Is(err, ErrHealFailed):
		r.failures++
		if r.failures >= r.cfg.MaxHealFailures {
			r.stopped = &QuarantineError{Lineage: r.cfg.Lineage, Cause: err}
			r.cfg.Logf("antientropy %s: %v", r.cfg.Lineage, r.stopped)
			return res, r.stopped
		}
		return res, err
	default:
		// Transport or local I/O failure: nothing was concluded about
		// the data, so nothing counts toward fail-stop.
		return res, err
	}
}

// round is one pass of the convergence algorithm:
//
//  1. one summary digest of the peer's whole span (the only traffic
//     a clean round costs);
//  2. fold awareness — a peer whose baseline advanced past ours is
//     adopted wholesale via InstallSpan, never patched diff-by-diff;
//  3. pre-existing quarantine holes are refilled from the peer;
//  4. a missing suffix is pulled;
//  5. the common span is compared against the summary and bisected
//     down to per-diff detail on mismatch, healing local rot and
//     fail-stopping on true divergence.
func (r *Reconciler) round() (Result, error) {
	var res Result
	st := r.cfg.Store

	pd, err := r.cfg.Peer.Digest(r.cfg.Lineage, wire.DigestReq{})
	if err != nil {
		var re *wire.RemoteError
		switch {
		case errors.Is(err, wire.ErrUnsupported):
			res.Outcome = OutcomeUnsupported
			return res, nil
		case errors.As(err, &re):
			// The peer is alive but cannot verify its own span. If the
			// rot is mutual — BOTH replicas damaged — waiting for the
			// peer to heal itself deadlocks: each side would report the
			// other damaged forever. So check local health too, and
			// self-heal any local rot right now; when the peer's copy
			// of the same diff is rotten as well, that heal fails, and
			// repeated failures drive the typed fail-stop instead of a
			// silent standoff.
			r.cfg.Logf("antientropy %s: peer %s digest failed remotely: %v",
				r.cfg.Lineage, r.cfg.Peer.Addr(), err)
			if err := r.selfHeal(&res); err != nil {
				return res, err
			}
			if res.Healed > 0 {
				res.Outcome = OutcomeHealed
			} else {
				res.Outcome = OutcomePeerDamaged
			}
			return res, nil
		default:
			return res, err
		}
	}
	pBase, pLen := int(pd.Base), int(pd.Len)

	n, err := st.Len()
	if err != nil {
		return res, err
	}
	base := int(st.Manifest().Base)

	switch {
	case pBase > base:
		// The peer folded past us: its manifest generation advanced
		// with its baseline, and diffs below pBase no longer exist
		// there. Patching cannot converge — adopt the span wholesale.
		if err := r.resync(pBase, pLen, &res); err != nil {
			return res, err
		}
		res.Outcome = OutcomeHealed
		res.Resynced = true
		return res, nil
	case pBase < base:
		// We folded past the peer; its reconciler resyncs from us.
		res.Outcome = OutcomePeerBehind
		return res, nil
	}

	// Refill quarantine holes the peer can cover. Holes below the
	// baseline are stale forensics from before a fold: drop them so
	// they stop reading as open damage.
	holes, err := st.QuarantinedIDs()
	if err != nil {
		return res, err
	}
	for _, ck := range holes {
		switch {
		case ck < base:
			if err := st.ClearQuarantine(ck); err != nil {
				return res, err
			}
			r.cfg.Logf("antientropy %s: dropped stale quarantine of %d (below baseline %d)",
				r.cfg.Lineage, ck, base)
		case ck < pLen:
			if err := r.heal(ck, 0, false, false, &res); err != nil {
				return res, err
			}
		}
	}

	// Pull the missing suffix: every checkpoint the peer stores past
	// our length. ReinstallDiff at the tail extends the stored span.
	if n, err = st.Len(); err != nil {
		return res, err
	}
	for ck := n; ck < pLen; ck++ {
		if err := r.heal(ck, 0, false, false, &res); err != nil {
			return res, err
		}
	}
	if n, err = st.Len(); err != nil {
		return res, err
	}

	// Compare the common span against the summary we already hold.
	// After the suffix pull the common span IS the peer's whole span
	// (or all of it that we overlap), so a clean round needs no
	// second digest request.
	hi := min(n, pLen)
	if hi > base {
		match, err := r.matchesSummary(base, hi, pd)
		if err != nil {
			return res, err
		}
		if !match {
			if err := r.bisect(base, hi, &res); err != nil {
				return res, err
			}
		}
	}

	switch {
	case res.Healed > 0:
		res.Outcome = OutcomeHealed
	case n > pLen:
		res.Outcome = OutcomePeerBehind
	default:
		res.Outcome = OutcomeClean
	}
	return res, nil
}

// selfHeal scans the local stored span for rot and heals whatever it
// finds from the peer — the fallback path used when the peer cannot
// produce digests. Bounded: each iteration either heals the first
// corrupt diff (shrinking the damage) or returns its HealError.
func (r *Reconciler) selfHeal(res *Result) error {
	for {
		n, err := r.cfg.Store.Len()
		if err != nil {
			return err
		}
		base := int(r.cfg.Store.Manifest().Base)
		if n <= base {
			return nil
		}
		_, err = r.cfg.Store.SpanChecksums(base, n)
		if err == nil {
			return nil
		}
		var ce *checkpoint.CorruptError
		if !errors.As(err, &ce) {
			return err
		}
		if err := r.heal(ce.Ckpt, 0, false, true, res); err != nil {
			return err
		}
	}
}

// matchesSummary compares the local digest of [lo, hi) against a
// peer summary already in hand. Local rot inside the span reads as a
// mismatch for the bisection to localize.
func (r *Reconciler) matchesSummary(lo, hi int, pd wire.DigestResp) (bool, error) {
	if int(pd.SpanLo) != lo || int(pd.SpanHi) != hi {
		// The peer's digest covers a different span than the common
		// one we computed — its store moved between the digest and
		// our Len snapshot.
		if int(pd.SpanLo) > lo || int(pd.SpanHi) < hi {
			return false, errRaced
		}
		// Peer covers MORE than the common span (we are shorter and
		// ahead races are already handled); digest spans must line up
		// exactly to compare, so fetch a clipped one.
		return r.spanMatches(lo, hi)
	}
	local, err := BuildResp(r.cfg.Store, wire.DigestReq{Lo: uint32(lo), Hi: uint32(hi)})
	if err != nil {
		if checkpoint.IsCorrupt(err) {
			return false, nil
		}
		return false, err
	}
	if int(local.SpanLo) != lo || int(local.SpanHi) != hi {
		return false, errRaced
	}
	return local.CRC == pd.CRC && local.Root == pd.Root, nil
}

// spanMatches digests [lo, hi) on both sides and compares summaries.
func (r *Reconciler) spanMatches(lo, hi int) (bool, error) {
	pd, err := r.cfg.Peer.Digest(r.cfg.Lineage, wire.DigestReq{Lo: uint32(lo), Hi: uint32(hi)})
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return false, fmt.Errorf("%w: %v", errPeerDamaged, err)
		}
		return false, err
	}
	if int(pd.SpanLo) != lo || int(pd.SpanHi) != hi {
		return false, errRaced
	}
	return r.matchesSummary(lo, hi, pd)
}

// bisect recursively halves a mismatching span down to DetailWindow,
// then repairs it per-diff. Only mismatching halves recurse, so a
// single rotten diff in a long lineage costs O(log n) summary
// digests plus one detail request.
func (r *Reconciler) bisect(lo, hi int, res *Result) error {
	if hi-lo <= r.cfg.DetailWindow {
		return r.repairSpan(lo, hi, res)
	}
	mid := lo + (hi-lo)/2
	for _, half := range [2][2]int{{lo, mid}, {mid, hi}} {
		match, err := r.spanMatches(half[0], half[1])
		if err != nil {
			return err
		}
		if !match {
			if err := r.bisect(half[0], half[1], res); err != nil {
				return err
			}
		}
	}
	return nil
}

// repairSpan fetches the peer's per-diff detail for a narrow span and
// walks it against local per-diff checksums. Each local diff is
// checksummed individually so one rotten file cannot mask damage
// behind it. A local verification failure is rot to heal; a local
// diff that verifies but disagrees with a peer diff that also
// verified is divergence, and divergence fail-stops.
func (r *Reconciler) repairSpan(lo, hi int, res *Result) error {
	pd, err := r.cfg.Peer.Digest(r.cfg.Lineage,
		wire.DigestReq{Lo: uint32(lo), Hi: uint32(hi), Detail: true})
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return fmt.Errorf("%w: %v", errPeerDamaged, err)
		}
		return err
	}
	if int(pd.SpanLo) != lo || int(pd.SpanHi) != hi || len(pd.Detail) != hi-lo {
		return errRaced
	}
	for ck := lo; ck < hi; ck++ {
		want := pd.Detail[ck-lo]
		crcs, err := r.cfg.Store.SpanChecksums(ck, ck+1)
		switch {
		case err == nil && crcs[0] == want:
			continue
		case err == nil:
			return &DivergenceError{Lineage: r.cfg.Lineage, Ckpt: ck}
		case checkpoint.IsCorrupt(err):
			if err := r.heal(ck, want, true, true, res); err != nil {
				return err
			}
		default:
			return err
		}
	}
	return nil
}

// heal pulls checkpoint ck from the peer, verifies it (against
// wantCRC when haveCRC, plus a structural decode and id cross-check),
// and installs it. Verification happens BEFORE the local quarantine:
// a failed pull must not leave a self-inflicted hole. When the local
// file exists and is rotten (quarantine=true) it is moved aside
// first — the rotten bytes survive as forensic evidence and a crash
// mid-heal leaves a typed hole, never a half-written diff
// masquerading as healthy.
func (r *Reconciler) heal(ck int, wantCRC uint32, haveCRC, quarantine bool, res *Result) error {
	fail := func(cause error) error {
		return &HealError{Lineage: r.cfg.Lineage, Ckpt: ck, Cause: cause}
	}
	b, err := r.cfg.Peer.Pull(r.cfg.Lineage, ck)
	if err != nil {
		return fail(err)
	}
	if haveCRC && checkpoint.DiffChecksum(b) != wantCRC {
		return fail(fmt.Errorf("pulled bytes fail the peer's own checksum"))
	}
	d, err := checkpoint.Decode(bytes.NewReader(b))
	if err != nil {
		return fail(fmt.Errorf("pulled bytes do not decode: %w", err))
	}
	if int(d.CkptID) != ck {
		return fail(fmt.Errorf("pull returned diff %d", d.CkptID))
	}
	err = r.locked(func() error {
		if quarantine {
			if err := r.cfg.Store.QuarantineDiff(ck); err != nil {
				return err
			}
		}
		if err := r.cfg.Store.ReinstallDiff(d); err != nil {
			return err
		}
		return r.cfg.Store.ClearQuarantine(ck)
	})
	if err != nil {
		return fail(err)
	}
	res.Healed++
	res.BytesPulled += int64(len(b))
	r.cfg.Logf("antientropy %s: healed checkpoint %d from %s (%d bytes)",
		r.cfg.Lineage, ck, r.cfg.Peer.Addr(), len(b))
	return nil
}

// resync adopts the peer's authoritative span [pBase, pLen)
// wholesale: pull and verify every diff, then one InstallSpan
// transaction. The fold-aware path — the peer's compaction rewrote
// history below pBase, so patching individual diffs against it could
// never converge.
func (r *Reconciler) resync(pBase, pLen int, res *Result) error {
	fail := func(ck int, cause error) error {
		return &HealError{Lineage: r.cfg.Lineage, Ckpt: ck, Cause: cause}
	}
	if pLen <= pBase {
		return fail(pBase, fmt.Errorf("peer advertises empty folded span [%d,%d)", pBase, pLen))
	}
	diffs := make([]*checkpoint.Diff, 0, pLen-pBase)
	var pulled int64
	for ck := pBase; ck < pLen; ck++ {
		b, err := r.cfg.Peer.Pull(r.cfg.Lineage, ck)
		if err != nil {
			return fail(ck, err)
		}
		d, err := checkpoint.Decode(bytes.NewReader(b))
		if err != nil {
			return fail(ck, fmt.Errorf("pulled bytes do not decode: %w", err))
		}
		if int(d.CkptID) != ck {
			return fail(ck, fmt.Errorf("pull returned diff %d", d.CkptID))
		}
		diffs = append(diffs, d)
		pulled += int64(len(b))
	}
	if err := r.locked(func() error {
		return r.cfg.Store.InstallSpan(pBase, diffs)
	}); err != nil {
		return fail(pBase, err)
	}
	res.Healed += len(diffs)
	res.BytesPulled += pulled
	r.cfg.Logf("antientropy %s: resynced folded span [%d,%d) from %s (%d bytes)",
		r.cfg.Lineage, pBase, pLen, r.cfg.Peer.Addr(), pulled)
	return nil
}

// locked runs a store mutation under the owner's serialization hook.
func (r *Reconciler) locked(fn func() error) error {
	if r.cfg.Locked != nil {
		return r.cfg.Locked(fn)
	}
	return fn()
}

// Backoff is the jittered exponential retry delay of the reconciler
// workers: unreachable peers are re-probed at doubling intervals with
// half-interval jitter so a cluster rejoining after a partition does
// not thundering-herd its replicas. Seeded explicitly — reconciler
// schedules stay deterministic under the chaos suite.
type Backoff struct {
	min, max time.Duration
	cur      time.Duration
	rng      *rand.Rand
}

// NewBackoff builds a backoff ranging over [min, max].
func NewBackoff(minD, maxD time.Duration, seed int64) *Backoff {
	if minD <= 0 {
		minD = 50 * time.Millisecond
	}
	if maxD < minD {
		maxD = minD
	}
	return &Backoff{min: minD, max: maxD, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next delay: the doubled current interval with up
// to 50% subtracted jitter.
func (b *Backoff) Next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.min
	} else {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	jitter := time.Duration(b.rng.Int63n(int64(b.cur/2) + 1))
	return b.cur - jitter
}

// Reset returns the backoff to its minimum after a success.
func (b *Backoff) Reset() { b.cur = 0 }
