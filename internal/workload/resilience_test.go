package workload

import (
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// TestEndToEndCrashRestart closes the resilience loop of §1 across the
// whole stack: ORANGES checkpoints its GDV through the Tree
// deduplicator; the application "crashes"; the restart restores the
// GDV from the *checkpoint record* (not from any kept plaintext),
// resumes enumeration, keeps checkpointing into the same lineage, and
// the final state matches an uninterrupted run bit-exactly.
func TestEndToEndCrashRestart(t *testing.T) {
	g, err := graph.UnstructuredMesh(4, 4, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.NewPool(4)
	const nCkpts = 8
	const crashAfter = 4 // crash after checkpoint index 4 (5 batches)

	// Reference: uninterrupted run.
	ref, err := oranges.NewRunner(g, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	var refFinal []byte
	if err := ref.RunWithSnapshots(nCkpts, func(ck int, img []byte) error {
		if ck == nCkpts-1 {
			refFinal = append([]byte(nil), img...)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Run with Tree checkpointing until the crash.
	dev := device.New(device.A100(), pool, nil)
	gdvSize := oranges.NewGDV(g.NumVertices()).SizeBytes()
	d, err := dedup.New(checkpoint.MethodTree, gdvSize, dev, dedup.Options{ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	r1, err := oranges.NewRunner(g, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	crash := &struct{ error }{}
	err = r1.RunWithSnapshots(nCkpts, func(ck int, img []byte) error {
		if _, _, err := d.Checkpoint(img); err != nil {
			return err
		}
		if ck == crashAfter {
			return crash
		}
		return nil
	})
	if err != crash {
		t.Fatalf("crash injection failed: %v", err)
	}

	// Restart: everything the application knows comes from the record.
	rec := d.Record()
	if rec.Len() != crashAfter+1 {
		t.Fatalf("record holds %d checkpoints", rec.Len())
	}
	restored, err := rec.Restore(rec.Len() - 1)
	if err != nil {
		t.Fatal(err)
	}
	processed := g.NumVertices() * (crashAfter + 1) / nCkpts
	r2, err := oranges.ResumeRunner(g, pool, 4, restored, processed)
	if err != nil {
		t.Fatal(err)
	}
	err = r2.ResumeWithSnapshots(nCkpts, func(ck int, img []byte) error {
		_, _, err := d.Checkpoint(img)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// The lineage now holds all 8 checkpoints and the final state
	// matches the uninterrupted reference.
	if rec.Len() != nCkpts {
		t.Fatalf("lineage holds %d checkpoints after restart, want %d", rec.Len(), nCkpts)
	}
	final, err := rec.Restore(nCkpts - 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(final) != string(refFinal) {
		t.Fatal("post-restart final state differs from uninterrupted run")
	}
}
