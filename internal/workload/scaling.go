package workload

import (
	"fmt"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// ScalingRow is one point of the Figure 6 strong-scaling study.
type ScalingRow struct {
	Procs  int
	Method string
	// TotalInput sums the checkpointed bytes of all processes over all
	// checkpoints (first included, as in §3.3: "the sum of the first
	// ten checkpoints for all processes").
	TotalInput int64
	// TotalStored sums the stored checkpoint sizes.
	TotalStored int64
	// Ratio is TotalInput/TotalStored.
	Ratio float64
	// Throughput is TotalInput divided by the maximum per-process
	// modeled de-duplication time (the paper's scaling metric).
	Throughput float64
	// MaxProcTime is that maximum per-process modeled time.
	MaxProcTime time.Duration
}

// ScalingConfig parameterizes the strong-scaling experiment.
type ScalingConfig struct {
	Graph *graph.Graph
	// ProcCounts lists the process counts to test (paper: 1..64).
	ProcCounts []int
	// GPUsPerNode groups processes onto nodes for the host-ingest
	// contention model (ThetaGPU: 8).
	GPUsPerNode int
	// NumCheckpoints per process (paper: 10).
	NumCheckpoints int
	// MaxGraphletSize for ORANGES.
	MaxGraphletSize int
	// Methods to compare (paper: Tree vs Full).
	Methods []checkpoint.Method
	Options Options
}

// Scaling runs the strong-scaling experiment: each of P processes owns
// an interleaved share of the graph's roots but checkpoints its own
// full-size GDV replica (ORANGES is embarrassingly parallel, §3.3).
// Processes are simulated one at a time — total enumeration work is
// independent of P — while the device model applies the per-node
// host-ingest contention of P concurrent checkpointing GPUs.
//
// Scaling always uses the sequential Checkpoint path (Options.Pipelined
// is ignored): the runner reuses its snapshot buffer between
// checkpoints, which the pipelined engine's deferred back half cannot
// tolerate.
func Scaling(cfg ScalingConfig) ([]ScalingRow, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("workload: scaling needs a graph")
	}
	if cfg.GPUsPerNode < 1 {
		cfg.GPUsPerNode = 8
	}
	if cfg.NumCheckpoints < 1 {
		cfg.NumCheckpoints = 10
	}
	if cfg.MaxGraphletSize == 0 {
		cfg.MaxGraphletSize = 4
	}
	if len(cfg.Methods) == 0 {
		cfg.Methods = []checkpoint.Method{checkpoint.MethodFull, checkpoint.MethodTree}
	}
	opts := cfg.Options.withDefaults()
	pool := parallel.NewPool(opts.Workers)
	defer pool.Close()

	var rows []ScalingRow
	for _, procs := range cfg.ProcCounts {
		if procs < 1 {
			return nil, fmt.Errorf("workload: invalid process count %d", procs)
		}
		acc := make(map[checkpoint.Method]*ScalingRow, len(cfg.Methods))
		for _, m := range cfg.Methods {
			acc[m] = &ScalingRow{Procs: procs, Method: m.String()}
		}
		concurrent := procs
		if concurrent > cfg.GPUsPerNode {
			concurrent = cfg.GPUsPerNode
		}
		for p := 0; p < procs; p++ {
			runner, err := oranges.NewRunner(cfg.Graph, pool, cfg.MaxGraphletSize)
			if err != nil {
				return nil, err
			}
			// One deduplicator per method, all fed the same snapshots.
			type procState struct {
				d   *dedup.Deduplicator
				sum time.Duration
			}
			states := make(map[checkpoint.Method]*procState, len(cfg.Methods))
			for _, m := range cfg.Methods {
				node := device.ThetaGPUNode()
				node.SetConcurrentTransfers(concurrent)
				dev := device.New(opts.DeviceParams, pool, node)
				dopts := opts.Dedup
				dopts.ChunkSize = opts.ChunkSize
				dopts.MapCapacity = opts.MapCapacity
				d, err := dedup.New(m, runner.GDV().SizeBytes(), dev, dopts)
				if err != nil {
					// Release the deduplicators already built for the
					// earlier methods of this process.
					for _, st := range states {
						st.d.Close()
					}
					return nil, err
				}
				states[m] = &procState{d: d}
			}
			err = runner.RunStrideWithSnapshots(p, procs, cfg.NumCheckpoints, func(ck int, img []byte) error {
				for _, m := range cfg.Methods {
					st := states[m]
					_, stats, err := st.d.Checkpoint(img)
					if err != nil {
						return fmt.Errorf("proc %d/%d %s ckpt %d: %w", p, procs, m, ck, err)
					}
					a := acc[m]
					a.TotalInput += stats.InputBytes
					a.TotalStored += stats.DiffBytes
					st.sum += stats.DedupTime + stats.TransferTime
				}
				return nil
			})
			for _, m := range cfg.Methods {
				st := states[m]
				if st.sum > acc[m].MaxProcTime {
					acc[m].MaxProcTime = st.sum
				}
				st.d.Close()
			}
			if err != nil {
				return nil, err
			}
		}
		for _, m := range cfg.Methods {
			a := acc[m]
			if a.TotalStored > 0 {
				a.Ratio = float64(a.TotalInput) / float64(a.TotalStored)
			}
			if a.MaxProcTime > 0 {
				a.Throughput = float64(a.TotalInput) / a.MaxProcTime.Seconds()
			}
			rows = append(rows, *a)
		}
	}
	return rows, nil
}
