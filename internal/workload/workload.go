// Package workload orchestrates the paper's experimental scenarios
// (Tan et al., ICPP 2023, §3.2-§3.3): it runs the ORANGES driver
// application over an input graph, captures GDV snapshots at evenly
// spaced progress points, feeds the snapshot series through every
// de-duplication method and compression baseline, and aggregates the
// paper's two metrics — de-duplication ratio and throughput.
package workload

import (
	"fmt"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/murmur3"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// Series is a checkpoint snapshot series: the GDV images of one
// process at N evenly distributed moments of the ORANGES run. Building
// the series once and replaying it through each method keeps the
// expensive enumeration out of the method comparison.
type Series struct {
	Graph   string
	DataLen int
	Images  [][]byte
	// Digests fingerprint each image so restores can be verified
	// without retaining extra copies.
	Digests []murmur3.Digest
}

// BuildGDVSeries runs ORANGES over g with nCheckpoints evenly spaced
// snapshots and returns the captured series.
func BuildGDVSeries(g *graph.Graph, nCheckpoints, maxGraphlet int, pool *parallel.Pool) (*Series, error) {
	r, err := oranges.NewRunner(g, pool, maxGraphlet)
	if err != nil {
		return nil, err
	}
	s := &Series{Graph: g.Name(), DataLen: r.GDV().SizeBytes()}
	err = r.RunWithSnapshots(nCheckpoints, func(ck int, img []byte) error {
		cp := make([]byte, len(img))
		copy(cp, img)
		s.Images = append(s.Images, cp)
		s.Digests = append(s.Digests, murmur3.Sum128(cp, 0))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Subsample returns the N-checkpoint subseries of s, which must have a
// length divisible by N: snapshot j of the subseries is the state at
// progress (j+1)/N, exactly what a direct N-checkpoint run captures.
func (s *Series) Subsample(n int) (*Series, error) {
	if n < 1 || len(s.Images)%n != 0 {
		return nil, fmt.Errorf("workload: cannot subsample %d checkpoints to %d", len(s.Images), n)
	}
	step := len(s.Images) / n
	out := &Series{Graph: s.Graph, DataLen: s.DataLen}
	for j := 0; j < n; j++ {
		idx := (j+1)*step - 1
		out.Images = append(out.Images, s.Images[idx])
		out.Digests = append(out.Digests, s.Digests[idx])
	}
	return out, nil
}

// Row is one aggregated result line, comparable to one bar/point of
// the paper's figures. Following §3.2, aggregates exclude the first
// (full) checkpoint unless the series has only one.
type Row struct {
	Graph     string
	Label     string // method or codec name
	ChunkSize int
	NumCkpts  int
	Procs     int

	// InputBytes is the aggregated original checkpoint data.
	InputBytes int64
	// StoredBytes is the aggregated stored (deduped/compressed) size.
	StoredBytes int64
	// MetaBytes is the aggregated metadata portion (dedup rows only).
	MetaBytes int64
	// Ratio is InputBytes/StoredBytes.
	Ratio float64
	// Throughput is InputBytes divided by the modeled time to create
	// and ship the checkpoints, in bytes/second.
	Throughput float64
	// RestoreVerified reports that every checkpoint in the series was
	// reconstructed bit-exactly (dedup rows only).
	RestoreVerified bool
}

// Options configures a scenario run.
type Options struct {
	// ChunkSize for the dedup methods. Default 128.
	ChunkSize int
	// Workers for the simulated device's kernel pool (0 = GOMAXPROCS).
	Workers int
	// DeviceParams; zero value selects device.A100().
	DeviceParams device.Params
	// VerifyRestore re-derives every checkpoint from the stored record
	// and compares fingerprints. Costs extra time; on by default in
	// tests, off in large benches.
	VerifyRestore bool
	// MapCapacity overrides the dedup hash-table sizing.
	MapCapacity int
	// Pipelined drives the methods through CheckpointAsync, overlapping
	// each checkpoint's gather/serialize/store with the next one's
	// hash/label sweep. Output is bit-identical to the sequential path.
	Pipelined bool
	// Dedup passes extra algorithm options through to the methods
	// (ablation knobs). ChunkSize/MapCapacity fields here are
	// overridden by the fields above.
	Dedup dedup.Options
}

func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 128
	}
	if o.DeviceParams.MemBandwidth == 0 {
		o.DeviceParams = device.A100()
	}
	return o
}

// RunMethod replays the series through one de-duplication method on a
// fresh simulated device and returns the aggregated row.
func RunMethod(s *Series, method checkpoint.Method, opts Options) (Row, error) {
	opts = opts.withDefaults()
	pool := parallel.NewPool(opts.Workers)
	defer pool.Close()
	dev := device.New(opts.DeviceParams, pool, nil)
	dopts := opts.Dedup
	dopts.ChunkSize = opts.ChunkSize
	dopts.MapCapacity = opts.MapCapacity
	d, err := dedup.New(method, s.DataLen, dev, dopts)
	if err != nil {
		return Row{}, err
	}
	defer d.Close()

	row := Row{
		Graph:     s.Graph,
		Label:     method.String(),
		ChunkSize: opts.ChunkSize,
		NumCkpts:  len(s.Images),
		Procs:     1,
	}
	var modeled time.Duration
	accumulate := func(ck int, st dedup.Stats) {
		if ck == 0 && len(s.Images) > 1 {
			return // aggregate excludes the first full checkpoint (§3.2)
		}
		row.InputBytes += st.InputBytes
		row.StoredBytes += st.DiffBytes
		row.MetaBytes += st.MetadataBytes
		modeled += st.DedupTime + st.TransferTime
	}
	if opts.Pipelined {
		// Issue every checkpoint through the async engine, draining each
		// result only when the next front has been dispatched, so every
		// back half genuinely overlaps the following front half.
		chans := make([]<-chan dedup.AsyncResult, 0, len(s.Images))
		for ck, img := range s.Images {
			ch, err := d.CheckpointAsync(img)
			if err != nil {
				return Row{}, fmt.Errorf("workload: %s pipelined checkpoint %d: %w", method, ck, err)
			}
			chans = append(chans, ch)
		}
		for ck, ch := range chans {
			res := <-ch
			if res.Err != nil {
				return Row{}, fmt.Errorf("workload: %s pipelined checkpoint %d: %w", method, ck, res.Err)
			}
			accumulate(ck, res.Stats)
		}
	} else {
		for ck, img := range s.Images {
			_, st, err := d.Checkpoint(img)
			if err != nil {
				return Row{}, fmt.Errorf("workload: %s checkpoint %d: %w", method, ck, err)
			}
			accumulate(ck, st)
		}
	}
	if row.StoredBytes > 0 {
		row.Ratio = float64(row.InputBytes) / float64(row.StoredBytes)
	}
	if modeled > 0 {
		row.Throughput = float64(row.InputBytes) / modeled.Seconds()
	}
	if opts.VerifyRestore {
		row.RestoreVerified = true
		for ck := range s.Images {
			got, err := d.Restore(ck)
			if err != nil {
				return Row{}, fmt.Errorf("workload: %s restore %d: %w", method, ck, err)
			}
			if murmur3.Sum128(got, 0) != s.Digests[ck] {
				return Row{}, fmt.Errorf("workload: %s restore %d produced different bytes", method, ck)
			}
		}
	}
	return row, nil
}

// RunCodec replays the series through one compression baseline. The
// codecs have no cross-checkpoint memory (§4: "many compression
// algorithms cannot leverage the temporal redundancy"), so each
// snapshot compresses independently; modeled time is the codec's GPU
// rate plus the PCIe transfer of the compressed bytes.
func RunCodec(s *Series, codec compress.Codec, opts Options) (Row, error) {
	opts = opts.withDefaults()
	row := Row{
		Graph:    s.Graph,
		Label:    codec.Name(),
		NumCkpts: len(s.Images),
		Procs:    1,
	}
	node := device.NewNode(opts.DeviceParams.PCIeBandwidth * 4)
	var modeled time.Duration
	for ck, img := range s.Images {
		comp, err := codec.Compress(img)
		if err != nil {
			return Row{}, fmt.Errorf("workload: %s checkpoint %d: %w", codec.Name(), ck, err)
		}
		if ck == 0 && len(s.Images) > 1 {
			continue
		}
		row.InputBytes += int64(len(img))
		row.StoredBytes += int64(len(comp))
		compSecs := float64(len(img)) / codec.ModeledRate()
		xferSecs := float64(len(comp)) / node.EffectiveBandwidth(opts.DeviceParams.PCIeBandwidth)
		modeled += time.Duration((compSecs + xferSecs) * float64(time.Second))
	}
	if row.StoredBytes > 0 {
		row.Ratio = float64(row.InputBytes) / float64(row.StoredBytes)
	}
	if modeled > 0 {
		row.Throughput = float64(row.InputBytes) / modeled.Seconds()
	}
	return row, nil
}

// ChunkSweep reproduces Figure 4 for one graph: every method at every
// chunk size.
func ChunkSweep(s *Series, methods []checkpoint.Method, chunkSizes []int, opts Options) ([]Row, error) {
	var rows []Row
	for _, cs := range chunkSizes {
		o := opts
		o.ChunkSize = cs
		for _, m := range methods {
			row, err := RunMethod(s, m, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Frequency reproduces Figure 5 for one graph: every method and codec
// at every checkpoint count. The base series must be divisible by each
// requested N.
func Frequency(base *Series, ns []int, methods []checkpoint.Method, codecs []compress.Codec, opts Options) ([]Row, error) {
	var rows []Row
	for _, n := range ns {
		sub, err := base.Subsample(n)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			row, err := RunMethod(sub, m, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		for _, c := range codecs {
			row, err := RunCodec(sub, c, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
