package workload

import (
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/oranges"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

func testSeries(t *testing.T, n int) *Series {
	t.Helper()
	g, err := graph.Bubbles(36, 36, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildGDVSeries(g, n, 4, parallel.NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildGDVSeries(t *testing.T) {
	s := testSeries(t, 6)
	if len(s.Images) != 6 || len(s.Digests) != 6 {
		t.Fatalf("series has %d images", len(s.Images))
	}
	want := ((36*36 + oranges.VertexPad - 1) / oranges.VertexPad) * oranges.VertexPad * oranges.NumOrbits * 4
	if s.DataLen != want {
		t.Fatalf("data len %d want %d", s.DataLen, want)
	}
	for _, img := range s.Images {
		if len(img) != want {
			t.Fatal("image size mismatch")
		}
	}
	if s.Graph != "Hugebubbles" {
		t.Fatalf("graph name %q", s.Graph)
	}
	// Images must be distinct snapshots (counters grow).
	if s.Digests[0] == s.Digests[5] {
		t.Fatal("first and last snapshots identical")
	}
}

func TestSubsample(t *testing.T) {
	s := testSeries(t, 8)
	sub, err := s.Subsample(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Images) != 4 {
		t.Fatalf("subsample has %d images", len(sub.Images))
	}
	// Snapshot j of the subseries is image (j+1)*2-1 of the base.
	for j := 0; j < 4; j++ {
		if sub.Digests[j] != s.Digests[(j+1)*2-1] {
			t.Fatalf("subsample image %d mismatched", j)
		}
	}
	// Last snapshots coincide (full progress).
	if sub.Digests[3] != s.Digests[7] {
		t.Fatal("final snapshot mismatch")
	}
	if _, err := s.Subsample(3); err == nil {
		t.Fatal("non-divisor subsample accepted")
	}
	if _, err := s.Subsample(0); err == nil {
		t.Fatal("zero subsample accepted")
	}
}

func TestRunMethodAllMethods(t *testing.T) {
	s := testSeries(t, 5)
	opts := Options{ChunkSize: 128, VerifyRestore: true}
	rows := map[checkpoint.Method]Row{}
	for _, m := range checkpoint.Methods() {
		row, err := RunMethod(s, m, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !row.RestoreVerified {
			t.Fatalf("%v: restore not verified", m)
		}
		if row.InputBytes != int64(s.DataLen)*4 { // ckpts 1..4
			t.Fatalf("%v: input bytes %d", m, row.InputBytes)
		}
		if row.Ratio <= 0 || row.Throughput <= 0 {
			t.Fatalf("%v: degenerate row %+v", m, row)
		}
		rows[m] = row
	}
	full := rows[checkpoint.MethodFull]
	tree := rows[checkpoint.MethodTree]
	basic := rows[checkpoint.MethodBasic]
	list := rows[checkpoint.MethodList]
	if full.Ratio > 1.01 {
		t.Fatalf("Full ratio %.3f > 1", full.Ratio)
	}
	// Incremental methods beat Full on GDV series; Tree stores no more
	// than List (same data, compacted metadata).
	if basic.Ratio <= full.Ratio || list.Ratio <= full.Ratio || tree.Ratio <= full.Ratio {
		t.Fatalf("incremental ratios not above Full: basic %.2f list %.2f tree %.2f full %.2f",
			basic.Ratio, list.Ratio, tree.Ratio, full.Ratio)
	}
	if tree.StoredBytes > list.StoredBytes {
		t.Fatalf("Tree stored %d > List %d", tree.StoredBytes, list.StoredBytes)
	}
	if tree.MetaBytes > list.MetaBytes {
		t.Fatalf("Tree metadata %d > List %d", tree.MetaBytes, list.MetaBytes)
	}
}

// TestRunMethodPipelinedParity pins that the pipelined driver produces
// the same aggregate bytes, ratio and verified restores as the
// sequential one. Modeled times (and hence throughput) legitimately
// differ between the two engines.
func TestRunMethodPipelinedParity(t *testing.T) {
	s := testSeries(t, 5)
	for _, m := range checkpoint.Methods() {
		seq, err := RunMethod(s, m, Options{ChunkSize: 128, VerifyRestore: true})
		if err != nil {
			t.Fatalf("%v sequential: %v", m, err)
		}
		pip, err := RunMethod(s, m, Options{ChunkSize: 128, VerifyRestore: true, Pipelined: true})
		if err != nil {
			t.Fatalf("%v pipelined: %v", m, err)
		}
		if !pip.RestoreVerified {
			t.Fatalf("%v pipelined: restore not verified", m)
		}
		if pip.Throughput <= 0 {
			t.Fatalf("%v pipelined: degenerate throughput", m)
		}
		pip.Throughput = seq.Throughput
		if pip != seq {
			t.Fatalf("%v: pipelined row differs\npipelined: %+v\nsequential: %+v", m, pip, seq)
		}
	}
}

func TestRunCodec(t *testing.T) {
	s := testSeries(t, 4)
	for _, c := range compress.Registry() {
		row, err := RunCodec(s, c, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if row.Ratio <= 1 {
			t.Fatalf("%s: ratio %.2f on sparse GDV data", c.Name(), row.Ratio)
		}
		if row.Throughput <= 0 {
			t.Fatalf("%s: no throughput", c.Name())
		}
		if row.Label != c.Name() || row.Graph != s.Graph {
			t.Fatalf("%s: row identity wrong: %+v", c.Name(), row)
		}
	}
}

func TestChunkSweep(t *testing.T) {
	s := testSeries(t, 4)
	methods := []checkpoint.Method{checkpoint.MethodFull, checkpoint.MethodTree}
	rows, err := ChunkSweep(s, methods, []int{64, 256}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	// Tree at 64 B chunks should de-duplicate at least as well as at
	// 256 B (finer granularity finds more redundancy).
	var tree64, tree256 float64
	for _, r := range rows {
		if r.Label == "Tree" && r.ChunkSize == 64 {
			tree64 = r.Ratio
		}
		if r.Label == "Tree" && r.ChunkSize == 256 {
			tree256 = r.Ratio
		}
	}
	if tree64 < tree256*0.9 {
		t.Fatalf("Tree ratio at 64 B (%.2f) much worse than at 256 B (%.2f)", tree64, tree256)
	}
}

func TestFrequencyTemporalRedundancy(t *testing.T) {
	s := testSeries(t, 16)
	methods := []checkpoint.Method{checkpoint.MethodTree}
	codecs := []compress.Codec{compress.NewCascaded()}
	rows, err := Frequency(s, []int{4, 16}, methods, codecs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tree4, tree16 float64
	for _, r := range rows {
		if r.Label == "Tree" {
			switch r.NumCkpts {
			case 4:
				tree4 = r.Ratio
			case 16:
				tree16 = r.Ratio
			}
		}
	}
	// §3.3: increasing checkpoint frequency increases the temporal
	// redundancy de-duplication can exploit.
	if tree16 <= tree4 {
		t.Fatalf("Tree ratio at N=16 (%.2f) not above N=4 (%.2f)", tree16, tree4)
	}
}

func TestScalingReduction(t *testing.T) {
	g, err := graph.DelaunayLike(30, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Scaling(ScalingConfig{
		Graph:           g,
		ProcCounts:      []int{1, 4},
		GPUsPerNode:     8,
		NumCheckpoints:  4,
		MaxGraphletSize: 4,
		Methods:         []checkpoint.Method{checkpoint.MethodFull, checkpoint.MethodTree},
		Options:         Options{ChunkSize: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	get := func(procs int, m string) ScalingRow {
		for _, r := range rows {
			if r.Procs == procs && r.Method == m {
				return r
			}
		}
		t.Fatalf("row %d/%s missing", procs, m)
		return ScalingRow{}
	}
	padded := (g.NumVertices() + oranges.VertexPad - 1) / oranges.VertexPad * oranges.VertexPad
	gdvBytes := int64(padded * oranges.NumOrbits * 4)
	f1 := get(1, "Full")
	f4 := get(4, "Full")
	t1 := get(1, "Tree")
	t4 := get(4, "Tree")
	// Full checkpoint volume scales with process count.
	if f1.TotalInput != 4*gdvBytes || f4.TotalInput != 16*gdvBytes {
		t.Fatalf("full input %d/%d, want %d/%d", f1.TotalInput, f4.TotalInput, 4*gdvBytes, 16*gdvBytes)
	}
	if f4.TotalStored < f4.TotalInput {
		t.Fatalf("Full stored %d below input %d", f4.TotalStored, f4.TotalInput)
	}
	// Tree shrinks the record, and the reduction grows with scale
	// (each process's updates get sparser).
	if t1.Ratio <= 1 || t4.Ratio <= t1.Ratio {
		t.Fatalf("Tree scaling ratios not increasing: %0.2f -> %0.2f", t1.Ratio, t4.Ratio)
	}
	if t4.TotalStored >= f4.TotalStored {
		t.Fatal("Tree did not reduce total checkpoint size at scale")
	}
	if t4.Throughput <= 0 || f4.Throughput <= 0 {
		t.Fatal("degenerate throughput")
	}
}

func TestScalingValidation(t *testing.T) {
	if _, err := Scaling(ScalingConfig{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _ := graph.Bubbles(4, 4, 7)
	if _, err := Scaling(ScalingConfig{Graph: g, ProcCounts: []int{0}}); err == nil {
		t.Fatal("zero procs accepted")
	}
}
