package compress

import (
	"encoding/binary"
	"fmt"
)

// lz4 is a from-scratch implementation of the LZ4 block format
// (token / literals / 2-byte offset / match extension), the
// byte-oriented LZ codec family of nvCOMP's LZ4 backend. It favors
// speed over ratio: a single 64K-entry hash table of 4-byte sequences,
// greedy matching, 64 KiB window.
type lz4 struct{}

// NewLZ4 returns the LZ4-style codec.
func NewLZ4() Codec { return lz4{} }

func (lz4) Name() string { return "LZ4" }

// ModeledRate mirrors nvCOMP LZ4 on an A100 (~35 GB/s compression).
func (lz4) ModeledRate() float64 { return 35e9 }

const (
	lz4MinMatch  = 4
	lz4MaxOffset = 65535
	lz4HashBits  = 16
)

func lz4Hash(u uint32) uint32 {
	return (u * 2654435761) >> (32 - lz4HashBits)
}

func (lz4) Compress(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return []byte{}, nil
	}
	dst := make([]byte, 0, len(src)/2+32)
	var table [1 << lz4HashBits]int32
	for i := range table {
		table[i] = -1
	}

	emit := func(litStart, litEnd, matchLen, offset int) {
		litLen := litEnd - litStart
		token := byte(0)
		if litLen >= 15 {
			token = 0xF0
		} else {
			token = byte(litLen) << 4
		}
		if matchLen > 0 {
			ml := matchLen - lz4MinMatch
			if ml >= 15 {
				token |= 0x0F
			} else {
				token |= byte(ml)
			}
		}
		dst = append(dst, token)
		if litLen >= 15 {
			rest := litLen - 15
			for rest >= 255 {
				dst = append(dst, 255)
				rest -= 255
			}
			dst = append(dst, byte(rest))
		}
		dst = append(dst, src[litStart:litEnd]...)
		if matchLen > 0 {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(offset))
			ml := matchLen - lz4MinMatch
			if ml >= 15 {
				rest := ml - 15
				for rest >= 255 {
					dst = append(dst, 255)
					rest -= 255
				}
				dst = append(dst, byte(rest))
			}
		}
	}

	anchor := 0
	pos := 0
	limit := len(src) - lz4MinMatch
	for pos <= limit {
		h := lz4Hash(binary.LittleEndian.Uint32(src[pos:]))
		cand := table[h]
		table[h] = int32(pos)
		if cand >= 0 && pos-int(cand) <= lz4MaxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[pos:]) {
			// Extend the match forward.
			m := pos + lz4MinMatch
			c := int(cand) + lz4MinMatch
			for m < len(src) && src[m] == src[c] {
				m++
				c++
			}
			emit(anchor, pos, m-pos, pos-int(cand))
			pos = m
			anchor = m
			continue
		}
		pos++
	}
	// Trailing literals.
	emit(anchor, len(src), 0, 0)
	return dst, nil
}

func (lz4) Decompress(src []byte, dstLen int) ([]byte, error) {
	dst := make([]byte, 0, dstLen)
	pos := 0
	for pos < len(src) {
		token := src[pos]
		pos++
		litLen := int(token >> 4)
		if litLen == 15 {
			for {
				if pos >= len(src) {
					return nil, fmt.Errorf("lz4: truncated literal length")
				}
				b := src[pos]
				pos++
				litLen += int(b)
				if b != 255 {
					break
				}
			}
		}
		if pos+litLen > len(src) {
			return nil, fmt.Errorf("lz4: truncated literals")
		}
		dst = append(dst, src[pos:pos+litLen]...)
		pos += litLen
		if pos >= len(src) {
			break // final literals-only sequence
		}
		if pos+2 > len(src) {
			return nil, fmt.Errorf("lz4: truncated offset")
		}
		offset := int(binary.LittleEndian.Uint16(src[pos:]))
		pos += 2
		if offset == 0 || offset > len(dst) {
			return nil, fmt.Errorf("lz4: invalid offset %d at output %d", offset, len(dst))
		}
		matchLen := int(token & 0x0F)
		if matchLen == 15 {
			for {
				if pos >= len(src) {
					return nil, fmt.Errorf("lz4: truncated match length")
				}
				b := src[pos]
				pos++
				matchLen += int(b)
				if b != 255 {
					break
				}
			}
		}
		matchLen += lz4MinMatch
		// Byte-by-byte copy: matches may overlap their own output.
		start := len(dst) - offset
		for i := 0; i < matchLen; i++ {
			dst = append(dst, dst[start+i])
		}
	}
	if len(dst) != dstLen {
		return nil, fmt.Errorf("lz4: decompressed %d bytes, want %d", len(dst), dstLen)
	}
	return dst, nil
}
