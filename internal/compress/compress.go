// Package compress provides the lossless checkpoint-compression
// baselines the paper compares against (Tan et al., ICPP 2023, §3.2).
//
// The paper uses NVIDIA's nvCOMP library on the GPU. nvCOMP is
// proprietary and GPU-only, so this package substitutes from-scratch
// CPU implementations of the same algorithm families (see DESIGN.md
// §1): an LZ4-style byte-oriented LZ codec, a Cascaded codec
// (delta + run-length over 32-bit words, matching nvCOMP Cascaded's
// sweet spot on numeric data such as GDV counter arrays), a
// Bitcomp-style bit-packing codec, Deflate via the standard library,
// and a high-ratio Deflate configuration standing in for Zstd.
//
// Compression ratios are real (the codecs run on the actual
// checkpoint bytes); GPU compression *throughput* is modeled per codec
// with nvCOMP-like rates, consistent with the device cost model.
package compress

import (
	"fmt"
)

// Codec is a lossless block compressor.
type Codec interface {
	// Name is the label used in benchmark tables.
	Name() string
	// Compress returns the compressed representation of src.
	Compress(src []byte) ([]byte, error)
	// Decompress reverses Compress. dstLen is the expected output
	// size (checkpoint buffers have known length).
	Decompress(src []byte, dstLen int) ([]byte, error)
	// ModeledRate returns the modeled GPU compression throughput in
	// bytes/second, used to charge device time.
	ModeledRate() float64
}

// Wire-format codec identifiers (checkpoint.Diff.DataCodec). Zero
// means uncompressed.
const (
	CodecNone     uint8 = 0
	CodecLZ4      uint8 = 1
	CodecDeflate  uint8 = 2
	CodecZstd     uint8 = 3
	CodecCascaded uint8 = 4
	CodecBitcomp  uint8 = 5
)

// IDOf returns the wire-format id of a codec.
func IDOf(c Codec) uint8 {
	switch c.Name() {
	case "LZ4":
		return CodecLZ4
	case "Deflate":
		return CodecDeflate
	case "Zstd*":
		return CodecZstd
	case "Cascaded":
		return CodecCascaded
	case "Bitcomp":
		return CodecBitcomp
	default:
		return CodecNone
	}
}

// ByID returns the codec for a wire-format id.
func ByID(id uint8) (Codec, error) {
	switch id {
	case CodecLZ4:
		return NewLZ4(), nil
	case CodecDeflate:
		return NewDeflate(), nil
	case CodecZstd:
		return NewZstdProxy(), nil
	case CodecCascaded:
		return NewCascaded(), nil
	case CodecBitcomp:
		return NewBitcomp(), nil
	default:
		return nil, fmt.Errorf("compress: unknown codec id %d", id)
	}
}

// Registry returns the compression baselines in the order the paper's
// Figure 5 legends list them.
func Registry() []Codec {
	return []Codec{
		NewLZ4(),
		NewDeflate(),
		NewZstdProxy(),
		NewCascaded(),
		NewBitcomp(),
	}
}

// ByName returns the codec with the given name.
func ByName(name string) (Codec, error) {
	for _, c := range Registry() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("compress: unknown codec %q", name)
}

// Ratio returns len(src)/len(compressed) for reporting.
func Ratio(srcLen, compLen int) float64 {
	if compLen == 0 {
		return 0
	}
	return float64(srcLen) / float64(compLen)
}

// --- shared varint helpers (used by Cascaded) ---

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(src []byte, pos int) (uint64, int, error) {
	var v uint64
	var shift uint
	for {
		if pos >= len(src) {
			return 0, 0, fmt.Errorf("compress: truncated varint")
		}
		b := src[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, pos, nil
		}
		shift += 7
		if shift > 63 {
			return 0, 0, fmt.Errorf("compress: varint overflow")
		}
	}
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }
