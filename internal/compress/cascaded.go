package compress

import (
	"encoding/binary"
	"fmt"
)

// cascaded implements the delta + run-length scheme of nvCOMP's
// Cascaded codec family, specialized for 32-bit integer payloads such
// as the GDV counter arrays of the driver application: the input is
// viewed as little-endian uint32 words, delta-encoded, and runs of
// equal deltas are stored as (count, zigzag-delta) varint pairs. Long
// zero and constant regions — the common case for sparse graphlet
// counters — collapse to a few bytes.
type cascaded struct{}

// NewCascaded returns the Cascaded codec.
func NewCascaded() Codec { return cascaded{} }

func (cascaded) Name() string         { return "Cascaded" }
func (cascaded) ModeledRate() float64 { return 150e9 }

func (cascaded) Compress(src []byte) ([]byte, error) {
	nWords := len(src) / 4
	tail := src[nWords*4:]
	// Header: word count varint, tail length byte, tail bytes raw.
	dst := appendUvarint(nil, uint64(nWords))
	dst = append(dst, byte(len(tail)))
	dst = append(dst, tail...)

	var prev uint32
	i := 0
	for i < nWords {
		v := binary.LittleEndian.Uint32(src[i*4:])
		delta := int64(int32(v - prev))
		run := 1
		last := v
		for i+run < nWords {
			next := binary.LittleEndian.Uint32(src[(i+run)*4:])
			if int64(int32(next-last)) != delta {
				break
			}
			last = next
			run++
		}
		dst = appendUvarint(dst, uint64(run))
		dst = appendUvarint(dst, zigzag(delta))
		prev = last
		i += run
	}
	return dst, nil
}

func (cascaded) Decompress(src []byte, dstLen int) ([]byte, error) {
	nWords64, pos, err := readUvarint(src, 0)
	if err != nil {
		return nil, err
	}
	nWords := int(nWords64)
	if pos >= len(src) {
		return nil, fmt.Errorf("cascaded: truncated header")
	}
	tailLen := int(src[pos])
	pos++
	if pos+tailLen > len(src) {
		return nil, fmt.Errorf("cascaded: truncated tail")
	}
	tail := src[pos : pos+tailLen]
	pos += tailLen

	if nWords*4+tailLen != dstLen {
		return nil, fmt.Errorf("cascaded: payload %d+%d != expected %d", nWords*4, tailLen, dstLen)
	}
	dst := make([]byte, dstLen)
	var prev uint32
	out := 0
	for out < nWords {
		run64, p, err := readUvarint(src, pos)
		if err != nil {
			return nil, err
		}
		pos = p
		dz, p2, err := readUvarint(src, pos)
		if err != nil {
			return nil, err
		}
		pos = p2
		delta := uint32(int32(unzigzag(dz)))
		run := int(run64)
		if out+run > nWords {
			return nil, fmt.Errorf("cascaded: run overflows word count")
		}
		for r := 0; r < run; r++ {
			prev += delta
			binary.LittleEndian.PutUint32(dst[out*4:], prev)
			out++
		}
	}
	copy(dst[nWords*4:], tail)
	return dst, nil
}
