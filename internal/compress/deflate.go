package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// deflateCodec wraps the standard library DEFLATE implementation. At
// default level it stands in for nvCOMP's Deflate backend; at maximum
// level it serves as the high-ratio stand-in for Zstd (the stdlib has
// no zstd — see DESIGN.md §1), which the paper shows beating
// de-duplication at low checkpoint frequency (§3.3).
type deflateCodec struct {
	name  string
	level int
	rate  float64
}

// NewDeflate returns the Deflate baseline (default compression level).
func NewDeflate() Codec {
	return deflateCodec{name: "Deflate", level: flate.DefaultCompression, rate: 6e9}
}

// NewZstdProxy returns the maximum-effort Deflate configuration used
// as the Zstd ratio stand-in. The name carries the asterisk into every
// report so the substitution stays visible.
func NewZstdProxy() Codec {
	return deflateCodec{name: "Zstd*", level: flate.BestCompression, rate: 2.5e9}
}

func (d deflateCodec) Name() string         { return d.name }
func (d deflateCodec) ModeledRate() float64 { return d.rate }

func (d deflateCodec) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, d.level)
	if err != nil {
		return nil, fmt.Errorf("deflate: %w", err)
	}
	if _, err := w.Write(src); err != nil {
		return nil, fmt.Errorf("deflate: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("deflate: %w", err)
	}
	return buf.Bytes(), nil
}

func (d deflateCodec) Decompress(src []byte, dstLen int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	dst := make([]byte, 0, dstLen)
	buf := make([]byte, 64<<10)
	for {
		n, err := r.Read(buf)
		dst = append(dst, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("deflate: %w", err)
		}
	}
	if len(dst) != dstLen {
		return nil, fmt.Errorf("deflate: decompressed %d bytes, want %d", len(dst), dstLen)
	}
	return dst, nil
}
