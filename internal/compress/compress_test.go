package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func allCodecs() []Codec { return Registry() }

func roundTrip(t *testing.T, c Codec, src []byte) []byte {
	t.Helper()
	comp, err := c.Compress(src)
	if err != nil {
		t.Fatalf("%s compress: %v", c.Name(), err)
	}
	got, err := c.Decompress(comp, len(src))
	if err != nil {
		t.Fatalf("%s decompress: %v", c.Name(), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("%s round trip mismatch (%d bytes)", c.Name(), len(src))
	}
	return comp
}

func TestRoundTripEmpty(t *testing.T) {
	for _, c := range allCodecs() {
		roundTrip(t, c, nil)
		roundTrip(t, c, []byte{})
	}
}

func TestRoundTripPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := map[string][]byte{
		"single":      {42},
		"zeros":       make([]byte, 10000),
		"incompress":  randBytes(rng, 10000),
		"repetitive":  bytes.Repeat([]byte("abcdefgh"), 1000),
		"text":        bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 100),
		"odd-tail":    randBytes(rng, 1021),
		"three-bytes": {1, 2, 3},
		"small-ints":  smallCounters(rng, 5000),
	}
	for name, src := range inputs {
		for _, c := range allCodecs() {
			t.Run(c.Name()+"/"+name, func(t *testing.T) {
				roundTrip(t, c, src)
			})
		}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// smallCounters builds a uint32 array shaped like a sparse GDV: mostly
// zeros with occasional small counts.
func smallCounters(rng *rand.Rand, words int) []byte {
	b := make([]byte, words*4)
	for i := 0; i < words; i++ {
		if rng.Intn(10) == 0 {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(rng.Intn(100)))
		}
	}
	return b
}

func TestRoundTripQuick(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		f := func(src []byte) bool {
			comp, err := c.Compress(src)
			if err != nil {
				return false
			}
			got, err := c.Decompress(comp, len(src))
			return err == nil && bytes.Equal(got, src)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestCompressibleDataShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sparse := smallCounters(rng, 100000) // 400 KB, ~90% zero words
	for _, c := range allCodecs() {
		comp := roundTrip(t, c, sparse)
		if len(comp) >= len(sparse) {
			t.Errorf("%s: sparse counters did not shrink (%d -> %d)", c.Name(), len(sparse), len(comp))
		}
	}
}

func TestCascadedCrushesConstantRuns(t *testing.T) {
	data := make([]byte, 1<<20)
	for i := 0; i < len(data)/4; i++ {
		binary.LittleEndian.PutUint32(data[i*4:], 7)
	}
	c := NewCascaded()
	comp := roundTrip(t, c, data)
	if len(comp) > 64 {
		t.Fatalf("cascaded produced %d bytes for a constant 1 MiB array", len(comp))
	}
}

func TestBitcompWidthReduction(t *testing.T) {
	// All values < 256: width 8, so output should be ~1/4 of input.
	data := make([]byte, 4*4096)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4096; i++ {
		binary.LittleEndian.PutUint32(data[i*4:], uint32(rng.Intn(256)))
	}
	comp := roundTrip(t, NewBitcomp(), data)
	if len(comp) > len(data)/3 {
		t.Fatalf("bitcomp output %d bytes, expected ~%d", len(comp), len(data)/4)
	}
}

func TestLZ4FindsRepeats(t *testing.T) {
	unit := randBytes(rand.New(rand.NewSource(4)), 512)
	data := bytes.Repeat(unit, 64)
	comp := roundTrip(t, NewLZ4(), data)
	if len(comp) > len(data)/10 {
		t.Fatalf("lz4 output %d bytes for highly repetitive %d-byte input", len(comp), len(data))
	}
}

func TestLZ4OverlappingMatch(t *testing.T) {
	// RLE-like pattern forces overlapping matches (offset < match len).
	data := bytes.Repeat([]byte{0xAB}, 1000)
	roundTrip(t, NewLZ4(), data)
	data2 := bytes.Repeat([]byte{1, 2, 3}, 500)
	roundTrip(t, NewLZ4(), data2)
}

func TestDecompressErrors(t *testing.T) {
	for _, c := range allCodecs() {
		if _, err := c.Decompress([]byte{0xff, 0xff, 0xff}, 1000); err == nil {
			t.Errorf("%s: garbage decompressed without error", c.Name())
		}
		src := []byte("hello world hello world hello world")
		comp, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decompress(comp, len(src)+5); err == nil {
			t.Errorf("%s: wrong dstLen accepted", c.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, c := range allCodecs() {
		got, err := ByName(c.Name())
		if err != nil || got.Name() != c.Name() {
			t.Fatalf("ByName(%q) failed: %v", c.Name(), err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown codec name accepted")
	}
}

func TestModeledRatesOrdering(t *testing.T) {
	// Bit-twiddling codecs must be modeled faster than entropy coders,
	// as with nvCOMP.
	rate := func(name string) float64 {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return c.ModeledRate()
	}
	if !(rate("Bitcomp") > rate("Cascaded") && rate("Cascaded") > rate("LZ4") &&
		rate("LZ4") > rate("Deflate") && rate("Deflate") > rate("Zstd*")) {
		t.Fatal("modeled rate ordering does not match nvCOMP family ordering")
	}
}

func TestRatioHelper(t *testing.T) {
	if Ratio(100, 50) != 2 || Ratio(100, 0) != 0 {
		t.Fatal("Ratio helper wrong")
	}
}

func TestZigzag(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarint(t *testing.T) {
	f := func(v uint64) bool {
		buf := appendUvarint(nil, v)
		got, pos, err := readUvarint(buf, 0)
		return err == nil && got == v && pos == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readUvarint([]byte{0x80, 0x80}, 0); err == nil {
		t.Fatal("truncated varint accepted")
	}
	long := bytes.Repeat([]byte{0x80}, 11)
	if _, _, err := readUvarint(long, 0); err == nil {
		t.Fatal("overlong varint accepted")
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	data := smallCounters(rng, 1<<18) // 1 MiB sparse counters
	for _, c := range allCodecs() {
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Compress(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
