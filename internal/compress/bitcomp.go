package compress

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// bitcomp implements a Bitcomp-style fixed-block bit-packing codec:
// the input is viewed as little-endian uint32 words in blocks of 256;
// each block stores one width byte followed by every word packed to
// the block's maximum significant width. Counter arrays whose values
// are small but nonzero — where RLE gains little — still shrink by
// the ratio 32/width.
type bitcomp struct{}

// NewBitcomp returns the Bitcomp-style codec.
func NewBitcomp() Codec { return bitcomp{} }

func (bitcomp) Name() string         { return "Bitcomp" }
func (bitcomp) ModeledRate() float64 { return 300e9 }

const bitcompBlock = 256

func (bitcomp) Compress(src []byte) ([]byte, error) {
	nWords := len(src) / 4
	tail := src[nWords*4:]
	dst := appendUvarint(nil, uint64(nWords))
	dst = append(dst, byte(len(tail)))
	dst = append(dst, tail...)

	var acc uint64
	var accBits uint
	flush := func() {
		for accBits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	for blk := 0; blk < nWords; blk += bitcompBlock {
		end := blk + bitcompBlock
		if end > nWords {
			end = nWords
		}
		width := 0
		for i := blk; i < end; i++ {
			v := binary.LittleEndian.Uint32(src[i*4:])
			if w := bits.Len32(v); w > width {
				width = w
			}
		}
		dst = append(dst, byte(width))
		if width == 0 {
			continue
		}
		acc, accBits = 0, 0
		for i := blk; i < end; i++ {
			v := binary.LittleEndian.Uint32(src[i*4:])
			acc |= uint64(v) << accBits
			accBits += uint(width)
			flush()
		}
		if accBits > 0 {
			dst = append(dst, byte(acc))
			acc, accBits = 0, 0
		}
	}
	return dst, nil
}

func (bitcomp) Decompress(src []byte, dstLen int) ([]byte, error) {
	nWords64, pos, err := readUvarint(src, 0)
	if err != nil {
		return nil, err
	}
	nWords := int(nWords64)
	if pos >= len(src) {
		return nil, fmt.Errorf("bitcomp: truncated header")
	}
	tailLen := int(src[pos])
	pos++
	if pos+tailLen > len(src) {
		return nil, fmt.Errorf("bitcomp: truncated tail")
	}
	tail := src[pos : pos+tailLen]
	pos += tailLen
	if nWords*4+tailLen != dstLen {
		return nil, fmt.Errorf("bitcomp: payload %d+%d != expected %d", nWords*4, tailLen, dstLen)
	}

	dst := make([]byte, dstLen)
	for blk := 0; blk < nWords; blk += bitcompBlock {
		end := blk + bitcompBlock
		if end > nWords {
			end = nWords
		}
		if pos >= len(src) {
			return nil, fmt.Errorf("bitcomp: truncated block header")
		}
		width := uint(src[pos])
		pos++
		if width == 0 {
			continue // words already zero
		}
		if width > 32 {
			return nil, fmt.Errorf("bitcomp: invalid width %d", width)
		}
		var acc uint64
		var accBits uint
		for i := blk; i < end; i++ {
			for accBits < width {
				if pos >= len(src) {
					return nil, fmt.Errorf("bitcomp: truncated block payload")
				}
				acc |= uint64(src[pos]) << accBits
				pos++
				accBits += 8
			}
			v := uint32(acc & (1<<width - 1))
			acc >>= width
			accBits -= width
			binary.LittleEndian.PutUint32(dst[i*4:], v)
		}
	}
	copy(dst[nWords*4:], tail)
	return dst, nil
}
