package lifecycle

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

const (
	testChunk  = 64
	poolChunks = 32 // chunks 0..31 rotate content first seen at checkpoint 0
	flipChunks = 32 // chunks 32..63 get fresh content with period 4
	testLen    = (poolChunks + flipChunks) * testChunk
)

// buildImages generates a deterministic series of n buffer states with
// heavy cross-checkpoint duplication: the pool region of every
// checkpoint i > 0 is a rotation of content first stored at checkpoint
// 0, so List/Tree diffs carry shifted-duplicate references to
// checkpoint 0 — exactly the references a compaction folds away and
// must rewrite. The flip region injects fresh data every step so every
// diff also stores first occurrences.
func buildImages(n int) [][]byte {
	rng := rand.New(rand.NewSource(7))
	pool := make([][]byte, poolChunks)
	for i := range pool {
		pool[i] = make([]byte, testChunk)
		rng.Read(pool[i])
	}
	images := make([][]byte, n)
	cur := make([]byte, testLen)
	for i := 0; i < n; i++ {
		for c := 0; c < poolChunks; c++ {
			copy(cur[c*testChunk:], pool[(c+i)%poolChunks])
		}
		for c := poolChunks; c < poolChunks+flipChunks; c++ {
			if (c+i)%4 == 0 {
				rng.Read(cur[c*testChunk : (c+1)*testChunk])
			}
		}
		images[i] = append([]byte(nil), cur...)
	}
	return images
}

// buildLineage checkpoints images with the given method and persists
// the lineage into a fresh store directory.
func buildLineage(t *testing.T, method checkpoint.Method, images [][]byte) string {
	t.Helper()
	pool := parallel.NewPool(2)
	defer pool.Close()
	dev := device.New(device.A100(), pool, nil)
	d, err := dedup.New(method, testLen, dev, dedup.Options{ChunkSize: testChunk})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, img := range images {
		if _, _, err := d.Checkpoint(img); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteRecord(d.Record()); err != nil {
		t.Fatal(err)
	}
	return dir
}

// restoreAll reopens dir and byte-compares every restorable checkpoint
// against images (indexed absolutely).
func restoreAll(t *testing.T, dir string, images [][]byte) {
	t.Helper()
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := store.Base()
	length, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	if length != len(images) {
		t.Fatalf("store len %d, want %d", length, len(images))
	}
	rec, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	for k := base; k < length; k++ {
		state, err := rec.Restore(k - base)
		if err != nil {
			t.Fatalf("restore %d: %v", k, err)
		}
		if !bytes.Equal(state, images[k]) {
			t.Fatalf("checkpoint %d not byte-identical after compaction", k)
		}
	}
}

// TestCompactKeepLastNProperty is the subsystem's acceptance property:
// a 64-checkpoint lineage compacted under keep-last=8 keeps every
// retained index restoring byte-identically, shrinks the on-disk
// footprint, and compacts idempotently — for every diff method.
func TestCompactKeepLastNProperty(t *testing.T) {
	images := buildImages(64)
	methods := []struct {
		name    string
		method  checkpoint.Method
		rewrite bool // diffs reference earlier checkpoints => rewrites expected
	}{
		{"Basic", checkpoint.MethodBasic, false},
		{"List", checkpoint.MethodList, true},
		{"Tree", checkpoint.MethodTree, true},
	}
	for _, tc := range methods {
		t.Run(tc.name, func(t *testing.T) {
			dir := buildLineage(t, tc.method, images)
			store, err := checkpoint.NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			before, err := store.TotalBytes()
			if err != nil {
				t.Fatal(err)
			}
			mgr, err := New(store, KeepLastN(8), Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Close()
			st, err := mgr.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if st.OldBase != 0 || st.NewBase != 56 {
				t.Fatalf("baseline moved %d -> %d, want 0 -> 56", st.OldBase, st.NewBase)
			}
			if st.PrunedDiffs != 56 {
				t.Fatalf("pruned %d diffs, want 56", st.PrunedDiffs)
			}
			if tc.rewrite && st.RewrittenDiffs == 0 {
				t.Fatal("no suffix diffs rewritten despite references to pruned history")
			}
			if !tc.rewrite && st.RewrittenDiffs != 0 {
				t.Fatalf("%d Basic diffs rewritten; Basic diffs are self-contained", st.RewrittenDiffs)
			}
			after, err := store.TotalBytes()
			if err != nil {
				t.Fatal(err)
			}
			if after >= before {
				t.Fatalf("disk grew: %d -> %d bytes", before, after)
			}
			if st.FreedBytes != before-after {
				t.Fatalf("FreedBytes %d, want %d", st.FreedBytes, before-after)
			}
			// Every retained checkpoint restores byte-identically, both
			// through the live store and a fresh reopen.
			restoreAll(t, dir, images)
			// Idempotent: a second compaction is a no-op.
			st2, err := mgr.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if st2.NewBase != st2.OldBase || st2.PrunedDiffs != 0 {
				t.Fatalf("second compaction not a no-op: %+v", st2)
			}
			// The lineage keeps growing after compaction: appends resume
			// at the absolute length.
			d, err := RewriteBasic(images[63], images[0], testChunk, 64)
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Append(d); err != nil {
				t.Fatalf("append after compaction: %v", err)
			}
		})
	}
}

// TestCompactCrashAfterCommit simulates dying between the manifest
// commit and the file deletions (phase 3): reopening the store must
// complete the prune and leave every retained checkpoint byte-exact.
func TestCompactCrashAfterCommit(t *testing.T) {
	images := buildImages(32)
	dir := buildLineage(t, checkpoint.MethodTree, images)
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(store, KeepLastN(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	crash := errors.New("simulated crash")
	mgr.hookAfterCommit = func() error { return crash }
	if _, err := mgr.Compact(); !errors.Is(err, crash) {
		t.Fatalf("compact: %v, want injected crash", err)
	}
	// The commit happened, the prune did not: files below the baseline
	// are still on disk.
	if store.Base() != 24 {
		t.Fatalf("baseline %d after commit, want 24", store.Base())
	}
	files, err := store.Files()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 8 {
		t.Fatalf("restorable files %d, want 8", len(files))
	}
	// Recovery on reopen deletes the folded prefix and restores stay
	// byte-identical.
	restoreAll(t, dir, images)
}

// TestCompactCrashBeforeCommit simulates dying after the suffix
// rewrites and baseline install but before the manifest commit: the
// old manifest still governs, and because every replacement is
// state-equivalent and written in decreasing index order, EVERY
// original checkpoint — including the ones that were about to be
// folded — must still restore byte-identically on reopen.
func TestCompactCrashBeforeCommit(t *testing.T) {
	images := buildImages(32)
	dir := buildLineage(t, checkpoint.MethodTree, images)
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(store, KeepLastN(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	crash := errors.New("simulated crash")
	mgr.hookBeforeCommit = func() error { return crash }
	if _, err := mgr.Compact(); !errors.Is(err, crash) {
		t.Fatalf("compact: %v, want injected crash", err)
	}
	if store.Base() != 0 {
		t.Fatalf("baseline moved to %d without a manifest commit", store.Base())
	}
	// All 32 original checkpoints restore byte-identically from the
	// partially rewritten on-disk state.
	restoreAll(t, dir, images)
	// And a reopened manager can run the transaction to completion.
	store2, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2, err := New(store2, KeepLastN(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	st, err := mgr2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.NewBase != 24 {
		t.Fatalf("resumed compaction reached %d, want 24", st.NewBase)
	}
	restoreAll(t, dir, images)
}

func TestPolicies(t *testing.T) {
	cases := []struct {
		p            Policy
		base, length int
		want         int
	}{
		{KeepAll(), 0, 100, 0},
		{KeepAll(), 7, 100, 7},
		{KeepLastN(8), 0, 64, 56},
		{KeepLastN(8), 60, 64, 60}, // never backwards
		{KeepLastN(100), 0, 64, 0},
		{KeepEvery(16), 0, 64, 48},
		{KeepEvery(16), 0, 65, 64},
		{KeepEvery(16), 0, 16, 0},
		{KeepEvery(1), 0, 10, 9},
	}
	for _, tc := range cases {
		if got := tc.p.Baseline(tc.base, tc.length); got != tc.want {
			t.Errorf("%s.Baseline(%d,%d) = %d, want %d", tc.p.Name(), tc.base, tc.length, got, tc.want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"keep-all", "keep-last=8", "keep-every=16"} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ParsePolicy(%q).Name() = %q", name, p.Name())
		}
	}
	for _, bad := range []string{"", "keep", "keep-last=", "keep-last=0", "keep-last=-3", "keep-every=x", "lru"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestPinsClampCompaction(t *testing.T) {
	images := buildImages(24)
	dir := buildLineage(t, checkpoint.MethodTree, images)
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(store, KeepLastN(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if err := mgr.Pin(10); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Pin(10); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := mgr.Pin(99); err == nil {
		t.Fatal("pin outside range accepted")
	}
	if got := mgr.Pins(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("pins %v, want [10]", got)
	}
	// Policy wants baseline 20; the pin clamps it to 10.
	if target, err := mgr.Target(); err != nil || target != 10 {
		t.Fatalf("target %d (%v), want 10", target, err)
	}
	st, err := mgr.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.NewBase != 10 {
		t.Fatalf("compacted to %d, want pin-clamped 10", st.NewBase)
	}
	// An explicit target past the pin is refused.
	if _, err := mgr.MaterializeTo(15); err == nil {
		t.Fatal("materialize past pin accepted")
	}
	// Pins survive reopen (they live in the manifest).
	store2, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2, err := New(store2, KeepLastN(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if got := mgr2.Pins(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("pins after reopen %v, want [10]", got)
	}
	// Unpinning releases the clamp.
	if err := mgr2.Unpin(10); err != nil {
		t.Fatal(err)
	}
	st, err = mgr2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.NewBase != 20 {
		t.Fatalf("compacted to %d after unpin, want 20", st.NewBase)
	}
	restoreAll(t, dir, images)
}

func TestMaterializeTo(t *testing.T) {
	images := buildImages(16)
	dir := buildLineage(t, checkpoint.MethodList, images)
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(store, KeepAll(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	// keep-all never moves the baseline on its own.
	st, err := mgr.Compact()
	if err != nil || st.NewBase != 0 {
		t.Fatalf("keep-all compacted to %d (%v)", st.NewBase, err)
	}
	if _, err := mgr.MaterializeTo(16); err == nil {
		t.Fatal("target beyond range accepted")
	}
	st, err = mgr.MaterializeTo(12)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewBase != 12 || st.PrunedDiffs != 12 {
		t.Fatalf("materialize: %+v", st)
	}
	if _, err := mgr.MaterializeTo(5); err == nil {
		t.Fatal("backwards target accepted")
	}
	restoreAll(t, dir, images)
}

func TestManagerClosed(t *testing.T) {
	store, err := checkpoint.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(store, nil, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mgr.PolicyName() != "keep-all" {
		t.Fatalf("nil policy resolved to %q", mgr.PolicyName())
	}
	mgr.SetPolicy(KeepLastN(3))
	if mgr.PolicyName() != "keep-last=3" {
		t.Fatalf("policy %q after SetPolicy", mgr.PolicyName())
	}
	mgr.Close()
	mgr.Close() // idempotent
	if _, err := mgr.Compact(); err == nil {
		t.Fatal("closed manager compacted")
	}
	if err := mgr.Pin(0); err == nil {
		t.Fatal("closed manager pinned")
	}
}

func TestRewriteBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prev := make([]byte, 300) // deliberately not chunk-aligned
	rng.Read(prev)
	cur := append([]byte(nil), prev...)
	copy(cur[64:128], bytes.Repeat([]byte{0xAB}, 64))
	copy(cur[288:], []byte{1, 2, 3}) // tail chunk partial change

	d, err := RewriteBasic(prev, cur, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := checkpoint.NewRecord()
	full := &checkpoint.Diff{Method: checkpoint.MethodFull, CkptID: 0, DataLen: 300,
		ChunkSize: 64, Data: append([]byte(nil), prev...)}
	if err := rec.Append(full); err != nil {
		t.Fatal(err)
	}
	if err := rec.Append(d); err != nil {
		t.Fatal(err)
	}
	got, err := rec.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("RewriteBasic does not reproduce the target state")
	}
	if _, err := RewriteBasic(prev, cur[:10], 64, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RewriteBasic(prev, cur, 0, 1); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

// TestRacePinsDuringCompaction reads the pin set concurrently with pin
// churn and a compaction. Pins used to read the manifest without the
// manager lock, so a reader could observe the mid-transaction state a
// compaction commits in pieces; now every accessor serializes on m.mu
// and the reader can only ever see complete pin sets.
func TestRacePinsDuringCompaction(t *testing.T) {
	images := buildImages(24)
	dir := buildLineage(t, checkpoint.MethodTree, images)
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(store, KeepLastN(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if err := mgr.Pin(2); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, p := range mgr.Pins() {
				if p != 2 && p != 10 {
					t.Errorf("Pins returned unexpected checkpoint %d", p)
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := mgr.Pin(10); err != nil {
				t.Errorf("pin: %v", err)
				return
			}
			if err := mgr.Unpin(10); err != nil {
				t.Errorf("unpin: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := mgr.Compact(); err != nil {
			t.Errorf("compact: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestOnFoldHookFiresAfterCommit: the replication barrier hook runs
// exactly when a compaction moves the baseline — after the manifest
// commit (the store already reports the new base inside the hook) and
// never for a no-op compaction.
func TestOnFoldHookFiresAfterCommit(t *testing.T) {
	images := buildImages(12)
	dir := buildLineage(t, checkpoint.MethodBasic, images)
	store, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var folds [][2]int
	var baseInHook int
	mgr, err := New(store, KeepLastN(4), Options{
		OnFold: func(oldBase, newBase int) {
			folds = append(folds, [2]int{oldBase, newBase})
			baseInHook = store.Base()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	st, err := mgr.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 1 || folds[0] != [2]int{0, st.NewBase} {
		t.Fatalf("folds = %v, want one (0 -> %d)", folds, st.NewBase)
	}
	if baseInHook != st.NewBase {
		t.Fatalf("store base inside hook = %d, want committed base %d", baseInHook, st.NewBase)
	}
	// Idempotent re-compaction moves nothing and must not fire.
	if _, err := mgr.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(folds) != 1 {
		t.Fatalf("no-op compaction fired OnFold: %v", folds)
	}
	restoreAll(t, dir, images)
}
