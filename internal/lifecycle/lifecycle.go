// Package lifecycle bounds the growth of checkpoint lineages: it
// materializes consolidated baselines, applies retention policies and
// garbage-collects pruned diff files through a crash-safe transaction
// over a checkpoint.FileStore.
//
// The problem it solves is the flip side of the paper's incremental
// diffs (§1, §2.3): a lineage is an ever-growing chain, so restore
// latency and disk footprint grow linearly with checkpoint count.
// Production systems consolidate — a restore must replay a bounded
// chain, not the full history. The Manager folds the base checkpoint
// plus diffs [0..k] into one full baseline at index k by replaying
// them through checkpoint.Record (the same Apply used for restores,
// so the baseline is byte-identical to a restore at k by
// construction), then prunes the folded files.
//
// # Suffix rewriting
//
// Retained diffs above the baseline may reference pruned history: a
// Tree/List shifted-duplicate region carries a (SrcCkpt, SrcNode) pair
// that resolves against the data section of an EARLIER diff — often
// checkpoint 0, because the historical record of unique hashes keeps
// first occurrences forever (§2.2). Folding [0..k] would strand those
// references. The Manager therefore classifies every retained diff:
//
//   - clean: every SrcCkpt >= k and no referenced source was itself
//     rewritten. References to exactly k stay valid because the new
//     baseline is a full image — resolving any node against it yields
//     the same bytes the original region held. Clean diffs keep their
//     files untouched (byte-stable across repeated compactions).
//   - dirty: some reference would resolve below the new baseline (or
//     against a rewritten source). The diff is rewritten as a
//     self-contained MethodBasic diff — dirty-chunk bitmap between the
//     restored states at j-1 and j — which produces the identical
//     state when applied.
//
// # Transaction order and crash safety
//
// Writes happen in an order that keeps the store restorable at every
// intermediate crash point, with the manifest rename as the single
// commit point:
//
//  1. Rewrite dirty suffix diffs in DECREASING index order (each
//     replacement is state-equivalent, and a diff is only replaced
//     after every diff referencing it has been replaced), then install
//     the full baseline at k. Crash here: the old manifest is still
//     committed and every index in the old range restores identically.
//  2. Commit the new manifest (baseline k, generation+1) via
//     temp+rename. This is the commit point.
//  3. Delete files below k. Crash here: reopening the store completes
//     the prune (checkpoint.NewFileStore removes files below the
//     committed baseline).
//
// Before writing anything, the Manager rebuilds the post-compaction
// record in memory and byte-compares every retained restore against
// the original — a compaction that cannot prove byte-identical
// restores refuses to touch the disk.
package lifecycle

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/merkle"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// Policy decides how far the baseline of a lineage may advance.
type Policy interface {
	// Name returns the canonical parseable spelling ("keep-all",
	// "keep-last=8", "keep-every=16").
	Name() string
	// Baseline returns the desired baseline for a lineage whose stored
	// diffs span [base, length). It must return a value in
	// [base, length); explicit pins are applied by the Manager on top.
	Baseline(base, length int) int
}

type keepAll struct{}

// KeepAll retains every checkpoint: the baseline never advances.
func KeepAll() Policy { return keepAll{} }

func (keepAll) Name() string             { return "keep-all" }
func (keepAll) Baseline(base, _ int) int { return base }

type keepLastN struct{ n int }

// KeepLastN retains the newest n checkpoints: the baseline advances to
// length-n (never backwards).
func KeepLastN(n int) Policy { return keepLastN{n: max(n, 1)} }

func (p keepLastN) Name() string { return "keep-last=" + strconv.Itoa(p.n) }
func (p keepLastN) Baseline(base, length int) int {
	return max(base, length-p.n)
}

type keepEvery struct{ k int }

// KeepEvery advances the baseline to the most recent multiple of k: a
// consolidated baseline exists at every k-th index over time, and at
// most k-1 diffs ever separate the newest checkpoint from a full
// image.
func KeepEvery(k int) Policy { return keepEvery{k: max(k, 1)} }

func (p keepEvery) Name() string { return "keep-every=" + strconv.Itoa(p.k) }
func (p keepEvery) Baseline(base, length int) int {
	if length <= base {
		return base
	}
	return max(base, (length-1)/p.k*p.k)
}

// ParsePolicy parses the canonical policy spellings produced by
// Policy.Name: "keep-all", "keep-last=N", "keep-every=K".
func ParsePolicy(s string) (Policy, error) {
	if s == "keep-all" {
		return KeepAll(), nil
	}
	for prefix, mk := range map[string]func(int) Policy{
		"keep-last=":  KeepLastN,
		"keep-every=": KeepEvery,
	} {
		if !strings.HasPrefix(s, prefix) {
			continue
		}
		v, err := strconv.Atoi(strings.TrimPrefix(s, prefix))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("lifecycle: policy %q needs a positive integer", s)
		}
		return mk(v), nil
	}
	return nil, fmt.Errorf("lifecycle: unknown policy %q (want keep-all, keep-last=N or keep-every=K)", s)
}

// Stats reports one compaction transaction.
type Stats struct {
	// OldBase and NewBase are the baseline before and after; equal for
	// a no-op.
	OldBase, NewBase int
	// PrunedDiffs counts deleted diff files.
	PrunedDiffs int
	// RewrittenDiffs counts retained diffs rewritten as self-contained
	// Basic diffs because they referenced pruned history.
	RewrittenDiffs int
	// FreedBytes is the net on-disk change: bytes deleted by the prune
	// minus bytes added by the baseline and rewrites. Negative when
	// consolidation costs more than it frees (short chains).
	FreedBytes int64
}

// Options parameterizes a Manager.
type Options struct {
	// Workers enables a dedicated worker pool for parallel region
	// assembly during materialization restores (0 = sequential). The
	// pool is owned by the Manager and released by Close.
	Workers int

	// OnFold, when set, runs after a compaction transaction commits a
	// baseline move (its manifest rename is durable, the folded
	// prefix not yet pruned), with the old and new baselines. The
	// ckptd server uses it to push TResync barriers at live
	// subscribers whose resume cursors the fold just invalidated. It
	// runs with the Manager lock held — it must not call back into
	// the Manager — and cannot veto the transaction.
	OnFold func(oldBase, newBase int)
}

// Manager runs the lifecycle of one lineage: policy decisions,
// explicit pins and the compaction transaction. Its methods serialize
// on an internal mutex; coordination with concurrent writers of the
// same FileStore (the ckptd server's push path) is the caller's
// responsibility — the server holds its per-lineage lock around
// Compact, as it does around Append.
//
// A Manager must be Closed when no longer needed (enforced by
// ckptlint's closecontract check).
type Manager struct {
	mu sync.Mutex
	//ckptlint:guardedby mu
	store *checkpoint.FileStore
	//ckptlint:guardedby mu
	policy Policy
	//ckptlint:guardedby mu
	pool *parallel.Pool
	//ckptlint:guardedby mu
	closed bool

	// hookBeforeCommit and hookAfterCommit run around the manifest
	// commit; tests use them to inject crashes between transaction
	// phases. A non-nil error aborts the transaction at that point.
	//ckptlint:guardedby mu
	hookBeforeCommit func() error
	//ckptlint:guardedby mu
	hookAfterCommit func() error

	// onFold is Options.OnFold; set once at New and never mutated.
	onFold func(oldBase, newBase int)
}

// New creates a Manager over store. policy may be nil (KeepAll).
func New(store *checkpoint.FileStore, policy Policy, opts Options) (*Manager, error) {
	if store == nil {
		return nil, errors.New("lifecycle: nil store")
	}
	if policy == nil {
		policy = KeepAll()
	}
	var pool *parallel.Pool
	if opts.Workers > 0 {
		pool = parallel.NewPool(opts.Workers)
	}
	return &Manager{store: store, policy: policy, pool: pool, onFold: opts.OnFold}, nil
}

// Close releases the Manager's worker pool. Idempotent; a closed
// Manager rejects further compactions.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	if m.pool != nil {
		m.pool.Close()
		m.pool = nil
	}
}

// SetPolicy replaces the retention policy (nil selects KeepAll).
func (m *Manager) SetPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p == nil {
		p = KeepAll()
	}
	m.policy = p
}

// PolicyName returns the canonical spelling of the current policy.
func (m *Manager) PolicyName() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.policy.Name()
}

// Pin marks checkpoint ck as immune to compaction: no baseline may
// advance past it until it is unpinned.
func (m *Manager) Pin(ck int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("lifecycle: manager is closed")
	}
	base, length, err := m.span()
	if err != nil {
		return err
	}
	if ck < base || ck >= length {
		return fmt.Errorf("lifecycle: pin %d outside stored range [%d,%d)", ck, base, length)
	}
	man := m.store.Manifest()
	i := sort.Search(len(man.Pins), func(i int) bool { return man.Pins[i] >= uint32(ck) })
	if i < len(man.Pins) && int(man.Pins[i]) == ck {
		return nil // already pinned
	}
	man.Pins = append(man.Pins, 0)
	copy(man.Pins[i+1:], man.Pins[i:])
	man.Pins[i] = uint32(ck)
	man.Generation++
	return m.store.CommitManifest(man)
}

// Unpin removes the pin on checkpoint ck (a no-op if not pinned).
func (m *Manager) Unpin(ck int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("lifecycle: manager is closed")
	}
	man := m.store.Manifest()
	i := sort.Search(len(man.Pins), func(i int) bool { return man.Pins[i] >= uint32(ck) })
	if ck < 0 || i >= len(man.Pins) || int(man.Pins[i]) != ck {
		return nil
	}
	man.Pins = append(man.Pins[:i], man.Pins[i+1:]...)
	man.Generation++
	return m.store.CommitManifest(man)
}

// Pins returns the pinned checkpoint indices in ascending order.
func (m *Manager) Pins() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	pins := m.store.Manifest().Pins
	out := make([]int, len(pins))
	for i, p := range pins {
		out[i] = int(p)
	}
	return out
}

// span returns the stored range [base, length) of the store.
//
//ckptlint:locked mu
func (m *Manager) span() (int, int, error) {
	length, err := m.store.Len()
	if err != nil {
		return 0, 0, err
	}
	return m.store.Base(), length, nil
}

// Target returns the baseline the current policy and pins would select
// for the lineage as stored, without writing anything.
func (m *Manager) Target() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	base, length, err := m.span()
	if err != nil {
		return 0, err
	}
	return m.clampTarget(m.policy.Baseline(base, length), base), nil
}

// clampTarget applies pins (and the no-backwards rule) to a desired
// baseline.
//
//ckptlint:locked mu
func (m *Manager) clampTarget(target, base int) int {
	for _, p := range m.store.Manifest().Pins {
		target = min(target, int(p))
	}
	return max(target, base)
}

// Compact advances the baseline to the policy's target (clamped by
// pins) and garbage-collects the folded prefix. A target at or below
// the current baseline is a successful no-op.
func (m *Manager) Compact() (Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Stats{}, errors.New("lifecycle: manager is closed")
	}
	base, length, err := m.span()
	if err != nil {
		return Stats{}, err
	}
	target := m.clampTarget(m.policy.Baseline(base, length), base)
	return m.compactLocked(target, base, length)
}

// MaterializeTo folds the lineage up to the explicit baseline k,
// ignoring the policy but still refusing to fold past a pin.
func (m *Manager) MaterializeTo(k int) (Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Stats{}, errors.New("lifecycle: manager is closed")
	}
	base, length, err := m.span()
	if err != nil {
		return Stats{}, err
	}
	if k < base || k >= length {
		return Stats{}, fmt.Errorf("lifecycle: target %d outside stored range [%d,%d)", k, base, length)
	}
	for _, p := range m.store.Manifest().Pins {
		if int(p) < k {
			return Stats{}, fmt.Errorf("lifecycle: target %d would fold pinned checkpoint %d", k, p)
		}
	}
	return m.compactLocked(k, base, length)
}

// compactLocked runs the compaction transaction to baseline k. The
// caller guarantees base <= k < length.
//
//ckptlint:locked mu
func (m *Manager) compactLocked(k, base, length int) (Stats, error) {
	st := Stats{OldBase: base, NewBase: base}
	if k <= base {
		return st, nil
	}

	rec, err := m.store.Load() // record index i = absolute checkpoint base+i
	if err != nil {
		return st, err
	}
	if m.pool != nil {
		rec.SetPool(m.pool)
	}
	dataLen := rec.DataLen()
	if dataLen <= 0 {
		return st, fmt.Errorf("lifecycle: lineage has no data (length %d)", dataLen)
	}
	chunk := rec.ChunkSize()

	// Classify retained diffs: dirty ones reference history below k or
	// a source that is itself being rewritten (and thereby loses its
	// indexed regions). References to exactly k survive — the new
	// baseline is a full image.
	dirty := make(map[int]bool)
	for j := k + 1; j < length; j++ {
		for _, s := range rec.Diff(j - base).ShiftDupl {
			src := base + int(s.SrcCkpt)
			if src < k || dirty[src] {
				dirty[j] = true
				break
			}
		}
	}

	// Materialize state k and sweep forward once, capturing the
	// pre/post states of every dirty diff for its Basic rewrite.
	state, err := rec.Restore(k - base)
	if err != nil {
		return st, fmt.Errorf("lifecycle: materializing checkpoint %d: %w", k, err)
	}
	baseline := &checkpoint.Diff{
		Method:    checkpoint.MethodFull,
		CkptID:    uint32(k),
		DataLen:   uint64(dataLen),
		ChunkSize: uint32(chunk),
		Data:      append([]byte(nil), state...),
	}
	rewrites := make(map[int]*checkpoint.Diff)
	var prev []byte
	for j := k + 1; j < length; j++ {
		if dirty[j] {
			prev = append(prev[:0], state...)
		}
		if err := rec.Apply(state, j-base); err != nil {
			return st, fmt.Errorf("lifecycle: replaying checkpoint %d: %w", j, err)
		}
		if dirty[j] {
			rw, err := RewriteBasic(prev, state, chunk, uint32(j))
			if err != nil {
				return st, fmt.Errorf("lifecycle: rewriting checkpoint %d: %w", j, err)
			}
			rewrites[j] = rw
		}
	}

	// Prove byte-identical restores before touching the disk: rebuild
	// the post-compaction record in memory and sweep both records,
	// comparing every retained state.
	if err := m.verify(rec, rewrites, baseline, k, base, length); err != nil {
		return st, err
	}

	// Phase 1: rewrites in decreasing index order, then the baseline.
	// Every intermediate disk state is restorable under the OLD
	// manifest (each replacement is state-equivalent and happens after
	// all its referencing diffs were replaced).
	var added int64
	for j := length - 1; j > k; j-- {
		rw := rewrites[j]
		if rw == nil {
			continue
		}
		oldBytes := rec.Diff(j - base).TotalBytes()
		if err := m.store.ReplaceDiff(j, rw); err != nil {
			return st, err
		}
		added += rw.TotalBytes() - oldBytes
	}
	oldK := rec.Diff(k - base).TotalBytes()
	if err := m.store.ReplaceDiff(k, baseline); err != nil {
		return st, err
	}
	added += baseline.TotalBytes() - oldK

	if m.hookBeforeCommit != nil {
		if err := m.hookBeforeCommit(); err != nil {
			return st, err
		}
	}

	// Phase 2: commit.
	man := m.store.Manifest()
	man.Base = uint32(k)
	man.Generation++
	keep := man.Pins[:0]
	for _, p := range man.Pins {
		if int(p) >= k {
			keep = append(keep, p)
		}
	}
	man.Pins = keep
	if err := m.store.CommitManifest(man); err != nil {
		return st, err
	}
	st.NewBase = k
	st.RewrittenDiffs = len(rewrites)
	if m.onFold != nil && k > base {
		m.onFold(base, k)
	}

	if m.hookAfterCommit != nil {
		if err := m.hookAfterCommit(); err != nil {
			return st, err
		}
	}

	// Phase 3: garbage-collect the folded prefix.
	removed, freed, err := m.store.PruneBelowBase()
	if err != nil {
		return st, err
	}
	st.PrunedDiffs = removed
	st.FreedBytes = freed - added
	return st, nil
}

// verify rebuilds the post-compaction chain in memory and
// byte-compares every retained restore against the original record.
//
//ckptlint:locked mu
func (m *Manager) verify(rec *checkpoint.Record, rewrites map[int]*checkpoint.Diff,
	baseline *checkpoint.Diff, k, base, length int) error {
	newRec := checkpoint.NewRecord()
	if m.pool != nil {
		newRec.SetPool(m.pool)
	}
	bl := baseline.CloneShallow()
	if err := bl.Rebase(-int64(k)); err != nil {
		return err
	}
	if err := newRec.Append(bl); err != nil {
		return fmt.Errorf("lifecycle: verify baseline: %w", err)
	}
	for j := k + 1; j < length; j++ {
		var d *checkpoint.Diff
		var delta int64
		if rw := rewrites[j]; rw != nil {
			d, delta = rw.CloneShallow(), -int64(k) // rewrites carry absolute ids
		} else {
			d, delta = rec.Diff(j-base).CloneShallow(), -int64(k-base) // record ids are base-relative
		}
		if err := d.Rebase(delta); err != nil {
			return fmt.Errorf("lifecycle: verify checkpoint %d: %w", j, err)
		}
		if err := newRec.Append(d); err != nil {
			return fmt.Errorf("lifecycle: verify checkpoint %d: %w", j, err)
		}
	}

	dataLen := rec.DataLen()
	oldState := make([]byte, dataLen)
	newState := make([]byte, dataLen)
	for i := 0; i <= k-base; i++ {
		if err := rec.Apply(oldState, i); err != nil {
			return err
		}
	}
	if err := newRec.Apply(newState, 0); err != nil {
		return err
	}
	if !bytes.Equal(oldState, newState) {
		return fmt.Errorf("lifecycle: baseline at %d diverges from original restore; refusing to compact", k)
	}
	for j := k + 1; j < length; j++ {
		if err := rec.Apply(oldState, j-base); err != nil {
			return err
		}
		if err := newRec.Apply(newState, j-k); err != nil {
			return err
		}
		if !bytes.Equal(oldState, newState) {
			return fmt.Errorf("lifecycle: checkpoint %d diverges after compaction; refusing to compact", j)
		}
	}
	return nil
}

// RewriteBasic builds a self-contained MethodBasic diff carrying the
// chunks that differ between prev and cur, with checkpoint id ckptID.
// Applying it to state prev yields exactly cur — the rewrite used for
// retained diffs whose references were folded away, and the fallback a
// stale pusher can use when the server rejects a diff for referencing
// pruned history.
func RewriteBasic(prev, cur []byte, chunkSize int, ckptID uint32) (*checkpoint.Diff, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("lifecycle: chunk size %d must be positive", chunkSize)
	}
	if len(prev) != len(cur) {
		return nil, fmt.Errorf("lifecycle: state lengths differ: %d vs %d", len(prev), len(cur))
	}
	nChunks := merkle.NumChunks(len(cur), chunkSize)
	bm := make([]byte, checkpoint.BitmapLen(nChunks))
	var data []byte
	for c := 0; c < nChunks; c++ {
		lo := c * chunkSize
		hi := min(lo+chunkSize, len(cur))
		if !bytes.Equal(prev[lo:hi], cur[lo:hi]) {
			checkpoint.BitmapSet(bm, c)
			data = append(data, cur[lo:hi]...)
		}
	}
	return &checkpoint.Diff{
		Method:    checkpoint.MethodBasic,
		CkptID:    ckptID,
		DataLen:   uint64(len(cur)),
		ChunkSize: uint32(chunkSize),
		Bitmap:    bm,
		Data:      data,
	}, nil
}
