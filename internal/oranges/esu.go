package oranges

import (
	"github.com/gpuckpt/gpuckpt/internal/graph"
)

// enumerator is the per-worker state of Wernicke's ESU algorithm. ESU
// visits every connected induced subgraph of size up to maxK exactly
// once (each subgraph is generated from its minimum vertex with a
// strictly growing extension discipline), so incrementing each
// member's orbit counter yields exact GDVs.
type enumerator struct {
	g      *graph.Graph
	tables *Tables
	gdv    *GDV
	maxK   int

	sub   [MaxGraphletSize]int32       // current subgraph, insertion order
	masks [MaxGraphletSize + 1]uint16  // adjacency mask per size
	mark  []int32                      // version-stamped V_sub ∪ N(V_sub) marker
	stamp int32                        // current root's version
	ext   [MaxGraphletSize + 1][]int32 // extension-set buffer per depth
	added [MaxGraphletSize + 1][]int32 // exclusive-neighbor undo log per depth
	count int64                        // subgraphs enumerated (diagnostics)
}

func newEnumerator(g *graph.Graph, tables *Tables, gdv *GDV, maxK int) *enumerator {
	e := &enumerator{
		g:      g,
		tables: tables,
		gdv:    gdv,
		maxK:   maxK,
		mark:   make([]int32, g.NumVertices()),
	}
	for i := range e.ext {
		e.ext[i] = make([]int32, 0, 64)
		e.added[i] = make([]int32, 0, 64)
	}
	return e
}

// marked reports whether u is in V_sub ∪ N(V_sub) for the current root.
func (e *enumerator) marked(u int32) bool { return e.mark[u] == e.stamp }

// enumerateFrom runs ESU rooted at v: every emitted subgraph has v as
// its minimum vertex, which is what guarantees uniqueness.
func (e *enumerator) enumerateFrom(v int32) {
	if e.maxK < 2 {
		return
	}
	e.stamp++
	e.mark[v] = e.stamp
	e.sub[0] = v
	e.masks[1] = 0
	ext := e.ext[1][:0]
	for _, u := range e.g.Neighbors(v) {
		e.mark[u] = e.stamp
		if u > v {
			ext = append(ext, u)
		}
	}
	e.extend(1, ext)
}

// extend grows the current size-`size` subgraph with each extension
// candidate in turn. Iterating with index i and passing ext[i+1:] to
// the recursion reproduces ESU's destructive "remove w from V_ext"
// while-loop: a candidate already expanded never reappears deeper.
func (e *enumerator) extend(size int, ext []int32) {
	root := e.sub[0]
	for i := 0; i < len(ext); i++ {
		w := ext[i]
		// Incremental mask: bits between w (position `size`) and the
		// existing members.
		mask := e.masks[size]
		base := size * (size - 1) / 2
		for j := 0; j < size; j++ {
			if e.g.HasEdge(e.sub[j], w) {
				mask |= 1 << (base + j)
			}
		}
		e.sub[size] = w
		newSize := size + 1
		e.masks[newSize] = mask
		e.count++

		// Emit: one orbit increment per member position.
		for pos := 0; pos < newSize; pos++ {
			e.gdv.Add(e.sub[pos], e.tables.OrbitOf(newSize, mask, pos))
		}

		if newSize == e.maxK {
			continue
		}
		// Exclusive neighborhood of w: unmarked neighbors. All become
		// marked (they are now neighbors of V_sub); those above the
		// root join the extension set.
		childExt := append(e.ext[newSize][:0], ext[i+1:]...)
		added := e.added[newSize][:0]
		for _, u := range e.g.Neighbors(w) {
			if !e.marked(u) {
				e.mark[u] = e.stamp
				added = append(added, u)
				if u > root {
					childExt = append(childExt, u)
				}
			}
		}
		e.added[newSize] = added // keep grown capacity
		e.extend(newSize, childExt)
		// Backtrack: w's exclusive neighbors leave N(V_sub). Stamps
		// only grow, so stamp-1 can never match a future stamp.
		for _, u := range added {
			e.mark[u] = e.stamp - 1
		}
	}
}
