package oranges

import (
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// TestCrashAndResume is the §1 resilience scenario end to end at the
// application level: run with snapshots, "crash" after checkpoint 2,
// resume from the restored GDV image, and verify the final counters
// equal an uninterrupted run.
func TestCrashAndResume(t *testing.T) {
	g, err := graph.MessageRace(16, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.NewPool(4)
	const nCkpts = 6

	// Uninterrupted reference run.
	ref := mustRunner(t, g, 4)
	if err := ref.RunWithSnapshots(nCkpts, nil); err != nil {
		t.Fatal(err)
	}

	// First run: crash after checkpoint index 2 (three batches done).
	r1 := mustRunner(t, g, 4)
	var lastImage []byte
	var lastCk int
	err = r1.RunWithSnapshots(nCkpts, func(ck int, img []byte) error {
		lastImage = append(lastImage[:0], img...)
		lastCk = ck
		if ck == 2 {
			return errCrash
		}
		return nil
	})
	if err != errCrash {
		t.Fatalf("crash injection failed: %v", err)
	}
	if lastCk != 2 {
		t.Fatalf("crashed at checkpoint %d", lastCk)
	}

	// Restart: rebuild the runner from the surviving snapshot.
	processed := g.NumVertices() * (lastCk + 1) / nCkpts
	r2, err := ResumeRunner(g, pool, 4, lastImage, processed)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Processed() != processed {
		t.Fatalf("resumed at %d roots, want %d", r2.Processed(), processed)
	}
	var resumedCks []int
	if err := r2.ResumeWithSnapshots(nCkpts, func(ck int, img []byte) error {
		resumedCks = append(resumedCks, ck)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(resumedCks) != nCkpts-3 || resumedCks[0] != 3 {
		t.Fatalf("resumed checkpoints %v", resumedCks)
	}
	if !r2.GDV().Equal(ref.GDV()) {
		t.Fatal("resumed GDV differs from uninterrupted run")
	}
}

var errCrash = &crashError{}

type crashError struct{}

func (*crashError) Error() string { return "injected crash" }

func TestResumeValidation(t *testing.T) {
	g, _ := graph.Bubbles(6, 6, 1)
	gdv := NewGDV(g.NumVertices())
	img := gdv.Serialize()
	if _, err := ResumeRunner(g, nil, 4, img, -1); err == nil {
		t.Fatal("negative processed accepted")
	}
	if _, err := ResumeRunner(g, nil, 4, img, g.NumVertices()+1); err == nil {
		t.Fatal("overlong processed accepted")
	}
	if _, err := ResumeRunner(g, nil, 4, img[:5], 0); err == nil {
		t.Fatal("short image accepted")
	}
	if _, err := ResumeRunner(g, nil, 9, img, 0); err == nil {
		t.Fatal("bad maxK accepted")
	}
	r, err := ResumeRunner(g, nil, 4, img, 7) // 7 is not a boundary for N=6
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ResumeWithSnapshots(6, nil); err == nil {
		t.Fatal("non-boundary resume accepted")
	}
	if err := r.ResumeWithSnapshots(0, nil); err == nil {
		t.Fatal("zero checkpoints accepted")
	}
}

// TestResumeAtCompletion resumes a fully-finished run: nothing to do.
func TestResumeAtCompletion(t *testing.T) {
	g, _ := graph.Bubbles(6, 6, 1)
	r := mustRunner(t, g, 3)
	if err := r.RunWithSnapshots(4, nil); err != nil {
		t.Fatal(err)
	}
	r2, err := ResumeRunner(g, nil, 3, r.GDV().Serialize(), g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := r2.ResumeWithSnapshots(4, func(int, []byte) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("completed run produced %d snapshots on resume", calls)
	}
	if !r2.GDV().Equal(r.GDV()) {
		t.Fatal("completed resume changed counters")
	}
}
