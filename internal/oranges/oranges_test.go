package oranges

import (
	"math/bits"
	"math/rand"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

func TestTableTotals(t *testing.T) {
	tb := DefaultTables()
	if len(tb.Classes) != NumGraphlets {
		t.Fatalf("%d classes, want %d", len(tb.Classes), NumGraphlets)
	}
	perSizeGraphlets := map[int]int{}
	perSizeOrbits := map[int]int{}
	totalOrbits := 0
	for _, c := range tb.Classes {
		perSizeGraphlets[c.Size]++
		perSizeOrbits[c.Size] += c.NumOrbits
		totalOrbits += c.NumOrbits
	}
	// Known counts: connected graphs on 2/3/4/5 vertices and their
	// automorphism orbit totals (Pržulj).
	wantGraphlets := map[int]int{2: 1, 3: 2, 4: 6, 5: 21}
	wantOrbits := map[int]int{2: 1, 3: 3, 4: 11, 5: 58}
	for k := 2; k <= 5; k++ {
		if perSizeGraphlets[k] != wantGraphlets[k] {
			t.Errorf("size %d: %d graphlets, want %d", k, perSizeGraphlets[k], wantGraphlets[k])
		}
		if perSizeOrbits[k] != wantOrbits[k] {
			t.Errorf("size %d: %d orbits, want %d", k, perSizeOrbits[k], wantOrbits[k])
		}
	}
	if totalOrbits != NumOrbits {
		t.Fatalf("total orbits %d, want %d", totalOrbits, NumOrbits)
	}
	// Classes are sorted and ids sequential.
	for i, c := range tb.Classes {
		if c.ID != i {
			t.Fatalf("class %d has id %d", i, c.ID)
		}
		if i > 0 {
			p := tb.Classes[i-1]
			if c.Size < p.Size || (c.Size == p.Size && c.Edges < p.Edges) {
				t.Fatalf("classes not sorted at %d", i)
			}
		}
	}
	// Orbit ids are globally sequential in class order.
	next := 0
	for _, c := range tb.Classes {
		seen := map[int]bool{}
		for _, o := range c.OrbitOfPosition {
			if !seen[o] {
				if o != next {
					t.Fatalf("class %d orbit %d out of order (want %d)", c.ID, o, next)
				}
				seen[o] = true
				next++
			}
		}
	}
}

func TestTableLookupsConsistent(t *testing.T) {
	tb := DefaultTables()
	// Every connected mask classifies; isomorphic masks agree on the
	// multiset of orbits; disconnected masks are -1.
	for k := 2; k <= MaxGraphletSize; k++ {
		nPairs := k * (k - 1) / 2
		perms := permutations(k)
		for mask := 0; mask < 1<<nPairs; mask++ {
			if !connectedMask(uint16(mask), k) {
				if tb.ClassOf(k, uint16(mask)) != -1 {
					t.Fatalf("disconnected mask %b classified", mask)
				}
				continue
			}
			ci := tb.ClassOf(k, uint16(mask))
			if ci < 0 {
				t.Fatalf("connected mask %b not classified", mask)
			}
			cls := tb.Classes[ci]
			if cls.Size != k || cls.Edges != bits.OnesCount16(uint16(mask)) {
				t.Fatalf("mask %b classified as %+v", mask, cls)
			}
			// Permuting the mask must permute positions consistently.
			p := perms[1%len(perms)]
			pm := permuteMask(uint16(mask), p, k)
			if tb.ClassOf(k, pm) != ci {
				t.Fatalf("isomorphic masks in different classes")
			}
			for pos := 0; pos < k; pos++ {
				if tb.OrbitOf(k, uint16(mask), pos) != tb.OrbitOf(k, pm, p[pos]) {
					t.Fatalf("orbit not invariant under relabeling (k=%d mask=%b pos=%d)", k, mask, pos)
				}
			}
		}
	}
}

func mustRunner(t *testing.T, g *graph.Graph, maxK int) *Runner {
	t.Helper()
	r, err := NewRunner(g, parallel.NewPool(4), maxK)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func fullGDV(t *testing.T, g *graph.Graph, maxK int) *GDV {
	t.Helper()
	r := mustRunner(t, g, maxK)
	if err := r.ProcessRange(0, g.NumVertices()); err != nil {
		t.Fatal(err)
	}
	return r.GDV()
}

func TestPathGraphGDV(t *testing.T) {
	g, _ := graph.Build("p3", 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	gdv := fullGDV(t, g, 5)
	// Our numbering: orbit 0 = edge; orbit 1 = P3 center; orbit 2 = P3
	// end; orbit 3 = triangle.
	cases := []struct {
		v     int32
		orbit int
		want  uint32
	}{
		{0, 0, 1}, {1, 0, 2}, {2, 0, 1},
		{0, 2, 1}, {1, 1, 1}, {2, 2, 1},
		{0, 1, 0}, {1, 2, 0}, {0, 3, 0},
	}
	for _, c := range cases {
		if got := gdv.Count(c.v, c.orbit); got != c.want {
			t.Errorf("vertex %d orbit %d = %d, want %d", c.v, c.orbit, got, c.want)
		}
	}
}

func TestTriangleGDV(t *testing.T) {
	g, _ := graph.Build("k3", 3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	gdv := fullGDV(t, g, 5)
	for v := int32(0); v < 3; v++ {
		if gdv.Count(v, 0) != 2 {
			t.Errorf("vertex %d edge orbit = %d, want 2", v, gdv.Count(v, 0))
		}
		if gdv.Count(v, 3) != 1 {
			t.Errorf("vertex %d triangle orbit = %d, want 1", v, gdv.Count(v, 3))
		}
		if gdv.Count(v, 1) != 0 || gdv.Count(v, 2) != 0 {
			t.Errorf("vertex %d has induced-P3 counts in a triangle", v)
		}
	}
}

// bruteForceGDV enumerates every vertex subset of size 2..maxK and
// classifies the connected ones — the gold reference for ESU.
func bruteForceGDV(g *graph.Graph, maxK int) *GDV {
	tb := DefaultTables()
	gdv := NewGDV(g.NumVertices())
	n := g.NumVertices()
	var sub []int32
	var rec func(start int)
	rec = func(start int) {
		if len(sub) >= 2 {
			var mask uint16
			for j := 1; j < len(sub); j++ {
				for i := 0; i < j; i++ {
					if g.HasEdge(sub[i], sub[j]) {
						mask |= 1 << pairIndex(i, j)
					}
				}
			}
			if connectedMask(mask, len(sub)) {
				for pos, v := range sub {
					gdv.Add(v, tb.OrbitOf(len(sub), mask, pos))
				}
			}
		}
		if len(sub) == maxK {
			return
		}
		for v := start; v < n; v++ {
			sub = append(sub, int32(v))
			rec(v + 1)
			sub = sub[:len(sub)-1]
		}
	}
	rec(0)
	return gdv
}

func TestESUMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(5)
		var edges []graph.Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
				}
			}
		}
		g, err := graph.Build("rand", n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, maxK := range []int{2, 3, 4, 5} {
			esu := fullGDV(t, g, maxK)
			ref := bruteForceGDV(g, maxK)
			if !esu.Equal(ref) {
				for v := int32(0); int(v) < n; v++ {
					for o := 0; o < NumOrbits; o++ {
						if esu.Count(v, o) != ref.Count(v, o) {
							t.Fatalf("trial %d maxK %d: vertex %d orbit %d: esu %d brute %d",
								trial, maxK, v, o, esu.Count(v, o), ref.Count(v, o))
						}
					}
				}
			}
		}
	}
}

func TestGlobalIdentities(t *testing.T) {
	g, err := graph.DelaunayLike(12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	gdv := fullGDV(t, g, 3)
	var orbit0, orbit3 uint64
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		orbit0 += uint64(gdv.Count(v, 0))
		orbit3 += uint64(gdv.Count(v, 3))
	}
	if orbit0 != uint64(g.NumEdges()) {
		t.Fatalf("edge-orbit total %d, want %d (directed entries)", orbit0, g.NumEdges())
	}
	if orbit3%3 != 0 || orbit3 == 0 {
		t.Fatalf("triangle-orbit total %d not a positive multiple of 3", orbit3)
	}
}

func TestStridePartitionSumsToFull(t *testing.T) {
	g, err := graph.MessageRace(8, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := fullGDV(t, g, 4)
	const procs = 3
	parts := make([]*GDV, procs)
	for p := 0; p < procs; p++ {
		r := mustRunner(t, g, 4)
		if err := r.ProcessStride(p, procs); err != nil {
			t.Fatal(err)
		}
		parts[p] = r.GDV()
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for o := 0; o < NumOrbits; o++ {
			var sum uint32
			for p := 0; p < procs; p++ {
				sum += parts[p].Count(v, o)
			}
			if sum != full.Count(v, o) {
				t.Fatalf("vertex %d orbit %d: partition sum %d != full %d", v, o, sum, full.Count(v, o))
			}
		}
	}
}

func TestRunWithSnapshots(t *testing.T) {
	g, err := graph.Bubbles(10, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRunner(t, g, 4)
	var images [][]byte
	err = r.RunWithSnapshots(5, func(ck int, img []byte) error {
		cp := make([]byte, len(img))
		copy(cp, img)
		images = append(images, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 5 {
		t.Fatalf("%d snapshots, want 5", len(images))
	}
	if r.Processed() != g.NumVertices() {
		t.Fatalf("processed %d of %d", r.Processed(), g.NumVertices())
	}
	// Counters are nondecreasing across snapshots, and the final
	// snapshot equals a single-shot run.
	for k := 1; k < len(images); k++ {
		a, _ := DeserializeGDV(images[k-1], g.NumVertices())
		b, _ := DeserializeGDV(images[k], g.NumVertices())
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			for o := 0; o < NumOrbits; o++ {
				if b.Count(v, o) < a.Count(v, o) {
					t.Fatalf("counter decreased between snapshots %d and %d", k-1, k)
				}
			}
		}
	}
	final, _ := DeserializeGDV(images[4], g.NumVertices())
	if !final.Equal(fullGDV(t, g, 4)) {
		t.Fatal("final snapshot != one-shot GDV")
	}
	if r.SubgraphCount() <= 0 {
		t.Fatal("no subgraphs counted")
	}
}

func TestRunnerValidation(t *testing.T) {
	g, _ := graph.Bubbles(4, 4, 7)
	if _, err := NewRunner(nil, nil, 4); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewRunner(g, nil, 1); err == nil {
		t.Fatal("maxK=1 accepted")
	}
	if _, err := NewRunner(g, nil, 6); err == nil {
		t.Fatal("maxK=6 accepted")
	}
	r := mustRunner(t, g, 3)
	if err := r.ProcessRange(-1, 2); err == nil {
		t.Fatal("negative range accepted")
	}
	if err := r.ProcessRange(0, 1000); err == nil {
		t.Fatal("overlong range accepted")
	}
	if err := r.ProcessStride(-1, 2); err == nil {
		t.Fatal("negative stride offset accepted")
	}
	if err := r.ProcessStride(0, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
	if err := r.RunWithSnapshots(0, nil); err == nil {
		t.Fatal("zero checkpoints accepted")
	}
}

func TestGDVSerializeRoundTrip(t *testing.T) {
	g, _ := graph.Bubbles(6, 6, 7)
	gdv := fullGDV(t, g, 4)
	img := gdv.Serialize()
	back, err := DeserializeGDV(img, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(gdv) {
		t.Fatal("serialize round trip failed")
	}
	if _, err := DeserializeGDV(img[:10], g.NumVertices()); err == nil {
		t.Fatal("short image accepted")
	}
	if err := gdv.SerializeInto(make([]byte, 3)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if gdv.SizeBytes() != gdv.PaddedVertices()*NumOrbits*4 {
		t.Fatal("GDV size wrong")
	}
	if gdv.PaddedVertices()%VertexPad != 0 || gdv.PaddedVertices() < g.NumVertices() {
		t.Fatal("vertex padding wrong")
	}
	v := gdv.Vector(0)
	if len(v) != NumOrbits {
		t.Fatal("vector length wrong")
	}
}

func TestGDVSparsityOnSparseGraphs(t *testing.T) {
	// §3.2: on sparse graphs only ~10 of 30 graphlets form frequently.
	g, err := graph.RoadNetwork(40, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	gdv := fullGDV(t, g, 5)
	populated := 0
	for o := 0; o < NumOrbits; o++ {
		var total uint64
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			total += uint64(gdv.Count(v, o))
		}
		if total > 0 {
			populated++
		}
	}
	if populated == 0 || populated > NumOrbits/2 {
		t.Fatalf("road network populated %d of %d orbits; expected a sparse minority", populated, NumOrbits)
	}
}

func BenchmarkESU(b *testing.B) {
	g, err := graph.DelaunayLike(40, 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{3, 4, 5} {
		b.Run(map[int]string{3: "k3", 4: "k4", 5: "k5"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, _ := NewRunner(g, parallel.NewPool(0), k)
				if err := r.ProcessRange(0, g.NumVertices()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
