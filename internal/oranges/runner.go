package oranges

import (
	"fmt"
	"sync/atomic"

	"github.com/gpuckpt/gpuckpt/internal/graph"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// Runner executes ORANGES over a graph: vertices are processed in
// order (each contributing the graphlets rooted at it in ESU's
// minimum-vertex sense), and the GDV array accumulates counts. The
// checkpoint scenarios of §3.2 snapshot the GDV at evenly spaced
// progress points; the strong-scaling scenario assigns each process an
// interleaved share of the roots while every process keeps a full-size
// GDV replica (ORANGES is embarrassingly parallel and ends with a
// reduction, §3.3).
type Runner struct {
	g         *graph.Graph
	tables    *Tables
	gdv       *GDV
	pool      *parallel.Pool
	maxK      int
	processed int
	subgraphs atomic.Int64
}

// NewRunner creates a runner computing GDVs over graphlets of 2..maxK
// vertices (maxK in [2, MaxGraphletSize]).
func NewRunner(g *graph.Graph, pool *parallel.Pool, maxK int) (*Runner, error) {
	if g == nil {
		return nil, fmt.Errorf("oranges: nil graph")
	}
	if maxK < 2 || maxK > MaxGraphletSize {
		return nil, fmt.Errorf("oranges: maxK %d outside [2,%d]", maxK, MaxGraphletSize)
	}
	if pool == nil {
		pool = parallel.NewPool(0)
	}
	return &Runner{
		g:      g,
		tables: DefaultTables(),
		gdv:    NewGDV(g.NumVertices()),
		pool:   pool,
		maxK:   maxK,
	}, nil
}

// ResumeRunner reconstructs a runner from a restored checkpoint: the
// GDV image holds the counters as of the crash-surviving checkpoint
// and processedRoots says how many root vertices that checkpoint
// covered. Enumeration continues from the next root — the paper's §1
// resilience scenario ("applications ... restart from the latest
// checkpoint in case of failures").
func ResumeRunner(g *graph.Graph, pool *parallel.Pool, maxK int, gdvImage []byte, processedRoots int) (*Runner, error) {
	r, err := NewRunner(g, pool, maxK)
	if err != nil {
		return nil, err
	}
	if processedRoots < 0 || processedRoots > g.NumVertices() {
		return nil, fmt.Errorf("oranges: processed count %d outside [0,%d]", processedRoots, g.NumVertices())
	}
	gdv, err := DeserializeGDV(gdvImage, g.NumVertices())
	if err != nil {
		return nil, err
	}
	r.gdv = gdv
	r.processed = processedRoots
	return r, nil
}

// ResumeWithSnapshots continues an interrupted RunWithSnapshots: the
// runner must have been resumed at a checkpoint boundary (processed
// equals a batch edge for the same nCheckpoints), and the remaining
// batches are processed with the same snapshot cadence. The snapshot
// indices continue where the original run stopped.
func (r *Runner) ResumeWithSnapshots(nCheckpoints int, snapshot func(ckpt int, gdvImage []byte) error) error {
	n := r.g.NumVertices()
	if nCheckpoints < 1 || nCheckpoints > n {
		return fmt.Errorf("oranges: checkpoint count %d outside [1,%d]", nCheckpoints, n)
	}
	startCk := -1
	for ck := 0; ck <= nCheckpoints; ck++ {
		if n*ck/nCheckpoints == r.processed {
			startCk = ck
			break
		}
	}
	if startCk < 0 {
		return fmt.Errorf("oranges: processed count %d is not a checkpoint boundary for N=%d", r.processed, nCheckpoints)
	}
	buf := make([]byte, r.gdv.SizeBytes())
	for ck := startCk; ck < nCheckpoints; ck++ {
		lo := n * ck / nCheckpoints
		hi := n * (ck + 1) / nCheckpoints
		if err := r.ProcessRange(lo, hi); err != nil {
			return err
		}
		r.processed = hi
		if snapshot == nil {
			continue
		}
		if err := r.gdv.SerializeInto(buf); err != nil {
			return err
		}
		if err := snapshot(ck, buf); err != nil {
			return err
		}
	}
	return nil
}

// GDV returns the live counter array.
func (r *Runner) GDV() *GDV { return r.gdv }

// Processed returns the number of root vertices processed so far.
func (r *Runner) Processed() int { return r.processed }

// SubgraphCount returns the number of subgraphs enumerated so far.
func (r *Runner) SubgraphCount() int64 { return r.subgraphs.Load() }

// ProcessRange enumerates all graphlets rooted at vertices [lo, hi) in
// parallel and accumulates their orbit counts.
func (r *Runner) ProcessRange(lo, hi int) error {
	n := r.g.NumVertices()
	if lo < 0 || hi > n || lo > hi {
		return fmt.Errorf("oranges: root range [%d,%d) outside [0,%d]", lo, hi, n)
	}
	r.pool.ForRange(hi-lo, func(blo, bhi int) {
		e := newEnumerator(r.g, r.tables, r.gdv, r.maxK)
		for i := blo; i < bhi; i++ {
			e.enumerateFrom(int32(lo + i))
		}
		r.subgraphs.Add(e.count)
	})
	return nil
}

// ProcessStride enumerates roots lo, lo+stride, lo+2*stride, ... —
// the per-process share of the strong-scaling partitioning.
func (r *Runner) ProcessStride(offset, stride int) error {
	n := r.g.NumVertices()
	if offset < 0 || stride < 1 {
		return fmt.Errorf("oranges: invalid stride partition (%d,%d)", offset, stride)
	}
	roots := make([]int32, 0, n/stride+1)
	for v := offset; v < n; v += stride {
		roots = append(roots, int32(v))
	}
	r.pool.ForRange(len(roots), func(blo, bhi int) {
		e := newEnumerator(r.g, r.tables, r.gdv, r.maxK)
		for i := blo; i < bhi; i++ {
			e.enumerateFrom(roots[i])
		}
		r.subgraphs.Add(e.count)
	})
	return nil
}

// RunStrideWithSnapshots is the strong-scaling variant of
// RunWithSnapshots: it processes only this process's share of the
// roots (offset, offset+stride, ...) in nCheckpoints evenly sized
// batches, snapshotting the full-size GDV replica after each.
func (r *Runner) RunStrideWithSnapshots(offset, stride, nCheckpoints int, snapshot func(ckpt int, gdvImage []byte) error) error {
	n := r.g.NumVertices()
	if offset < 0 || stride < 1 {
		return fmt.Errorf("oranges: invalid stride partition (%d,%d)", offset, stride)
	}
	roots := make([]int32, 0, n/stride+1)
	for v := offset; v < n; v += stride {
		roots = append(roots, int32(v))
	}
	if nCheckpoints < 1 {
		return fmt.Errorf("oranges: checkpoint count %d below 1", nCheckpoints)
	}
	buf := make([]byte, r.gdv.SizeBytes())
	for ck := 0; ck < nCheckpoints; ck++ {
		lo := len(roots) * ck / nCheckpoints
		hi := len(roots) * (ck + 1) / nCheckpoints
		batch := roots[lo:hi]
		r.pool.ForRange(len(batch), func(blo, bhi int) {
			e := newEnumerator(r.g, r.tables, r.gdv, r.maxK)
			for i := blo; i < bhi; i++ {
				e.enumerateFrom(batch[i])
			}
			r.subgraphs.Add(e.count)
		})
		r.processed += len(batch)
		if snapshot == nil {
			continue
		}
		if err := r.gdv.SerializeInto(buf); err != nil {
			return err
		}
		if err := snapshot(ck, buf); err != nil {
			return err
		}
	}
	return nil
}

// RunWithSnapshots processes the whole vertex set in nCheckpoints
// evenly sized batches, invoking snapshot with the serialized GDV
// after each batch — the checkpoint-frequency scenario of §3.2 (one
// full checkpoint followed by N-1 incremental ones, evenly distributed
// over the runtime).
func (r *Runner) RunWithSnapshots(nCheckpoints int, snapshot func(ckpt int, gdvImage []byte) error) error {
	n := r.g.NumVertices()
	if nCheckpoints < 1 || nCheckpoints > n {
		return fmt.Errorf("oranges: checkpoint count %d outside [1,%d]", nCheckpoints, n)
	}
	buf := make([]byte, r.gdv.SizeBytes())
	for ck := 0; ck < nCheckpoints; ck++ {
		lo := n * ck / nCheckpoints
		hi := n * (ck + 1) / nCheckpoints
		if err := r.ProcessRange(lo, hi); err != nil {
			return err
		}
		r.processed = hi
		if snapshot == nil {
			continue
		}
		if err := r.gdv.SerializeInto(buf); err != nil {
			return err
		}
		if err := snapshot(ck, buf); err != nil {
			return err
		}
	}
	return nil
}
