package oranges

import (
	"math/rand"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/graph"
)

func TestVertexSimilarityIdentity(t *testing.T) {
	g, _ := graph.Bubbles(10, 10, 1)
	gdv := fullGDV(t, g, 4)
	for v := int32(0); v < 10; v++ {
		if s := VertexSimilarity(gdv, v, gdv, v); s != 1 {
			t.Fatalf("self-similarity of %d = %v", v, s)
		}
	}
	// A corner and an interior vertex of a mesh differ.
	corner := int32(0)
	interior := int32(5*10 + 5)
	if s := VertexSimilarity(gdv, corner, gdv, interior); s >= 0.999 {
		t.Fatalf("corner/interior similarity %v implausibly high", s)
	}
	if s := VertexSimilarity(gdv, corner, gdv, interior); s < 0 || s > 1 {
		t.Fatalf("similarity %v outside [0,1]", s)
	}
}

func TestGraphSimilarityIsomorphic(t *testing.T) {
	// A relabeled graph has identical GDV multiset: similarity 1.
	g, _ := graph.DelaunayLike(12, 12, 5)
	n := g.NumVertices()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(6))
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	a := fullGDV(t, g, 4)
	b := fullGDV(t, h, 4)
	s, err := GraphSimilarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Rank alignment is approximate under signature ties, so allow a
	// small slack; isomorphic graphs must still score near 1.
	if s < 0.99 {
		t.Fatalf("isomorphic graphs scored %v", s)
	}
}

func TestGraphSimilarityDiscriminates(t *testing.T) {
	// Same graph family close; different families further apart.
	mesh1, _ := graph.Bubbles(14, 14, 1)
	mesh2, _ := graph.Bubbles(14, 14, 2)
	road, _ := graph.RoadNetwork(14, 14, 3)
	a := fullGDV(t, mesh1, 4)
	b := fullGDV(t, mesh2, 4)
	c := fullGDV(t, road, 4)
	sameFamily, err := GraphSimilarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	crossFamily, err := GraphSimilarity(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if sameFamily <= crossFamily {
		t.Fatalf("same-family %v not above cross-family %v", sameFamily, crossFamily)
	}
	if crossFamily < 0 || crossFamily > 1 || sameFamily > 1 {
		t.Fatalf("similarities outside [0,1]: %v %v", sameFamily, crossFamily)
	}
}

func TestGraphSimilarityValidation(t *testing.T) {
	g, _ := graph.Bubbles(4, 4, 1)
	gdv := fullGDV(t, g, 3)
	if _, err := GraphSimilarity(nil, gdv); err == nil {
		t.Fatal("nil GDV accepted")
	}
	if _, err := GraphSimilarity(gdv, nil); err == nil {
		t.Fatal("nil GDV accepted")
	}
	// Different sizes: penalized but valid.
	small, _ := graph.Bubbles(4, 4, 1)
	big, _ := graph.Bubbles(8, 8, 1)
	s, err := GraphSimilarity(fullGDV(t, small, 3), fullGDV(t, big, 3))
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s >= 1 {
		t.Fatalf("size-mismatched similarity %v", s)
	}
}

func TestOrbitWeights(t *testing.T) {
	w := orbitWeights(DefaultTables())
	if len(w) != NumOrbits {
		t.Fatal("weight vector wrong length")
	}
	// Orbit 0 (edge, size 2) outweighs any size-5 orbit.
	if w[0] <= w[NumOrbits-1] {
		t.Fatalf("edge orbit weight %v not above 5-graphlet orbit %v", w[0], w[NumOrbits-1])
	}
	for o, v := range w {
		if v <= 0 || v > 1 {
			t.Fatalf("weight[%d]=%v outside (0,1]", o, v)
		}
	}
}
