package oranges

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// VertexPad is the alignment of the per-orbit counter blocks: the
// vertex dimension is padded to a multiple of 128 so every orbit block
// starts chunk-aligned for all chunk sizes the paper sweeps (32-512
// bytes).
const VertexPad = 128

// GDV holds the graphlet degree vectors of all vertices as a
// structure-of-arrays: one contiguous block of |V| uint32 counters per
// orbit (counts[orbit*paddedV + vertex]).
//
// SoA is the GPU-native layout — updating orbit o for consecutive
// vertices coalesces, exactly as the paper's Kokkos kernels require —
// and it is what gives the checkpoint stream the paper's redundancy
// structure: in regular graphs many vertices share identical orbit
// counts, so each orbit block contains long constant-value runs that
// de-duplicate as large contiguous regions (§2.2). Serialize produces
// the little-endian byte image that gets checkpointed.
type GDV struct {
	n       int
	paddedN int
	counts  []uint32
}

// padVertices rounds n up to the block alignment.
func padVertices(n int) int {
	return (n + VertexPad - 1) / VertexPad * VertexPad
}

// NewGDV allocates a zeroed GDV for n vertices.
func NewGDV(n int) *GDV {
	if n <= 0 {
		panic(fmt.Sprintf("oranges: invalid vertex count %d", n))
	}
	p := padVertices(n)
	return &GDV{n: n, paddedN: p, counts: make([]uint32, p*NumOrbits)}
}

// NumVertices returns the vertex count.
func (g *GDV) NumVertices() int { return g.n }

// PaddedVertices returns the aligned vertex dimension of the blocks.
func (g *GDV) PaddedVertices() int { return g.paddedN }

// SizeBytes returns the serialized size: NumOrbits aligned blocks of
// PaddedVertices uint32 counters.
func (g *GDV) SizeBytes() int { return g.paddedN * NumOrbits * 4 }

// Add atomically increments the counter of (vertex, orbit).
func (g *GDV) Add(v int32, orbit int) {
	atomic.AddUint32(&g.counts[orbit*g.paddedN+int(v)], 1)
}

// Count returns the counter of (vertex, orbit).
func (g *GDV) Count(v int32, orbit int) uint32 {
	return atomic.LoadUint32(&g.counts[orbit*g.paddedN+int(v)])
}

// Vector returns a copy of vertex v's degree vector.
func (g *GDV) Vector(v int32) []uint32 {
	out := make([]uint32, NumOrbits)
	for o := range out {
		out[o] = atomic.LoadUint32(&g.counts[o*g.paddedN+int(v)])
	}
	return out
}

// SerializeInto writes the little-endian image of the counters into
// dst, which must have SizeBytes() length. It must not race with
// concurrent Adds (callers snapshot between enumeration batches).
func (g *GDV) SerializeInto(dst []byte) error {
	if len(dst) != g.SizeBytes() {
		return fmt.Errorf("oranges: serialize buffer %d bytes, want %d", len(dst), g.SizeBytes())
	}
	for i, c := range g.counts {
		binary.LittleEndian.PutUint32(dst[i*4:], c)
	}
	return nil
}

// Serialize returns a fresh little-endian image of the counters.
func (g *GDV) Serialize() []byte {
	dst := make([]byte, g.SizeBytes())
	_ = g.SerializeInto(dst)
	return dst
}

// DeserializeGDV reconstructs a GDV from its Serialize image.
func DeserializeGDV(data []byte, n int) (*GDV, error) {
	g := NewGDV(n)
	if len(data) != g.SizeBytes() {
		return nil, fmt.Errorf("oranges: image %d bytes, want %d for %d vertices", len(data), g.SizeBytes(), n)
	}
	for i := range g.counts {
		g.counts[i] = binary.LittleEndian.Uint32(data[i*4:])
	}
	return g, nil
}

// Equal reports whether two GDVs hold identical counts.
func (g *GDV) Equal(o *GDV) bool {
	if g.n != o.n {
		return false
	}
	for i := range g.counts {
		if g.counts[i] != o.counts[i] {
			return false
		}
	}
	return true
}
