package oranges

import (
	"fmt"
	"math"
	"sort"
)

// GDV-based graph matching — the purpose ORANGES computes graphlet
// degree vectors for (§3.2: "GDVs are used for graph-matching
// applications, such as in comparing phylogenetic networks in
// bioinformatics and comparing event graphs in large-scale HPC
// applications"). The signature-similarity formulation follows
// Milenković & Pržulj's GDV similarity: per-orbit distances are
// log-scaled and weighted by orbit dependency (approximated here by
// the orbit's graphlet size), and vertex similarity is one minus the
// weighted mean distance.

// orbitWeights returns the per-orbit weights. Larger graphlets touch
// more dependent orbits, so their counts get lower weight — the same
// rationale as Pržulj's o_i dependency-count weighting, computed here
// from the tables so it adapts to this package's orbit numbering.
func orbitWeights(t *Tables) []float64 {
	w := make([]float64, NumOrbits)
	for _, cls := range t.Classes {
		for _, o := range cls.OrbitOfPosition {
			// weight = 1 - log(size)/log(MaxGraphletSize+1)
			w[o] = 1 - math.Log(float64(cls.Size))/math.Log(float64(MaxGraphletSize+2))
		}
	}
	return w
}

// VertexSimilarity returns the GDV similarity of vertex u in g1 and
// vertex v in g2, in [0, 1]; 1 means identical signatures.
func VertexSimilarity(g1 *GDV, u int32, g2 *GDV, v int32) float64 {
	t := DefaultTables()
	w := orbitWeights(t)
	var totalW, dist float64
	for o := 0; o < NumOrbits; o++ {
		cu := float64(g1.Count(u, o))
		cv := float64(g2.Count(v, o))
		d := math.Abs(math.Log(cu+1)-math.Log(cv+1)) /
			math.Log(math.Max(cu, cv)+2)
		dist += w[o] * d
		totalW += w[o]
	}
	if totalW == 0 {
		return 1
	}
	return 1 - dist/totalW
}

// GraphSimilarity compares two GDV sets as whole graphs: vertices are
// ranked by total graphlet participation and the rank-aligned mean
// vertex similarity is returned, in [0, 1]. Rank alignment is the
// standard cheap proxy for optimal assignment; isomorphic inputs score
// near 1 (exactly 1 when vertex signatures are tie-free).
func GraphSimilarity(a, b *GDV) (float64, error) {
	if a == nil || b == nil {
		return 0, fmt.Errorf("oranges: nil GDV")
	}
	ra := rankVertices(a)
	rb := rankVertices(b)
	n := len(ra)
	if len(rb) < n {
		n = len(rb)
	}
	if n == 0 {
		return 0, fmt.Errorf("oranges: empty GDV")
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += VertexSimilarity(a, ra[i], b, rb[i])
	}
	// Penalize size mismatch: unmatched vertices contribute zero.
	denom := len(ra)
	if len(rb) > denom {
		denom = len(rb)
	}
	return sum / float64(denom), nil
}

// rankVertices orders vertices by (total count, degree-orbit count,
// id) descending — a deterministic signature ranking.
func rankVertices(g *GDV) []int32 {
	type key struct {
		v     int32
		total uint64
		deg   uint32
	}
	keys := make([]key, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		k := key{v: int32(v), deg: g.Count(int32(v), 0)}
		for o := 0; o < NumOrbits; o++ {
			k.total += uint64(g.Count(int32(v), o))
		}
		keys[v] = k
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].total != keys[j].total {
			return keys[i].total > keys[j].total
		}
		if keys[i].deg != keys[j].deg {
			return keys[i].deg > keys[j].deg
		}
		return keys[i].v < keys[j].v
	})
	out := make([]int32, len(keys))
	for i, k := range keys {
		out[i] = k.v
	}
	return out
}
