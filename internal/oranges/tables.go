// Package oranges implements the driver application of the paper's
// evaluation: ORbit ANd Graphlet Enumeration at Scale (Tan et al.,
// ICPP 2023, §3.2). It computes each vertex's graphlet degree vector
// (GDV) over all connected graphlets on 2-5 vertices — 30 graphlets,
// 73 automorphism orbits — by ESU enumeration (Wernicke's algorithm)
// with exact orbit classification from precomputed canonical tables.
//
// The checkpointed object is the flat |V| x 73 uint32 GDV array
// (~292 bytes per vertex, matching Table 1's "GDV size" column), which
// accumulates counts as vertex batches are processed: the sparse,
// spatio-temporally redundant update pattern the de-duplication study
// exploits.
//
// Graphlet and orbit numbering: classes are ordered by (vertex count,
// edge count, canonical adjacency mask) and orbits within a class by
// their smallest canonical position. This is a deterministic
// relabeling of the Pržulj numbering — totals per size (1/2/6/21
// graphlets, 1/3/11/58 orbits) are identical and asserted by tests —
// but individual orbit ids may differ from ORCA's. GDV *content* is
// therefore equal up to a fixed permutation of columns, which is
// irrelevant to checkpoint behaviour and graph matching alike.
package oranges

import (
	"fmt"
	"math/bits"
	"sort"
)

// MaxGraphletSize is the largest graphlet the tables cover.
const MaxGraphletSize = 5

// NumGraphlets is the number of connected graphs on 2..5 vertices.
const NumGraphlets = 30

// NumOrbits is the number of automorphism orbits across all graphlets
// (the GDV width; Table 1's 292-byte rows are 73 uint32 counters).
const NumOrbits = 73

// pairIndex returns the edge-bit index of the vertex pair (i, j),
// i < j. The indexing is independent of the graph size — pairs are
// ordered (0,1), (0,2), (1,2), (0,3), ... — so a subgraph's mask grows
// monotonically as the ESU enumerator appends vertices: adding the
// vertex at position m only sets bits idx(i, m) = m(m-1)/2 + i.
func pairIndex(i, j int) int {
	return j*(j-1)/2 + i
}

// permuteMask relabels the graph encoded by mask with permutation p
// (vertex i becomes p[i]).
func permuteMask(mask uint16, p []int, k int) uint16 {
	var out uint16
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if mask&(1<<pairIndex(i, j)) != 0 {
				a, b := p[i], p[j]
				if a > b {
					a, b = b, a
				}
				out |= 1 << pairIndex(a, b)
			}
		}
	}
	return out
}

// connectedMask reports whether the k-vertex graph encoded by mask is
// connected.
func connectedMask(mask uint16, k int) bool {
	var adj [MaxGraphletSize]uint8
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if mask&(1<<pairIndex(i, j)) != 0 {
				adj[i] |= 1 << j
				adj[j] |= 1 << i
			}
		}
	}
	seen := uint8(1)
	frontier := uint8(1)
	for frontier != 0 {
		next := uint8(0)
		for v := 0; v < k; v++ {
			if frontier&(1<<v) != 0 {
				next |= adj[v]
			}
		}
		next &^= seen
		seen |= next
		frontier = next
	}
	return seen == uint8(1<<k)-1
}

// permutations returns all permutations of [0, k).
func permutations(k int) [][]int {
	var out [][]int
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	var rec func(int)
	rec = func(i int) {
		if i == k {
			cp := make([]int, k)
			copy(cp, p)
			out = append(out, cp)
			return
		}
		for j := i; j < k; j++ {
			p[i], p[j] = p[j], p[i]
			rec(i + 1)
			p[i], p[j] = p[j], p[i]
		}
	}
	rec(0)
	return out
}

// GraphletClass describes one of the 30 graphlets.
type GraphletClass struct {
	// ID is the graphlet id in this package's numbering (0..29).
	ID int
	// Size is the vertex count (2..5).
	Size int
	// Edges is the edge count.
	Edges int
	// CanonicalMask is the minimal adjacency mask over relabelings.
	CanonicalMask uint16
	// OrbitOfPosition maps each canonical vertex position to its
	// global orbit id.
	OrbitOfPosition []int
	// NumOrbits is the number of distinct orbits of this graphlet.
	NumOrbits int
}

// Tables holds the precomputed classification tables.
type Tables struct {
	// Classes lists the graphlets ordered by (size, edges, mask).
	Classes []GraphletClass
	// classOf[k][mask] is the class id of a connected mask (else -1).
	classOf [MaxGraphletSize + 1][]int16
	// orbitOf[k][mask*k+pos] is the global orbit id of position pos in
	// the (not necessarily canonical) mask.
	orbitOf [MaxGraphletSize + 1][]int16
}

var defaultTables = buildTables()

// DefaultTables returns the process-wide classification tables.
func DefaultTables() *Tables { return defaultTables }

// buildTables enumerates all connected graphs on 2..5 vertices,
// canonicalizes them, computes automorphism orbits, and builds the
// per-mask position->orbit lookup used during enumeration.
func buildTables() *Tables {
	t := &Tables{}
	type classKey struct {
		size int
		mask uint16
	}
	canonical := map[classKey]*GraphletClass{}

	for k := 2; k <= MaxGraphletSize; k++ {
		nPairs := k * (k - 1) / 2
		perms := permutations(k)
		t.classOf[k] = make([]int16, 1<<nPairs)
		t.orbitOf[k] = make([]int16, (1<<nPairs)*k)
		for i := range t.classOf[k] {
			t.classOf[k][i] = -1
		}
		for i := range t.orbitOf[k] {
			t.orbitOf[k][i] = -1
		}
		for mask := uint16(0); int(mask) < 1<<nPairs; mask++ {
			if !connectedMask(mask, k) {
				continue
			}
			canon := mask
			for _, p := range perms[1:] {
				if pm := permuteMask(mask, p, k); pm < canon {
					canon = pm
				}
			}
			if canon == mask {
				// New-or-known canonical representative: compute its
				// automorphism orbits once.
				if _, ok := canonical[classKey{k, canon}]; !ok {
					cls := &GraphletClass{
						Size:          k,
						Edges:         bits.OnesCount16(mask),
						CanonicalMask: canon,
					}
					orbit := make([]int, k)
					for i := range orbit {
						orbit[i] = i
					}
					for _, p := range perms {
						if permuteMask(canon, p, k) == canon {
							// p is an automorphism: union positions.
							for i := 0; i < k; i++ {
								a, b := find(orbit, i), find(orbit, p[i])
								if a != b {
									orbit[b] = a
								}
							}
						}
					}
					cls.OrbitOfPosition = make([]int, k)
					for i := 0; i < k; i++ {
						cls.OrbitOfPosition[i] = find(orbit, i) // local orbit root for now
					}
					canonical[classKey{k, canon}] = cls
				}
			}
		}
	}

	// Deterministic global ordering and orbit numbering.
	keys := make([]*GraphletClass, 0, len(canonical))
	for _, cls := range canonical {
		keys = append(keys, cls)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		if a.Edges != b.Edges {
			return a.Edges < b.Edges
		}
		return a.CanonicalMask < b.CanonicalMask
	})
	nextOrbit := 0
	for id, cls := range keys {
		cls.ID = id
		// Renumber local orbit roots into sequential global ids in
		// order of first appearance by position.
		local := map[int]int{}
		for pos := 0; pos < cls.Size; pos++ {
			root := cls.OrbitOfPosition[pos]
			g, ok := local[root]
			if !ok {
				g = nextOrbit
				local[root] = g
				nextOrbit++
			}
			cls.OrbitOfPosition[pos] = g
		}
		cls.NumOrbits = len(local)
		t.Classes = append(t.Classes, *cls)
	}
	if len(t.Classes) != NumGraphlets {
		panic(fmt.Sprintf("oranges: built %d graphlet classes, want %d", len(t.Classes), NumGraphlets))
	}
	if nextOrbit != NumOrbits {
		panic(fmt.Sprintf("oranges: built %d orbits, want %d", nextOrbit, NumOrbits))
	}

	// Second pass: fill per-mask lookup via the canonicalizing
	// permutation: position pos of mask plays canonical position
	// p[pos] for the permutation p minimizing the mask.
	classIdx := map[classKey]int16{}
	for i, cls := range t.Classes {
		classIdx[classKey{cls.Size, cls.CanonicalMask}] = int16(i)
	}
	for k := 2; k <= MaxGraphletSize; k++ {
		nPairs := k * (k - 1) / 2
		perms := permutations(k)
		for mask := uint16(0); int(mask) < 1<<nPairs; mask++ {
			if !connectedMask(mask, k) {
				continue
			}
			canon := mask
			for _, p := range perms[1:] {
				if pm := permuteMask(mask, p, k); pm < canon {
					canon = pm
				}
			}
			var best []int
			for _, p := range perms {
				if permuteMask(mask, p, k) == canon {
					best = p
					break
				}
			}
			ci := classIdx[classKey{k, canon}]
			t.classOf[k][mask] = ci
			cls := &t.Classes[ci]
			for pos := 0; pos < k; pos++ {
				t.orbitOf[k][int(mask)*k+pos] = int16(cls.OrbitOfPosition[best[pos]])
			}
		}
	}
	return t
}

// find is a path-compressing union-find lookup on a plain int slice.
func find(parent []int, i int) int {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}

// ClassOf returns the graphlet class id of a connected k-vertex
// adjacency mask, or -1 if the mask is disconnected.
func (t *Tables) ClassOf(k int, mask uint16) int {
	return int(t.classOf[k][mask])
}

// OrbitOf returns the global orbit id of position pos within the
// k-vertex adjacency mask (which need not be canonical).
func (t *Tables) OrbitOf(k int, mask uint16, pos int) int {
	return int(t.orbitOf[k][int(mask)*k+pos])
}
