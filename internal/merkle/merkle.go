// Package merkle implements the flattened complete-binary-tree Merkle
// tree used by the Tree de-duplication method (Tan et al., ICPP 2023,
// §2.2, §2.4).
//
// The tree over n leaf chunks has exactly 2n-1 nodes stored in a flat
// array in breadth-first order: node v has children 2v+1 and 2v+2 and
// parent (v-1)/2, so no pointers are stored — "the array format does
// not waste space on unused pointers" (§2.4). Because every node count
// 2n-1 is odd, each internal node has exactly two children.
//
// When n is not a power of two the deepest level is partially filled.
// Chunks are assigned to leaves in left-to-right tree order, which in
// BFS indexing means the deepest-level leaves (indices p-1 .. 2n-2,
// where p = 2^ceil(log2 n)) hold the first chunks and the leaves on
// the level above (indices n-1 .. p-2) hold the remainder. The
// LeafNode/LeafIndex helpers encapsulate this rotation; a subtree's
// leaves are always contiguous in chunk order.
package merkle

import (
	"fmt"
	"math/bits"

	"github.com/gpuckpt/gpuckpt/internal/murmur3"
)

// Tree holds the Merkle digests for a fixed chunk geometry. The digest
// array is persistent across checkpoints: the dedup layer compares the
// fresh digest of leaf i against Digests[LeafNode(i)] to detect fixed
// duplicates, then overwrites it.
type Tree struct {
	// NumLeaves is the number of data chunks n.
	NumLeaves int
	// NumNodes is 2n-1.
	NumNodes int
	// Digests holds one digest per node, indexed breadth-first.
	Digests []murmur3.Digest

	// perfect is p = 2^ceil(log2 n), the size of the deepest level if
	// it were full; p-1 is the BFS index of the leftmost deepest leaf.
	perfect int
	// deep is the number of leaves on the deepest level: 2n - p.
	deep int
}

// NewGeometry returns a tree describing only the shape for n leaves —
// no digest storage. Restore paths use it for node/span arithmetic
// without paying 16 bytes per node.
func NewGeometry(n int) *Tree {
	if n < 1 {
		panic(fmt.Sprintf("merkle: invalid leaf count %d", n))
	}
	p := 1 << bits.Len(uint(n-1)) // 2^ceil(log2 n); p=1 when n=1
	if n == 1 {
		p = 1
	}
	return &Tree{
		NumLeaves: n,
		NumNodes:  2*n - 1,
		perfect:   p,
		deep:      2*n - p,
	}
}

// New creates a tree for n leaf chunks with all digests zero.
func New(n int) *Tree {
	t := NewGeometry(n)
	t.Digests = make([]murmur3.Digest, t.NumNodes)
	return t
}

// NumChunks returns the number of leaf chunks for a buffer of dataLen
// bytes split into chunkSize-byte chunks (the last chunk may be short).
func NumChunks(dataLen, chunkSize int) int {
	if chunkSize <= 0 {
		panic("merkle: chunk size must be positive")
	}
	if dataLen <= 0 {
		return 1 // a degenerate empty buffer still gets one (empty) leaf
	}
	return (dataLen + chunkSize - 1) / chunkSize
}

// Parent returns the parent node of v.
func Parent(v int) int { return (v - 1) / 2 }

// Left returns the left child of v.
func Left(v int) int { return 2*v + 1 }

// Right returns the right child of v.
func Right(v int) int { return 2*v + 2 }

// IsLeaf reports whether node v is a leaf.
func (t *Tree) IsLeaf(v int) bool { return v >= t.NumLeaves-1 }

// LeafNode maps chunk index i (data order) to its BFS node index.
func (t *Tree) LeafNode(i int) int {
	if i < 0 || i >= t.NumLeaves {
		panic(fmt.Sprintf("merkle: leaf index %d out of range [0,%d)", i, t.NumLeaves))
	}
	if i < t.deep {
		return t.perfect - 1 + i
	}
	return t.NumLeaves - 1 + i - t.deep
}

// LeafIndex maps a leaf node index back to its chunk index.
func (t *Tree) LeafIndex(v int) int {
	if !t.IsLeaf(v) {
		panic(fmt.Sprintf("merkle: node %d is not a leaf", v))
	}
	if v >= t.perfect-1 {
		return v - (t.perfect - 1)
	}
	return v - (t.NumLeaves - 1) + t.deep
}

// LeafRange returns the half-open chunk range [lo, hi) covered by the
// subtree rooted at v. Subtree leaves are contiguous in chunk order.
func (t *Tree) LeafRange(v int) (lo, hi int) {
	l, r := v, v
	for !t.IsLeaf(l) {
		l = Left(l)
	}
	for !t.IsLeaf(r) {
		r = Right(r)
	}
	return t.LeafIndex(l), t.LeafIndex(r) + 1
}

// NodeSpan returns the byte range [off, end) of the original buffer
// covered by node v, for the given chunk geometry. end is clamped to
// dataLen for the region containing the short tail chunk.
func (t *Tree) NodeSpan(v, chunkSize, dataLen int) (off, end int) {
	lo, hi := t.LeafRange(v)
	off = lo * chunkSize
	end = hi * chunkSize
	if end > dataLen {
		end = dataLen
	}
	if off > dataLen {
		off = dataLen
	}
	return off, end
}

// Depth returns the depth of node v (root is 0).
func Depth(v int) int { return bits.Len(uint(v+1)) - 1 }

// Levels returns, for each depth from the deepest internal level up to
// the root, the half-open node-index interval [lo, hi) of *internal*
// nodes at that depth. Iterating the returned slice in order performs
// the bottom-up level-by-level sweep of Algorithm 1; all nodes within
// one level may be processed in parallel.
func (t *Tree) Levels() [][2]int {
	internal := t.NumLeaves - 1 // internal nodes are indices [0, n-1)
	if internal == 0 {
		return nil
	}
	maxDepth := Depth(internal - 1)
	levels := make([][2]int, 0, maxDepth+1)
	for d := maxDepth; d >= 0; d-- {
		lo := 1<<d - 1
		hi := 1<<(d+1) - 1
		if hi > internal {
			hi = internal
		}
		if lo < hi {
			levels = append(levels, [2]int{lo, hi})
		}
	}
	return levels
}

// Clone returns a deep copy of the tree (used by tests and by restore
// paths that need a scratch tree without disturbing the live record).
func (t *Tree) Clone() *Tree {
	c := *t
	c.Digests = make([]murmur3.Digest, len(t.Digests))
	copy(c.Digests, t.Digests)
	return &c
}
