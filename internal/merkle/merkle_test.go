package merkle

import (
	"testing"
	"testing/quick"
)

func TestLeafMappingRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1025} {
		tr := New(n)
		seen := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			v := tr.LeafNode(i)
			if !tr.IsLeaf(v) {
				t.Fatalf("n=%d: LeafNode(%d)=%d is not a leaf", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: node %d mapped twice", n, v)
			}
			seen[v] = true
			if back := tr.LeafIndex(v); back != i {
				t.Fatalf("n=%d: LeafIndex(LeafNode(%d))=%d", n, i, back)
			}
		}
	}
}

func TestExplicitSmallTree(t *testing.T) {
	// n=6: N=11, perfect p=8, deepest level has 4 leaves (nodes 7-10),
	// level 2 contributes leaves 5,6. Data order: 7,8,9,10,5,6.
	tr := New(6)
	want := []int{7, 8, 9, 10, 5, 6}
	for i, w := range want {
		if got := tr.LeafNode(i); got != w {
			t.Fatalf("LeafNode(%d)=%d want %d", i, got, w)
		}
	}
	// Subtree ranges.
	cases := []struct{ node, lo, hi int }{
		{0, 0, 6},  // root
		{1, 0, 4},  // covers leaves 7,8,9,10
		{2, 4, 6},  // covers leaves 5,6
		{3, 0, 2},  // leaves 7,8
		{4, 2, 4},  // leaves 9,10
		{7, 0, 1},  // single leaf
		{6, 5, 6},  // single shallow leaf
		{10, 3, 4}, // deepest rightmost leaf
	}
	for _, c := range cases {
		lo, hi := tr.LeafRange(c.node)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("LeafRange(%d)=[%d,%d) want [%d,%d)", c.node, lo, hi, c.lo, c.hi)
		}
	}
}

func TestLeafRangeInvariants(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%500) + 1
		tr := New(n)
		for v := 0; v < tr.NumNodes; v++ {
			lo, hi := tr.LeafRange(v)
			if lo < 0 || hi > n || lo >= hi {
				return false
			}
			if tr.IsLeaf(v) {
				if hi-lo != 1 || tr.LeafIndex(v) != lo {
					return false
				}
			} else {
				llo, lhi := tr.LeafRange(Left(v))
				rlo, rhi := tr.LeafRange(Right(v))
				// children partition the parent contiguously
				if llo != lo || lhi != rlo || rhi != hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParentChildFormulas(t *testing.T) {
	tr := New(33)
	for v := 1; v < tr.NumNodes; v++ {
		p := Parent(v)
		if Left(p) != v && Right(p) != v {
			t.Fatalf("node %d is not a child of its parent %d", v, p)
		}
	}
	if Parent(Left(10)) != 10 || Parent(Right(10)) != 10 {
		t.Fatal("parent/child round trip failed")
	}
}

func TestLevels(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6, 16, 100} {
		tr := New(n)
		levels := tr.Levels()
		covered := make(map[int]bool)
		prevDepth := 1 << 30
		for _, lv := range levels {
			d := Depth(lv[0])
			if d >= prevDepth {
				t.Fatalf("n=%d: levels not strictly ascending toward root", n)
			}
			prevDepth = d
			for v := lv[0]; v < lv[1]; v++ {
				if tr.IsLeaf(v) {
					t.Fatalf("n=%d: level contains leaf %d", n, v)
				}
				if covered[v] {
					t.Fatalf("n=%d: node %d in two levels", n, v)
				}
				covered[v] = true
				// Children must be leaves or in an earlier level.
				for _, c := range []int{Left(v), Right(v)} {
					if !tr.IsLeaf(c) && !covered[c] {
						t.Fatalf("n=%d: node %d processed before child %d", n, v, c)
					}
				}
			}
		}
		if len(covered) != n-1 {
			t.Fatalf("n=%d: levels covered %d internal nodes, want %d", n, len(covered), n-1)
		}
	}
}

func TestDepth(t *testing.T) {
	wants := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 6: 2, 7: 3, 14: 3, 15: 4}
	for v, d := range wants {
		if Depth(v) != d {
			t.Fatalf("Depth(%d)=%d want %d", v, Depth(v), d)
		}
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct{ dataLen, chunk, want int }{
		{0, 64, 1},
		{1, 64, 1},
		{64, 64, 1},
		{65, 64, 2},
		{128, 64, 2},
		{1000, 64, 16},
	}
	for _, c := range cases {
		if got := NumChunks(c.dataLen, c.chunk); got != c.want {
			t.Fatalf("NumChunks(%d,%d)=%d want %d", c.dataLen, c.chunk, got, c.want)
		}
	}
}

func TestNodeSpanClamping(t *testing.T) {
	// 10 chunks of 64 bytes over a 600-byte buffer: last chunk is short.
	tr := New(10)
	root := 0
	off, end := tr.NodeSpan(root, 64, 600)
	if off != 0 || end != 600 {
		t.Fatalf("root span [%d,%d) want [0,600)", off, end)
	}
	last := tr.LeafNode(9)
	off, end = tr.NodeSpan(last, 64, 600)
	if off != 576 || end != 600 {
		t.Fatalf("tail span [%d,%d) want [576,600)", off, end)
	}
}

func TestSpansTile(t *testing.T) {
	f := func(rawN uint8, rawChunk uint8) bool {
		n := int(rawN)%60 + 1
		chunk := int(rawChunk)%100 + 1
		dataLen := n*chunk - chunk/2 // short tail unless chunk==1
		if dataLen < 1 {
			dataLen = 1
		}
		nc := NumChunks(dataLen, chunk)
		tr := New(nc)
		total := 0
		for i := 0; i < nc; i++ {
			off, end := tr.NodeSpan(tr.LeafNode(i), chunk, dataLen)
			if off != i*chunk {
				return false
			}
			total += end - off
		}
		return total == dataLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestClone(t *testing.T) {
	tr := New(8)
	tr.Digests[3].H1 = 42
	c := tr.Clone()
	c.Digests[3].H1 = 7
	if tr.Digests[3].H1 != 42 {
		t.Fatal("clone aliases original digests")
	}
	if c.NumLeaves != tr.NumLeaves || c.NumNodes != tr.NumNodes {
		t.Fatal("clone geometry mismatch")
	}
}

func TestSingleLeafTree(t *testing.T) {
	tr := New(1)
	if tr.NumNodes != 1 || !tr.IsLeaf(0) {
		t.Fatal("single-leaf tree malformed")
	}
	if tr.LeafNode(0) != 0 || tr.LeafIndex(0) != 0 {
		t.Fatal("single-leaf mapping wrong")
	}
	if lv := tr.Levels(); len(lv) != 0 {
		t.Fatalf("single-leaf tree has %d internal levels", len(lv))
	}
	lo, hi := tr.LeafRange(0)
	if lo != 0 || hi != 1 {
		t.Fatal("single-leaf range wrong")
	}
}

func BenchmarkLeafRange(b *testing.B) {
	tr := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tr.LeafRange(i % tr.NumNodes)
	}
}

func BenchmarkLeafNodeMapping(b *testing.B) {
	tr := New(1<<20 - 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := tr.LeafNode(i % tr.NumLeaves)
		_ = tr.LeafIndex(v)
	}
}
