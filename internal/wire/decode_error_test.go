package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// validFrameBytes returns the encoding of a representative frame.
func validFrameBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	f := &Frame{Type: TPush, Status: StatusOK, Lineage: 7, Ckpt: 3, Payload: []byte("diff-bytes")}
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validHelloBytes returns the encoding of a handshake message.
func validHelloBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadHelloTruncated truncates the hello at every byte boundary:
// each prefix must fail with a typed error, never hang or panic.
func TestReadHelloTruncated(t *testing.T) {
	valid := validHelloBytes(t)
	for i := 0; i < len(valid); i++ {
		if _, err := ReadHello(bytes.NewReader(valid[:i])); err == nil {
			t.Errorf("hello truncated to %d bytes decoded", i)
		}
	}
	if v, err := ReadHello(bytes.NewReader(valid)); err != nil || v != Version {
		t.Fatalf("valid hello: v=%d err=%v", v, err)
	}
}

func TestReadHelloBadMagic(t *testing.T) {
	valid := validHelloBytes(t)
	for i := 0; i < 4; i++ {
		b := append([]byte(nil), valid...)
		b[i] ^= 0xFF
		if _, err := ReadHello(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
			t.Errorf("magic byte %d corrupted: err=%v, want ErrBadMagic", i, err)
		}
	}
}

// TestReadFrameTruncated truncates a valid frame at every byte
// boundary — inside the header and inside the payload.
func TestReadFrameTruncated(t *testing.T) {
	valid := validFrameBytes(t)
	for i := 0; i < len(valid); i++ {
		_, err := ReadFrame(bytes.NewReader(valid[:i]), 0)
		if err == nil {
			t.Errorf("frame truncated to %d bytes decoded", i)
			continue
		}
		if i >= HeaderSize && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("payload truncated to %d bytes: err=%v, want ErrUnexpectedEOF", i, err)
		}
	}
	f, err := ReadFrame(bytes.NewReader(valid), 0)
	if err != nil || string(f.Payload) != "diff-bytes" {
		t.Fatalf("valid frame: %+v err=%v", f, err)
	}
}

// TestReadFrameOversizedPayload checks that a declared length above the
// limit is rejected from the header alone, before any payload bytes are
// read or allocated.
func TestReadFrameOversizedPayload(t *testing.T) {
	hdr := make([]byte, HeaderSize)
	hdr[0] = TPull
	binary.BigEndian.PutUint32(hdr[10:], 1<<20+1)
	_, err := ReadFrame(bytes.NewReader(hdr), 1<<20)
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err=%v, want ErrPayloadTooLarge", err)
	}
	// The reader must not have tried to consume payload bytes.
	r := bytes.NewReader(hdr)
	if _, err := ReadFrame(r, 1<<20); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err=%v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("reader consumed only %d of %d bytes", len(hdr)-r.Len(), len(hdr))
	}
}

// TestReadFrameLyingLength declares a large (but in-limit) payload and
// supplies few bytes: the reader must fail with ErrUnexpectedEOF while
// only ever allocating proportionally to the bytes that arrived.
func TestReadFrameLyingLength(t *testing.T) {
	hdr := make([]byte, HeaderSize)
	hdr[0] = TPush
	binary.BigEndian.PutUint32(hdr[10:], 128<<20)
	b := append(hdr, bytes.Repeat([]byte{9}, 100)...)
	if _, err := ReadFrame(bytes.NewReader(b), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err=%v, want ErrUnexpectedEOF", err)
	}
}

// TestDecodeListTruncated truncates an encoded two-entry list at every
// byte boundary: count, name length, name bytes, checkpoint count and
// byte total all sit at different offsets, so this exercises every
// field boundary of the format.
func TestDecodeListTruncated(t *testing.T) {
	payload, err := EncodeList([]LineageInfo{
		{Name: "rank-0", Len: 4, Bytes: 4096},
		{Name: "x", Len: 1, Bytes: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(payload); i++ {
		if _, err := DecodeList(payload[:i]); err == nil {
			t.Errorf("list truncated to %d bytes decoded", i)
		}
	}
	if _, err := DecodeList(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Error("list with trailing byte decoded")
	}
	infos, err := DecodeList(payload)
	if err != nil || len(infos) != 2 || infos[0].Name != "rank-0" || infos[1].Bytes != 10 {
		t.Fatalf("valid list: %+v err=%v", infos, err)
	}
}

// TestDecodeListLyingCount declares more entries than the payload can
// hold: the decoder must fail without allocating for the declared
// count.
func TestDecodeListLyingCount(t *testing.T) {
	b := binary.BigEndian.AppendUint32(nil, 1<<30)
	if _, err := DecodeList(b); err == nil {
		t.Fatal("list with 2^30 declared entries and no bytes decoded")
	}
}

// TestDecodeStreamAckTruncated truncates an encoded ack (with a
// non-empty message, so the variable tail is exercised) at every byte
// boundary, and rejects trailing slack.
func TestDecodeStreamAckTruncated(t *testing.T) {
	payload, err := AppendStreamAck(nil, &StreamAck{Ckpt: 12, NewLen: 13, RetryAfterMs: 99, Msg: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(payload); i++ {
		if _, err := DecodeStreamAck(payload[:i]); err == nil {
			t.Errorf("stream ack truncated to %d bytes decoded", i)
		}
	}
	if _, err := DecodeStreamAck(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Error("stream ack with trailing byte decoded")
	}
	a, err := DecodeStreamAck(payload)
	if err != nil || a.Ckpt != 12 || a.NewLen != 13 || a.RetryAfterMs != 99 || a.Msg != "boom" {
		t.Fatalf("valid stream ack: %+v err=%v", a, err)
	}
}

// TestDecodeStreamAckLyingMsgLen declares a message length longer than
// the remaining payload: the decoder must fail, never slice past the
// buffer.
func TestDecodeStreamAckLyingMsgLen(t *testing.T) {
	payload, err := AppendStreamAck(nil, &StreamAck{Ckpt: 1, Msg: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), payload...)
	binary.BigEndian.PutUint16(bad[12:], 1<<15)
	if _, err := DecodeStreamAck(bad); err == nil {
		t.Fatal("stream ack with lying message length decoded")
	}
}

func TestDecodeStatsWrongSize(t *testing.T) {
	valid := (&Stats{Requests: 1, Conns: 2}).Encode()
	for _, n := range []int{0, 1, len(valid) - 1, len(valid) + 1} {
		if _, err := DecodeStats(make([]byte, n)); err == nil {
			t.Errorf("stats payload of %d bytes decoded", n)
		}
	}
	s, err := DecodeStats(valid)
	if err != nil || s.Requests != 1 || s.Conns != 2 {
		t.Fatalf("valid stats: %+v err=%v", s, err)
	}
}
