package wire

import (
	"bytes"
	"testing"
)

func TestSubscribeCursorRoundTrip(t *testing.T) {
	for _, c := range []Cursor{
		{},
		{Base: 0, Next: 0, CRC: 0},
		{Base: 0, Next: 5, CRC: 0xdeadbeef},
		{Base: 7, Next: 7, CRC: 0},
		{Base: 7, Next: 123, CRC: 0xffffffff},
	} {
		enc := EncodeSubscribe(c)
		if len(enc) != SubscribeSize {
			t.Fatalf("EncodeSubscribe(%+v) = %d bytes, want %d", c, len(enc), SubscribeSize)
		}
		got, err := DecodeSubscribe(enc)
		if err != nil {
			t.Fatalf("DecodeSubscribe(%+v): %v", c, err)
		}
		if got != c {
			t.Fatalf("cursor round trip: got %+v, want %+v", got, c)
		}
		// Append form must produce the same bytes after arbitrary prefix.
		buf := AppendSubscribe([]byte("prefix"), c)
		if !bytes.Equal(buf[6:], enc) {
			t.Fatalf("AppendSubscribe diverged from EncodeSubscribe")
		}
	}
}

func TestSubscribeAckRoundTrip(t *testing.T) {
	for _, a := range []SubscribeAck{
		{},
		{Base: 0, Len: 9},
		{Base: 4, Len: 4},
		{Base: 4, Len: 99},
	} {
		enc := EncodeSubscribeAck(a)
		if len(enc) != SubscribeAckSize {
			t.Fatalf("EncodeSubscribeAck(%+v) = %d bytes, want %d", a, len(enc), SubscribeAckSize)
		}
		got, err := DecodeSubscribeAck(enc)
		if err != nil {
			t.Fatalf("DecodeSubscribeAck(%+v): %v", a, err)
		}
		if got != a {
			t.Fatalf("ack round trip: got %+v, want %+v", got, a)
		}
	}
}

func TestResyncRoundTrip(t *testing.T) {
	for _, r := range []Resync{
		{Reason: ResyncFold, Base: 0, Len: 0},
		{Reason: ResyncFold, Base: 8, Len: 20},
		{Reason: ResyncLag, Base: 0, Len: 64},
		{Reason: ResyncShutdown, Base: 3, Len: 3},
	} {
		enc := EncodeResync(r)
		if len(enc) != ResyncSize {
			t.Fatalf("EncodeResync(%+v) = %d bytes, want %d", r, len(enc), ResyncSize)
		}
		got, err := DecodeResync(enc)
		if err != nil {
			t.Fatalf("DecodeResync(%+v): %v", r, err)
		}
		if got != r {
			t.Fatalf("resync round trip: got %+v, want %+v", got, r)
		}
	}
}

// TestSubscribeDecodeTruncated walks every prefix of each well-formed
// v5 payload (plus one trailing byte) through its decoder: only the
// exact length may decode.
func TestSubscribeDecodeTruncated(t *testing.T) {
	cases := []struct {
		name   string
		full   []byte
		decode func([]byte) error
	}{
		{"subscribe", EncodeSubscribe(Cursor{Base: 2, Next: 9, CRC: 0xabad1dea}),
			func(b []byte) error { _, err := DecodeSubscribe(b); return err }},
		{"subscribe-ack", EncodeSubscribeAck(SubscribeAck{Base: 2, Len: 9}),
			func(b []byte) error { _, err := DecodeSubscribeAck(b); return err }},
		{"resync", EncodeResync(Resync{Reason: ResyncLag, Base: 2, Len: 9}),
			func(b []byte) error { _, err := DecodeResync(b); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.decode(tc.full); err != nil {
				t.Fatalf("full payload rejected: %v", err)
			}
			for n := 0; n < len(tc.full); n++ {
				if err := tc.decode(tc.full[:n]); err == nil {
					t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(tc.full))
				}
			}
			long := append(append([]byte(nil), tc.full...), 0)
			if err := tc.decode(long); err == nil {
				t.Fatalf("payload with trailing byte decoded without error")
			}
		})
	}
}

func TestSubscribeDecodeRejectsInvariantViolations(t *testing.T) {
	// Cursor with next below base.
	bad := AppendSubscribe(nil, Cursor{Base: 9, Next: 8})
	if _, err := DecodeSubscribe(bad); err == nil {
		t.Fatal("cursor with next < base decoded without error")
	}
	// Ack with len below base.
	var ack [SubscribeAckSize]byte
	ack[3] = 9 // base 9, len 0
	if _, err := DecodeSubscribeAck(ack[:]); err == nil {
		t.Fatal("ack with len < base decoded without error")
	}
	// Resync with unknown reason and with len below base.
	if _, err := DecodeResync(AppendResync(nil, Resync{Reason: 0, Base: 1, Len: 2})); err == nil {
		t.Fatal("resync with reason 0 decoded without error")
	}
	if _, err := DecodeResync(AppendResync(nil, Resync{Reason: ResyncShutdown + 1, Base: 1, Len: 2})); err == nil {
		t.Fatal("resync with out-of-range reason decoded without error")
	}
	if _, err := DecodeResync(AppendResync(nil, Resync{Reason: ResyncFold, Base: 5, Len: 4})); err == nil {
		t.Fatal("resync with len < base decoded without error")
	}
}

func TestResyncReasonString(t *testing.T) {
	for reason, want := range map[uint8]string{
		ResyncFold:     "fold",
		ResyncLag:      "lag",
		ResyncShutdown: "shutdown",
		77:             "reason(77)",
	} {
		if got := ResyncReasonString(reason); got != want {
			t.Fatalf("ResyncReasonString(%d) = %q, want %q", reason, got, want)
		}
	}
}
