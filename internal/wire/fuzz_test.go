package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// fuzzMaxPayload keeps fuzz-driven allocations small; the declared
// length still exercises the limit check against DefaultMaxPayload-
// sized lies.
const fuzzMaxPayload = 1 << 20

// FuzzFrameDecode feeds arbitrary bytes to the frame reader and, when a
// frame decodes, checks that it survives a write/read round trip
// byte-identically. The payload is additionally interpreted as a
// lineage list and as a stats block, covering both sub-decoders with
// the same corpus.
func FuzzFrameDecode(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, &Frame{Type: TPush, Status: StatusOK, Lineage: 7, Ckpt: 3, Payload: []byte("diff")})
	f.Add(buf.Bytes())
	payload, _ := EncodeList([]LineageInfo{{Name: "rank-0", Len: 2, Bytes: 99}})
	buf.Reset()
	_ = WriteFrame(&buf, &Frame{Type: TList, Payload: payload})
	f.Add(buf.Bytes())
	buf.Reset()
	_ = WriteFrame(&buf, &Frame{Type: TStats, Payload: (&Stats{Requests: 5}).Encode()})
	f.Add(buf.Bytes())
	hdr := make([]byte, HeaderSize)
	binary.BigEndian.PutUint32(hdr[10:], fuzzMaxPayload+1) // over-limit length
	f.Add(hdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data), fuzzMaxPayload)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		consumed := int(fr.WireSize())
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("round trip diverged:\n in  %x\n out %x", data[:consumed], out.Bytes())
		}
		// Sub-decoders must never panic on the payload.
		if infos, err := DecodeList(fr.Payload); err == nil {
			if _, err := EncodeList(infos); err != nil {
				t.Fatalf("re-encode of decoded list failed: %v", err)
			}
		}
		if s, err := DecodeStats(fr.Payload); err == nil {
			// A legacy v5 payload re-encodes with a zero v6 trailer; the
			// prefix must round trip byte-identically either way.
			out := s.Encode()
			if !bytes.Equal(out[:len(fr.Payload)], fr.Payload) {
				t.Fatal("stats round trip diverged")
			}
			for _, b := range out[len(fr.Payload):] {
				if b != 0 {
					t.Fatal("legacy stats decode invented trailer counters")
				}
			}
		}
	})
}

// readWriter pairs a read side with a discard write side so Handshake
// can run against fuzz input.
type readWriter struct {
	io.Reader
	io.Writer
}

// FuzzHandshake drives the full hello exchange with arbitrary peer
// bytes: it must accept exactly a well-formed hello at or above
// MinVersion, settle on min(ours, theirs), and error on everything
// else, never panic.
func FuzzHandshake(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteHello(&valid)
	f.Add(valid.Bytes())
	older := append([]byte(nil), valid.Bytes()...)
	older[4] = MinVersion
	f.Add(older)
	tooOld := append([]byte(nil), valid.Bytes()...)
	tooOld[4] = MinVersion - 1
	f.Add(tooOld)
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rw := &readWriter{Reader: bytes.NewReader(data), Writer: io.Discard}
		got, err := Handshake(rw)
		wellFormed := len(data) >= HelloSize &&
			binary.BigEndian.Uint32(data) == Magic && data[4] >= MinVersion
		if wellFormed {
			want := min(data[4], Version)
			if err != nil || got != want {
				t.Fatalf("valid hello (peer v%d) rejected: got %d, %v", data[4], got, err)
			}
		} else if err == nil {
			t.Fatalf("malformed hello %x accepted", data)
		}
	})
}

// FuzzStreamAck feeds arbitrary bytes to the v4 ack decoder and, when
// a payload decodes, checks that re-encoding reproduces it
// byte-identically — the decoder must accept exactly the format the
// encoder emits, with no trailing or truncated slack.
func FuzzStreamAck(f *testing.F) {
	seed, _ := AppendStreamAck(nil, &StreamAck{Ckpt: 7, NewLen: 8})
	f.Add(seed)
	seed, _ = AppendStreamAck(nil, &StreamAck{Ckpt: 3, RetryAfterMs: 250, Msg: "server busy"})
	f.Add(seed)
	f.Add(append(append([]byte(nil), seed...), 0)) // trailing byte
	f.Add(seed[:streamAckFixed-1])                 // truncated fixed prefix
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeStreamAck(data)
		if err != nil {
			return
		}
		out, err := AppendStreamAck(nil, &a)
		if err != nil {
			t.Fatalf("re-encode of decoded ack failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("stream ack round trip diverged:\n in  %x\n out %x", data, out)
		}
	})
}

// FuzzSubscribeDecode feeds arbitrary bytes to all three v5
// subscription payload decoders. Whatever decodes must re-encode
// byte-identically (exact-length formats, no slack) and must satisfy
// the documented invariants — a decoder that accepts next < base or
// an unknown resync reason would let a hostile primary wedge a
// follower.
func FuzzSubscribeDecode(f *testing.F) {
	f.Add(EncodeSubscribe(Cursor{Base: 3, Next: 9, CRC: 0xdeadbeef}))
	f.Add(EncodeSubscribe(Cursor{Base: 0, Next: 0}))
	f.Add(EncodeSubscribeAck(SubscribeAck{Base: 2, Len: 17}))
	f.Add(EncodeResync(Resync{Reason: ResyncFold, Base: 5, Len: 12}))
	f.Add(EncodeResync(Resync{Reason: ResyncShutdown, Base: 0, Len: 0}))
	f.Add(EncodeSubscribe(Cursor{Base: 9, Next: 3})[:SubscribeSize]) // next below base
	f.Add(EncodeResync(Resync{Reason: ResyncLag, Base: 1, Len: 4})[:ResyncSize-1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := DecodeSubscribe(data); err == nil {
			if c.Next < c.Base {
				t.Fatalf("decoded cursor violates next >= base: %+v", c)
			}
			if out := EncodeSubscribe(c); !bytes.Equal(out, data) {
				t.Fatalf("cursor round trip diverged:\n in  %x\n out %x", data, out)
			}
		}
		if a, err := DecodeSubscribeAck(data); err == nil {
			if a.Len < a.Base {
				t.Fatalf("decoded ack violates len >= base: %+v", a)
			}
			if out := EncodeSubscribeAck(a); !bytes.Equal(out, data) {
				t.Fatalf("ack round trip diverged:\n in  %x\n out %x", data, out)
			}
		}
		if r, err := DecodeResync(data); err == nil {
			if r.Reason < ResyncFold || r.Reason > ResyncShutdown {
				t.Fatalf("decoded resync with unknown reason: %+v", r)
			}
			if r.Len < r.Base {
				t.Fatalf("decoded resync violates len >= base: %+v", r)
			}
			if out := EncodeResync(r); !bytes.Equal(out, data) {
				t.Fatalf("resync round trip diverged:\n in  %x\n out %x", data, out)
			}
		}
	})
}
