package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: TOpen, Payload: []byte("lineage-a")},
		{Type: TPush, Lineage: 7, Ckpt: 3, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Type: TPull, Lineage: 1, Ckpt: 0},
		{Type: TStats, Status: StatusOK},
		{Type: TErr, Status: StatusErr, Payload: []byte("boom")},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Status != want.Status ||
			got.Lineage != want.Lineage || got.Ckpt != want.Ckpt ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame mismatch: got %+v want %+v", got, want)
		}
		if got.WireSize() != HeaderSize+int64(len(want.Payload)) {
			t.Fatalf("wire size %d", got.WireSize())
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes", buf.Len())
	}
}

func TestFrameMaxPayloadGuard(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TPush, Payload: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 64); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized payload accepted: %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TPull, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, HeaderSize, HeaderSize + 2} {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut]), 0); err == nil {
			t.Fatalf("truncated frame (%d bytes) accepted", cut)
		}
	}
}

func TestHelloExchange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HelloSize {
		t.Fatalf("hello is %d bytes, want %d", buf.Len(), HelloSize)
	}
	v, err := ReadHello(&buf)
	if err != nil || v != Version {
		t.Fatalf("hello round trip: v=%d err=%v", v, err)
	}
	if _, err := ReadHello(bytes.NewReader([]byte("notckpd"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic accepted: %v", err)
	}
	if _, err := ReadHello(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short hello accepted")
	}
}

// pipeRW adapts separate read/write ends into an io.ReadWriter.
type pipeRW struct {
	io.Reader
	io.Writer
}

func TestHandshake(t *testing.T) {
	// The peer's hello is already in flight (as over a buffered TCP
	// socket); Handshake writes ours and validates theirs.
	var peer, ours bytes.Buffer
	if err := WriteHello(&peer); err != nil {
		t.Fatal(err)
	}
	got, err := Handshake(pipeRW{&peer, &ours})
	if err != nil || got != Version {
		t.Fatalf("same-version handshake: v=%d err=%v", got, err)
	}
	v, err := ReadHello(&ours)
	if err != nil || v != Version {
		t.Fatalf("handshake wrote bad hello: v=%d err=%v", v, err)
	}
}

func TestHandshakeNegotiation(t *testing.T) {
	cases := []struct {
		ours, theirs uint8
		want         uint8
		ok           bool
	}{
		{Version, Version, Version, true},
		// A newer peer settles on our version; a MinVersion peer pulls
		// us down to its level.
		{Version, Version + 3, Version, true},
		{Version, MinVersion, MinVersion, true},
		{MinVersion, Version, MinVersion, true},
		// Anything below the floor is refused, on either side.
		{Version, MinVersion - 1, 0, false},
		{MinVersion - 1, Version, 0, false},
		{Version, 0, 0, false},
	}
	for _, c := range cases {
		var peer, out bytes.Buffer
		if err := WriteHelloVersion(&peer, c.theirs); err != nil {
			t.Fatal(err)
		}
		got, err := HandshakeVersion(pipeRW{&peer, &out}, c.ours)
		if c.ok {
			if err != nil || got != c.want {
				t.Fatalf("handshake(ours=%d, theirs=%d): got %d, %v; want %d", c.ours, c.theirs, got, err, c.want)
			}
		} else if err == nil {
			t.Fatalf("handshake(ours=%d, theirs=%d) accepted, want refusal", c.ours, c.theirs)
		}
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	var peer bytes.Buffer
	b := []byte{0x43, 0x4b, 0x50, 0x44, MinVersion - 1, 0}
	peer.Write(b)
	var out bytes.Buffer
	if _, err := Handshake(pipeRW{&peer, &out}); err == nil {
		t.Fatal("below-floor version accepted")
	}
}

func TestListRoundTrip(t *testing.T) {
	infos := []LineageInfo{
		{Name: "alpha", Len: 4, Bytes: 123456},
		{Name: "a/b-c_d", Len: 0, Bytes: 0},
		{Name: "", Len: 1, Bytes: 1},
	}
	payload, err := EncodeList(infos)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeList(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(infos) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range infos {
		if got[i] != infos[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], infos[i])
		}
	}
	emptyPayload, err := EncodeList(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty, err := DecodeList(emptyPayload); err != nil || len(empty) != 0 {
		t.Fatalf("empty list round trip: %v %v", empty, err)
	}
	for _, bad := range [][]byte{{}, {0, 0, 0, 1}, append(append([]byte{}, payload...), 0)} {
		if _, err := DecodeList(bad); err == nil {
			t.Fatalf("corrupt list %v accepted", bad)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	s := Stats{Requests: 1, BytesIn: 2, BytesOut: 3, ActiveConns: 4, Conns: 5, Lineages: 6}
	got, err := DecodeStats(s.Encode())
	if err != nil || got != s {
		t.Fatalf("stats round trip: %+v %v", got, err)
	}
	if _, err := DecodeStats([]byte{1, 2, 3}); err == nil {
		t.Fatal("short stats accepted")
	}
}

func TestRemoteError(t *testing.T) {
	f := &Frame{Type: TPush, Status: StatusErr, Payload: []byte("no such lineage")}
	err := f.Err()
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "no such lineage" {
		t.Fatalf("err = %v", err)
	}
	ok := &Frame{Type: TPush, Status: StatusOK}
	if ok.Err() != nil {
		t.Fatal("ok frame reported error")
	}
}

func TestOpenInfoRoundTrip(t *testing.T) {
	for _, base := range []uint32{0, 1, 56, 1 << 30} {
		got, err := DecodeOpenInfo(EncodeOpenInfo(base))
		if err != nil || got != base {
			t.Fatalf("open info %d: got %d, %v", base, got, err)
		}
	}
	// An empty payload (v1-era response) decodes as baseline 0.
	if got, err := DecodeOpenInfo(nil); err != nil || got != 0 {
		t.Fatalf("empty open info: got %d, %v", got, err)
	}
	for _, bad := range [][]byte{{1}, {1, 2, 3}, {1, 2, 3, 4, 5}} {
		if _, err := DecodeOpenInfo(bad); err == nil {
			t.Fatalf("open info of %d bytes accepted", len(bad))
		}
	}
}

func TestCompactResultRoundTrip(t *testing.T) {
	cases := []CompactResult{
		{},
		{OldBase: 0, NewBase: 56, Pruned: 56, Rewritten: 7, FreedBytes: 123456},
		{OldBase: 3, NewBase: 3}, // no-op compaction
		{OldBase: 1, NewBase: 2, FreedBytes: -400},
	}
	for _, r := range cases {
		got, err := DecodeCompactResult(r.Encode())
		if err != nil || got != r {
			t.Fatalf("compact result %+v: got %+v, %v", r, got, err)
		}
	}
	if _, err := DecodeCompactResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("short compact result accepted")
	}
	// A result that moves the baseline backwards is corrupt by
	// definition: the manifest commit is forward-only.
	backwards := (&CompactResult{OldBase: 9, NewBase: 2}).Encode()
	if _, err := DecodeCompactResult(backwards); err == nil {
		t.Fatal("backwards baseline accepted")
	}
}

func TestListBaseValidation(t *testing.T) {
	infos := []LineageInfo{{Name: "compacted", Len: 64, Base: 56, Bytes: 999}}
	payload, err := EncodeList(infos)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeList(payload)
	if err != nil || len(got) != 1 || got[0] != infos[0] {
		t.Fatalf("list with base: got %+v, %v", got, err)
	}
	// Base beyond Len means the entry describes an empty negative span.
	bad, err := EncodeList([]LineageInfo{{Name: "x", Len: 3, Base: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeList(bad); err == nil {
		t.Fatal("baseline beyond length accepted")
	}
}

func TestStatsCompactionCounters(t *testing.T) {
	s := Stats{Requests: 1, BytesIn: 2, BytesOut: 3, ActiveConns: 4, Conns: 5,
		Lineages: 6, Compactions: 7, CompactedDiffs: 8, ReclaimedBytes: 9}
	got, err := DecodeStats(s.Encode())
	if err != nil || got != s {
		t.Fatalf("stats round trip: %+v %v", got, err)
	}
}

func TestStreamAckRoundTrip(t *testing.T) {
	cases := []StreamAck{
		{},
		{Ckpt: 7, NewLen: 8},
		{Ckpt: 3, RetryAfterMs: 250, Msg: "server busy"},
		{Ckpt: 1<<32 - 1, NewLen: 1<<32 - 1, Msg: "x"},
	}
	buf := make([]byte, 0, 64)
	for _, a := range cases {
		buf = buf[:0]
		var err error
		buf, err = AppendStreamAck(buf, &a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeStreamAck(buf)
		if err != nil || got != a {
			t.Fatalf("stream ack %+v: got %+v, %v", a, got, err)
		}
	}
	// An over-long message must fail, not truncate.
	long := StreamAck{Msg: string(make([]byte, 1<<16))}
	if _, err := AppendStreamAck(nil, &long); err == nil {
		t.Fatal("64 KiB ack message accepted")
	}
}

func TestStreamAckErr(t *testing.T) {
	ok := StreamAck{Ckpt: 3, NewLen: 4}
	if err := ok.Err(StatusOK); err != nil {
		t.Fatalf("ok ack reported error: %v", err)
	}
	busy := StreamAck{Ckpt: 3, RetryAfterMs: 120}
	err := busy.Err(StatusBusy)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("busy ack not matched by ErrBusy: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.RetryAfter != 120*time.Millisecond {
		t.Fatalf("busy ack hint lost: %#v", err)
	}
	unk := StreamAck{Ckpt: 9, Msg: "stale handle"}
	if !errors.Is(unk.Err(StatusUnknownHandle), ErrUnknownHandle) {
		t.Fatal("unknown-handle ack not matched by ErrUnknownHandle")
	}
	plain := StreamAck{Ckpt: 1, Msg: "boom"}
	perr := plain.Err(StatusErr)
	if errors.Is(perr, ErrBusy) || errors.Is(perr, ErrUnknownHandle) || errors.Is(perr, ErrUnsupported) {
		t.Fatalf("plain error matched a sentinel: %v", perr)
	}
}

func TestStreamFrameErrorUnwrap(t *testing.T) {
	inner := &RemoteError{Msg: "busy", Busy: true, RetryAfter: time.Second}
	err := error(&StreamFrameError{Ckpt: 42, Err: inner})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("StreamFrameError hides the busy sentinel: %v", err)
	}
	var sfe *StreamFrameError
	if !errors.As(err, &sfe) || sfe.Ckpt != 42 {
		t.Fatalf("err = %#v", err)
	}
	// Transient classification must see through the wrapper too.
	if !Transient(err) {
		t.Fatal("wrapped busy rejection classified terminal")
	}
	if Transient(&StreamFrameError{Ckpt: 1, Err: &RemoteError{Msg: "no such ckpt"}}) {
		t.Fatal("wrapped terminal rejection classified transient")
	}
}

func TestUnknownHandleError(t *testing.T) {
	f := &Frame{Type: TPush, Status: StatusUnknownHandle, Payload: []byte("stale epoch")}
	err := f.Err()
	if !errors.Is(err, ErrUnknownHandle) {
		t.Fatalf("unknown-handle status not matched: %v", err)
	}
	// Not executed, but the fix is re-open + replay, not blind retry of
	// the same frame — classification stays terminal so the caller's
	// handle-refresh path runs instead of the redial loop.
	if Transient(err) {
		t.Fatal("unknown-handle classified transient")
	}
}

func TestChecksumAdd(t *testing.T) {
	whole := []byte("the quick brown fox jumps over the lazy dog")
	want := Checksum(whole)
	for _, cut := range []int{0, 1, 7, len(whole) / 2, len(whole)} {
		sum := ChecksumAdd(0, whole[:cut])
		sum = ChecksumAdd(sum, whole[cut:])
		if sum != want {
			t.Fatalf("split at %d: %08x != %08x", cut, sum, want)
		}
	}
	if ChecksumAdd(0, whole) != want {
		t.Fatal("single-shot ChecksumAdd differs from Checksum")
	}
}

func TestAppendFrameHeaderMatchesWriteFrame(t *testing.T) {
	f := &Frame{Type: TPushStream, Status: StatusOK, Lineage: 77, Ckpt: 12345, Payload: []byte("payload!")}
	var want bytes.Buffer
	if err := WriteFrame(&want, f); err != nil {
		t.Fatal(err)
	}
	hdr, err := AppendFrameHeader(nil, f.Type, f.Status, f.Lineage, f.Ckpt, len(f.Payload))
	if err != nil {
		t.Fatal(err)
	}
	got := append(append([]byte{}, hdr...), f.Payload...)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("header bytes diverge:\n got  %x\n want %x", got, want.Bytes())
	}
	if _, err := AppendFrameHeader(nil, TPush, StatusOK, 0, 0, -1); err == nil {
		t.Fatal("negative payload length accepted")
	}
}

func TestWriteFrameVec(t *testing.T) {
	// Assemble one frame from three scattered segments and confirm the
	// reader can't tell it from a contiguous WriteFrame.
	payload := []byte("hello, scattered world")
	hdr, err := AppendFrameHeader(nil, TPushStream, StatusOK, 9, 4, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	vec := net.Buffers{hdr, payload[:5], payload[5:]}
	var buf bytes.Buffer
	if err := WriteFrameVec(&buf, &vec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TPushStream || got.Lineage != 9 || got.Ckpt != 4 || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("vec frame mismatch: %+v", got)
	}
}

func TestReadFrameIntoReusesScratch(t *testing.T) {
	var buf bytes.Buffer
	frames := []*Frame{
		{Type: TPush, Lineage: 1, Ckpt: 0, Payload: bytes.Repeat([]byte{0xCD}, 2048)},
		{Type: TPush, Lineage: 1, Ckpt: 1, Payload: bytes.Repeat([]byte{0xEF}, 1024)},
		{Type: TPull, Lineage: 1, Ckpt: 2}, // empty payload
		{Type: TPush, Lineage: 1, Ckpt: 3, Payload: bytes.Repeat([]byte{0x12}, 2048)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	var f Frame
	var scratch []byte
	for i, want := range frames {
		if err := ReadFrameInto(&buf, 0, &f, &scratch); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != want.Type || f.Ckpt != want.Ckpt || !bytes.Equal(f.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: %+v", i, f)
		}
		if i > 0 && len(want.Payload) > 0 && cap(scratch) < 2048 {
			t.Fatalf("scratch shrank to %d", cap(scratch))
		}
	}
	// Steady state: an already-grown scratch absorbs same-size frames
	// without allocating.
	var pre bytes.Buffer
	for i := 0; i < 16; i++ {
		if err := WriteFrame(&pre, frames[0]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(8, func() {
		if err := ReadFrameInto(&pre, 0, &f, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ReadFrameInto allocates %.1f/op", allocs)
	}
}

func TestUnsupportedError(t *testing.T) {
	f := &Frame{Type: 0x77, Status: StatusUnsupported, Payload: []byte("unknown request type 0x77")}
	err := f.Err()
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("unsupported status not matched by ErrUnsupported: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || !re.Unsupported {
		t.Fatalf("err = %#v", err)
	}
	// A plain StatusErr must NOT match the sentinel.
	plain := (&Frame{Type: TPush, Status: StatusErr, Payload: []byte("boom")}).Err()
	if errors.Is(plain, ErrUnsupported) {
		t.Fatal("generic error matched ErrUnsupported")
	}
}
