package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: TOpen, Payload: []byte("lineage-a")},
		{Type: TPush, Lineage: 7, Ckpt: 3, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Type: TPull, Lineage: 1, Ckpt: 0},
		{Type: TStats, Status: StatusOK},
		{Type: TErr, Status: StatusErr, Payload: []byte("boom")},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Status != want.Status ||
			got.Lineage != want.Lineage || got.Ckpt != want.Ckpt ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame mismatch: got %+v want %+v", got, want)
		}
		if got.WireSize() != HeaderSize+int64(len(want.Payload)) {
			t.Fatalf("wire size %d", got.WireSize())
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes", buf.Len())
	}
}

func TestFrameMaxPayloadGuard(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TPush, Payload: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 64); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized payload accepted: %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TPull, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, HeaderSize, HeaderSize + 2} {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut]), 0); err == nil {
			t.Fatalf("truncated frame (%d bytes) accepted", cut)
		}
	}
}

func TestHelloExchange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HelloSize {
		t.Fatalf("hello is %d bytes, want %d", buf.Len(), HelloSize)
	}
	v, err := ReadHello(&buf)
	if err != nil || v != Version {
		t.Fatalf("hello round trip: v=%d err=%v", v, err)
	}
	if _, err := ReadHello(bytes.NewReader([]byte("notckpd"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic accepted: %v", err)
	}
	if _, err := ReadHello(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short hello accepted")
	}
}

// pipeRW adapts separate read/write ends into an io.ReadWriter.
type pipeRW struct {
	io.Reader
	io.Writer
}

func TestHandshake(t *testing.T) {
	// The peer's hello is already in flight (as over a buffered TCP
	// socket); Handshake writes ours and validates theirs.
	var peer, ours bytes.Buffer
	if err := WriteHello(&peer); err != nil {
		t.Fatal(err)
	}
	if err := Handshake(pipeRW{&peer, &ours}); err != nil {
		t.Fatal(err)
	}
	v, err := ReadHello(&ours)
	if err != nil || v != Version {
		t.Fatalf("handshake wrote bad hello: v=%d err=%v", v, err)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	var peer bytes.Buffer
	b := []byte{0x43, 0x4b, 0x50, 0x44, Version + 1, 0}
	peer.Write(b)
	var out bytes.Buffer
	err := Handshake(pipeRW{&peer, &out})
	if err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestListRoundTrip(t *testing.T) {
	infos := []LineageInfo{
		{Name: "alpha", Len: 4, Bytes: 123456},
		{Name: "a/b-c_d", Len: 0, Bytes: 0},
		{Name: "", Len: 1, Bytes: 1},
	}
	payload, err := EncodeList(infos)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeList(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(infos) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range infos {
		if got[i] != infos[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], infos[i])
		}
	}
	emptyPayload, err := EncodeList(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty, err := DecodeList(emptyPayload); err != nil || len(empty) != 0 {
		t.Fatalf("empty list round trip: %v %v", empty, err)
	}
	for _, bad := range [][]byte{{}, {0, 0, 0, 1}, append(append([]byte{}, payload...), 0)} {
		if _, err := DecodeList(bad); err == nil {
			t.Fatalf("corrupt list %v accepted", bad)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	s := Stats{Requests: 1, BytesIn: 2, BytesOut: 3, ActiveConns: 4, Conns: 5, Lineages: 6}
	got, err := DecodeStats(s.Encode())
	if err != nil || got != s {
		t.Fatalf("stats round trip: %+v %v", got, err)
	}
	if _, err := DecodeStats([]byte{1, 2, 3}); err == nil {
		t.Fatal("short stats accepted")
	}
}

func TestRemoteError(t *testing.T) {
	f := &Frame{Type: TPush, Status: StatusErr, Payload: []byte("no such lineage")}
	err := f.Err()
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "no such lineage" {
		t.Fatalf("err = %v", err)
	}
	ok := &Frame{Type: TPush, Status: StatusOK}
	if ok.Err() != nil {
		t.Fatal("ok frame reported error")
	}
}

func TestOpenInfoRoundTrip(t *testing.T) {
	for _, base := range []uint32{0, 1, 56, 1 << 30} {
		got, err := DecodeOpenInfo(EncodeOpenInfo(base))
		if err != nil || got != base {
			t.Fatalf("open info %d: got %d, %v", base, got, err)
		}
	}
	// An empty payload (v1-era response) decodes as baseline 0.
	if got, err := DecodeOpenInfo(nil); err != nil || got != 0 {
		t.Fatalf("empty open info: got %d, %v", got, err)
	}
	for _, bad := range [][]byte{{1}, {1, 2, 3}, {1, 2, 3, 4, 5}} {
		if _, err := DecodeOpenInfo(bad); err == nil {
			t.Fatalf("open info of %d bytes accepted", len(bad))
		}
	}
}

func TestCompactResultRoundTrip(t *testing.T) {
	cases := []CompactResult{
		{},
		{OldBase: 0, NewBase: 56, Pruned: 56, Rewritten: 7, FreedBytes: 123456},
		{OldBase: 3, NewBase: 3}, // no-op compaction
		{OldBase: 1, NewBase: 2, FreedBytes: -400},
	}
	for _, r := range cases {
		got, err := DecodeCompactResult(r.Encode())
		if err != nil || got != r {
			t.Fatalf("compact result %+v: got %+v, %v", r, got, err)
		}
	}
	if _, err := DecodeCompactResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("short compact result accepted")
	}
	// A result that moves the baseline backwards is corrupt by
	// definition: the manifest commit is forward-only.
	backwards := (&CompactResult{OldBase: 9, NewBase: 2}).Encode()
	if _, err := DecodeCompactResult(backwards); err == nil {
		t.Fatal("backwards baseline accepted")
	}
}

func TestListBaseValidation(t *testing.T) {
	infos := []LineageInfo{{Name: "compacted", Len: 64, Base: 56, Bytes: 999}}
	payload, err := EncodeList(infos)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeList(payload)
	if err != nil || len(got) != 1 || got[0] != infos[0] {
		t.Fatalf("list with base: got %+v, %v", got, err)
	}
	// Base beyond Len means the entry describes an empty negative span.
	bad, err := EncodeList([]LineageInfo{{Name: "x", Len: 3, Base: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeList(bad); err == nil {
		t.Fatal("baseline beyond length accepted")
	}
}

func TestStatsCompactionCounters(t *testing.T) {
	s := Stats{Requests: 1, BytesIn: 2, BytesOut: 3, ActiveConns: 4, Conns: 5,
		Lineages: 6, Compactions: 7, CompactedDiffs: 8, ReclaimedBytes: 9}
	got, err := DecodeStats(s.Encode())
	if err != nil || got != s {
		t.Fatalf("stats round trip: %+v %v", got, err)
	}
}

func TestUnsupportedError(t *testing.T) {
	f := &Frame{Type: 0x77, Status: StatusUnsupported, Payload: []byte("unknown request type 0x77")}
	err := f.Err()
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("unsupported status not matched by ErrUnsupported: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || !re.Unsupported {
		t.Fatalf("err = %#v", err)
	}
	// A plain StatusErr must NOT match the sentinel.
	plain := (&Frame{Type: TPush, Status: StatusErr, Payload: []byte("boom")}).Err()
	if errors.Is(plain, ErrUnsupported) {
		t.Fatal("generic error matched ErrUnsupported")
	}
}
