package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: TOpen, Payload: []byte("lineage-a")},
		{Type: TPush, Lineage: 7, Ckpt: 3, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Type: TPull, Lineage: 1, Ckpt: 0},
		{Type: TStats, Status: StatusOK},
		{Type: TErr, Status: StatusErr, Payload: []byte("boom")},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Status != want.Status ||
			got.Lineage != want.Lineage || got.Ckpt != want.Ckpt ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame mismatch: got %+v want %+v", got, want)
		}
		if got.WireSize() != HeaderSize+int64(len(want.Payload)) {
			t.Fatalf("wire size %d", got.WireSize())
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes", buf.Len())
	}
}

func TestFrameMaxPayloadGuard(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TPush, Payload: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 64); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized payload accepted: %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Frame{Type: TPull, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, HeaderSize, HeaderSize + 2} {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut]), 0); err == nil {
			t.Fatalf("truncated frame (%d bytes) accepted", cut)
		}
	}
}

func TestHelloExchange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HelloSize {
		t.Fatalf("hello is %d bytes, want %d", buf.Len(), HelloSize)
	}
	v, err := ReadHello(&buf)
	if err != nil || v != Version {
		t.Fatalf("hello round trip: v=%d err=%v", v, err)
	}
	if _, err := ReadHello(bytes.NewReader([]byte("notckpd"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic accepted: %v", err)
	}
	if _, err := ReadHello(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("short hello accepted")
	}
}

// pipeRW adapts separate read/write ends into an io.ReadWriter.
type pipeRW struct {
	io.Reader
	io.Writer
}

func TestHandshake(t *testing.T) {
	// The peer's hello is already in flight (as over a buffered TCP
	// socket); Handshake writes ours and validates theirs.
	var peer, ours bytes.Buffer
	if err := WriteHello(&peer); err != nil {
		t.Fatal(err)
	}
	if err := Handshake(pipeRW{&peer, &ours}); err != nil {
		t.Fatal(err)
	}
	v, err := ReadHello(&ours)
	if err != nil || v != Version {
		t.Fatalf("handshake wrote bad hello: v=%d err=%v", v, err)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	var peer bytes.Buffer
	b := []byte{0x43, 0x4b, 0x50, 0x44, Version + 1, 0}
	peer.Write(b)
	var out bytes.Buffer
	err := Handshake(pipeRW{&peer, &out})
	if err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestListRoundTrip(t *testing.T) {
	infos := []LineageInfo{
		{Name: "alpha", Len: 4, Bytes: 123456},
		{Name: "a/b-c_d", Len: 0, Bytes: 0},
		{Name: "", Len: 1, Bytes: 1},
	}
	payload, err := EncodeList(infos)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeList(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(infos) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range infos {
		if got[i] != infos[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], infos[i])
		}
	}
	emptyPayload, err := EncodeList(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty, err := DecodeList(emptyPayload); err != nil || len(empty) != 0 {
		t.Fatalf("empty list round trip: %v %v", empty, err)
	}
	for _, bad := range [][]byte{{}, {0, 0, 0, 1}, append(append([]byte{}, payload...), 0)} {
		if _, err := DecodeList(bad); err == nil {
			t.Fatalf("corrupt list %v accepted", bad)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	s := Stats{Requests: 1, BytesIn: 2, BytesOut: 3, ActiveConns: 4, Conns: 5, Lineages: 6}
	got, err := DecodeStats(s.Encode())
	if err != nil || got != s {
		t.Fatalf("stats round trip: %+v %v", got, err)
	}
	if _, err := DecodeStats([]byte{1, 2, 3}); err == nil {
		t.Fatal("short stats accepted")
	}
}

func TestRemoteError(t *testing.T) {
	f := &Frame{Type: TPush, Status: StatusErr, Payload: []byte("no such lineage")}
	err := f.Err()
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "no such lineage" {
		t.Fatalf("err = %v", err)
	}
	ok := &Frame{Type: TPush, Status: StatusOK}
	if ok.Err() != nil {
		t.Fatal("ok frame reported error")
	}
}
