package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestDigestReqRoundTrip(t *testing.T) {
	for _, q := range []DigestReq{
		{},
		{Lo: 3, Hi: 17},
		{Lo: 3, Hi: 17, Detail: true},
		{Lo: 0, Hi: DigestMaxDetail, Detail: true},
	} {
		b := EncodeDigestReq(q)
		if len(b) != DigestReqSize {
			t.Fatalf("request %+v encoded to %d bytes, want %d", q, len(b), DigestReqSize)
		}
		got, err := DecodeDigestReq(b)
		if err != nil || got != q {
			t.Fatalf("round trip %+v -> %+v (err %v)", q, got, err)
		}
	}
}

// TestDigestReqTruncated truncates a request at every byte boundary
// and rejects trailing slack, inverted spans, unknown flags, and
// detail requests wider than the bound.
func TestDigestReqTruncated(t *testing.T) {
	valid := EncodeDigestReq(DigestReq{Lo: 2, Hi: 9, Detail: true})
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeDigestReq(valid[:i]); err == nil {
			t.Errorf("request truncated to %d bytes decoded", i)
		}
	}
	if _, err := DecodeDigestReq(append(append([]byte(nil), valid...), 0)); err == nil {
		t.Error("request with trailing byte decoded")
	}

	inverted := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(inverted[0:], 9)
	binary.BigEndian.PutUint32(inverted[4:], 2)
	if _, err := DecodeDigestReq(inverted); err == nil {
		t.Error("inverted span decoded")
	}
	badFlags := append([]byte(nil), valid...)
	badFlags[8] = 0x80
	if _, err := DecodeDigestReq(badFlags); err == nil {
		t.Error("unknown flag bit decoded")
	}
	wide := EncodeDigestReq(DigestReq{Lo: 0, Hi: DigestMaxDetail + 1})
	wide[8] = DigestDetail
	if _, err := DecodeDigestReq(wide); err == nil {
		t.Error("over-wide detail request decoded")
	}
}

func digestRespFixture() DigestResp {
	r := DigestResp{
		Base: 3, Len: 12, Generation: 5, CRC: 0xdeadbeef,
		SpanLo: 4, SpanHi: 8,
		Detail: []uint32{0x11, 0x22, 0x33, 0x44},
	}
	for i := range r.Root {
		r.Root[i] = byte(i + 1)
	}
	return r
}

func TestDigestRespRoundTrip(t *testing.T) {
	for _, r := range []DigestResp{
		{},
		{Base: 3, Len: 12, Generation: 2, CRC: 7, SpanLo: 3, SpanHi: 12},
		digestRespFixture(),
	} {
		b := EncodeDigestResp(r)
		got, err := DecodeDigestResp(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got.Base != r.Base || got.Len != r.Len || got.Generation != r.Generation ||
			got.CRC != r.CRC || got.Root != r.Root || got.SpanLo != r.SpanLo || got.SpanHi != r.SpanHi {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
		if len(got.Detail) != len(r.Detail) {
			t.Fatalf("detail round trip %v -> %v", r.Detail, got.Detail)
		}
		for i := range r.Detail {
			if got.Detail[i] != r.Detail[i] {
				t.Fatalf("detail[%d] %x -> %x", i, r.Detail[i], got.Detail[i])
			}
		}
	}
}

// TestDigestRespTruncated truncates a detail-bearing response at
// every byte boundary and rejects trailing slack.
func TestDigestRespTruncated(t *testing.T) {
	valid := EncodeDigestResp(digestRespFixture())
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeDigestResp(valid[:i]); err == nil {
			t.Errorf("response truncated to %d bytes decoded", i)
		}
	}
	if _, err := DecodeDigestResp(append(append([]byte(nil), valid...), 0)); err == nil {
		t.Error("response with trailing byte decoded")
	}
}

// TestDigestRespInvalid rejects semantic violations: len below base,
// spans outside the lineage, lying detail counts, and counts that do
// not cover the span.
func TestDigestRespInvalid(t *testing.T) {
	mutate := func(fn func(b []byte)) []byte {
		b := EncodeDigestResp(digestRespFixture())
		fn(b)
		return b
	}
	cases := map[string][]byte{
		"len below base": mutate(func(b []byte) { binary.BigEndian.PutUint32(b[4:], 1) }),
		"span below base": mutate(func(b []byte) {
			binary.BigEndian.PutUint32(b[36:], 0)
			binary.BigEndian.PutUint32(b[44:], 8) // count must track the widened span
		}),
		"span above len":  mutate(func(b []byte) { binary.BigEndian.PutUint32(b[40:], 99) }),
		"inverted span":   mutate(func(b []byte) { binary.BigEndian.PutUint32(b[36:], 9) }),
		"count over max":  mutate(func(b []byte) { binary.BigEndian.PutUint32(b[44:], DigestMaxDetail+1) }),
		"lying count":     mutate(func(b []byte) { binary.BigEndian.PutUint32(b[44:], 1<<20) }),
		"count span skew": mutate(func(b []byte) { binary.BigEndian.PutUint32(b[40:], 9) }),
	}
	for name, b := range cases {
		if _, err := DecodeDigestResp(b); err == nil {
			t.Errorf("%s decoded", name)
		}
	}
}

// TestDecodeStatsBackCompat: a v5 peer's 120-byte stats payload still
// decodes — the 15 legacy counters land and the v6 trailer reads
// zero — and the current encoding round trips at full size.
func TestDecodeStatsBackCompat(t *testing.T) {
	full := Stats{
		Requests: 1, BytesIn: 2, BytesOut: 3, ActiveConns: 4, Conns: 5, Lineages: 6,
		Compactions: 7, CompactedDiffs: 8, ReclaimedBytes: 9, BusyRejects: 10,
		BlocksInterned: 11, BlockDedupHits: 12, BlockBytesSaved: 13, BlockGCBlocks: 14, BlockGCBytes: 15,
		Quarantined: 16, DigestRounds: 17, SpansHealed: 18, BytesRefetched: 19,
		HealQuarantines: 20, Degraded: 21,
	}
	enc := full.Encode()
	if len(enc) != statsSize {
		t.Fatalf("stats encode to %d bytes, want %d", len(enc), statsSize)
	}
	got, err := DecodeStats(enc)
	if err != nil || got != full {
		t.Fatalf("full round trip: %+v err=%v", got, err)
	}

	legacy := enc[:statsSizeV5]
	got, err = DecodeStats(legacy)
	if err != nil {
		t.Fatalf("legacy 120-byte payload rejected: %v", err)
	}
	want := full
	want.Quarantined, want.DigestRounds, want.SpansHealed = 0, 0, 0
	want.BytesRefetched, want.HealQuarantines, want.Degraded = 0, 0, 0
	if got != want {
		t.Fatalf("legacy decode: %+v, want %+v", got, want)
	}
}

// FuzzDigestDecode feeds arbitrary bytes to both v6 digest decoders.
// Whatever decodes must re-encode byte-identically and satisfy the
// documented invariants — a decoder that accepts a span outside the
// lineage or an unbounded detail count would let a hostile peer
// wedge or balloon a reconciler.
func FuzzDigestDecode(f *testing.F) {
	f.Add(EncodeDigestReq(DigestReq{Lo: 3, Hi: 17, Detail: true}))
	f.Add(EncodeDigestReq(DigestReq{}))
	f.Add(EncodeDigestResp(digestRespFixture()))
	f.Add(EncodeDigestResp(DigestResp{Base: 1, Len: 1, SpanLo: 1, SpanHi: 1}))
	f.Add(EncodeDigestResp(digestRespFixture())[:DigestRespHeader-1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := DecodeDigestReq(data); err == nil {
			if q.Hi < q.Lo {
				t.Fatalf("decoded request violates hi >= lo: %+v", q)
			}
			if out := EncodeDigestReq(q); !bytes.Equal(out, data) {
				t.Fatalf("request round trip diverged:\n in  %x\n out %x", data, out)
			}
		}
		if r, err := DecodeDigestResp(data); err == nil {
			if r.Len < r.Base || r.SpanHi < r.SpanLo || r.SpanLo < r.Base || r.SpanHi > r.Len {
				t.Fatalf("decoded response violates span invariants: %+v", r)
			}
			if len(r.Detail) > DigestMaxDetail {
				t.Fatalf("decoded response detail overflows bound: %d", len(r.Detail))
			}
			if out := EncodeDigestResp(r); !bytes.Equal(out, data) {
				t.Fatalf("response round trip diverged:\n in  %x\n out %x", data, out)
			}
		}
	})
}
