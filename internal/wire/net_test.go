package wire

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// TestReadFrameOneByteWriter feeds ReadFrame a peer that writes the
// encoded frame one byte per Write call — the maximally fragmented
// delivery a slow or adversarial network can produce. The frame must
// reassemble exactly; partial reads must never surface as errors.
func TestReadFrameOneByteWriter(t *testing.T) {
	want := &Frame{Type: TPush, Lineage: 3, Ckpt: 9, Payload: bytes.Repeat([]byte{0x5C}, 257)}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cl, sv := net.Pipe()
	defer cl.Close()
	go func() {
		defer sv.Close()
		for i := range raw {
			if _, err := sv.Write(raw[i : i+1]); err != nil {
				return
			}
		}
	}()
	if err := cl.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(cl, 1<<20)
	if err != nil {
		t.Fatalf("one-byte-at-a-time frame: %v", err)
	}
	if got.Type != want.Type || got.Lineage != want.Lineage || got.Ckpt != want.Ckpt ||
		!bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("frame mismatch: got %+v", got)
	}
}

// TestReadFrameMidHeaderStall starts a frame and then goes silent
// partway through the header. With a read deadline armed the blocked
// ReadFrame must surface the deadline error — and that error must be
// classified transient (a retry on a fresh connection could succeed),
// not clean.
func TestReadFrameMidHeaderStall(t *testing.T) {
	want := &Frame{Type: TPull, Lineage: 1, Ckpt: 4}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) < HeaderSize {
		t.Fatalf("header shorter than HeaderSize: %d", len(raw))
	}

	cl, sv := net.Pipe()
	defer cl.Close()
	defer sv.Close()
	go sv.Write(raw[:HeaderSize/2]) // then stall forever

	if err := cl.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(cl, 1<<20)
	if err == nil {
		t.Fatal("stalled mid-header read succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("stall surfaced as non-timeout error: %v", err)
		}
	}
	if !Transient(err) {
		t.Fatalf("deadline error classified terminal: %v", err)
	}
	if IsClean(err) {
		t.Fatalf("deadline error classified clean shutdown: %v", err)
	}
}

// TestReadFrameMidPayloadStall is the same stall one layer down: the
// full header arrives, then the payload stops short. The deadline
// error must again be transient — the caller retries the whole frame
// on a new connection, never resumes mid-frame.
func TestReadFrameMidPayloadStall(t *testing.T) {
	want := &Frame{Type: TPush, Lineage: 2, Ckpt: 1, Payload: bytes.Repeat([]byte{0xEE}, 128)}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cl, sv := net.Pipe()
	defer cl.Close()
	defer sv.Close()
	go sv.Write(raw[:HeaderSize+13]) // header plus a sliver of payload

	if err := cl.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFrame(cl, 1<<20)
	if err == nil {
		t.Fatal("stalled mid-payload read succeeded")
	}
	if !Transient(err) {
		t.Fatalf("mid-payload deadline error classified terminal: %v", err)
	}
}
