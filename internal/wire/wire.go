// Package wire defines the framed binary protocol spoken between the
// ckptd checkpoint server and its clients.
//
// The protocol is deliberately minimal — the shape of blox's
// WriteFrame/ReadFrame transport: a fixed-size big-endian frame header
// carrying a request type, a status byte, two 32-bit ids (lineage
// handle and checkpoint id) and the payload length, followed by the
// payload bytes. A connection starts with a 6-byte hello exchange
// (magic + protocol version + flags) in both directions; every frame
// read is guarded by a configurable maximum payload size so a corrupt
// or hostile peer cannot demand an unbounded allocation.
//
// Request/response pairing is strictly sequential per connection: the
// client writes one request frame and reads exactly one response frame
// (Status reports success or failure; error responses carry the
// message in the payload). This keeps the server loop trivial and
// makes the client's retry-on-transient-error logic safe: a broken
// connection can always be replayed by re-sending the request on a
// fresh connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Protocol constants.
const (
	// Magic opens every hello ("CKPD" big-endian).
	Magic uint32 = 0x434b5044
	// Version is the protocol version negotiated by the hello
	// exchange. Peers with different versions refuse the connection.
	Version uint8 = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 14
	// HelloSize is the handshake message length in bytes.
	HelloSize = 6
	// DefaultMaxPayload bounds a frame payload unless overridden: 256
	// MiB comfortably holds any realistic encoded diff while keeping a
	// lying length field from demanding gigabytes.
	DefaultMaxPayload = 256 << 20
)

// Frame types (requests and their responses share the type byte).
const (
	// TOpen resolves a lineage name (payload) to a numeric handle; the
	// response carries the handle in Lineage and the current number of
	// stored checkpoints in Ckpt.
	TOpen uint8 = iota + 1
	// TPush appends one encoded diff (payload) as checkpoint Ckpt of
	// lineage Lineage; the response's Ckpt is the new length.
	TPush
	// TPull fetches the encoded diff of checkpoint Ckpt of lineage
	// Lineage into the response payload.
	TPull
	// TList returns the server's lineage directory (EncodeList).
	TList
	// TStats returns the server's counters (Stats.Encode).
	TStats
	// TErr is an unsolicited server error (e.g. connection limit
	// reached), sent without a matching request.
	TErr uint8 = 0xFF
)

// Status bytes.
const (
	// StatusOK marks a successful response.
	StatusOK uint8 = 0
	// StatusErr marks a failed response; the payload holds the error
	// message.
	StatusErr uint8 = 1
)

// Errors.
var (
	// ErrBadMagic reports a hello that does not start with Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrPayloadTooLarge reports a frame whose declared payload
	// exceeds the reader's limit.
	ErrPayloadTooLarge = errors.New("wire: payload exceeds frame limit")
)

// Frame is one protocol message in either direction.
type Frame struct {
	Type    uint8
	Status  uint8
	Lineage uint32 // lineage handle (TPush/TPull) or assigned handle (TOpen response)
	Ckpt    uint32 // checkpoint id or lineage length, per Type
	Payload []byte
}

// WireSize returns the number of bytes the frame occupies on the wire.
func (f *Frame) WireSize() int64 { return HeaderSize + int64(len(f.Payload)) }

// Err returns the error carried by a StatusErr frame, or nil.
func (f *Frame) Err() error {
	if f.Status == StatusOK {
		return nil
	}
	return &RemoteError{Msg: string(f.Payload)}
}

// RemoteError is a failure reported by the peer through a StatusErr
// frame. It is a clean protocol-level outcome — the connection is
// still usable — so clients must not treat it as transient.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// WriteHello writes the 6-byte handshake: magic, version, flags.
func WriteHello(w io.Writer) error {
	var b [HelloSize]byte
	binary.BigEndian.PutUint32(b[0:], Magic)
	b[4] = Version
	b[5] = 0 // flags, reserved
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("wire: write hello: %w", err)
	}
	return nil
}

// ReadHello reads and validates the peer's handshake, returning the
// peer's protocol version.
func ReadHello(r io.Reader) (uint8, error) {
	var b [HelloSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("wire: read hello: %w", err)
	}
	if binary.BigEndian.Uint32(b[0:]) != Magic {
		return 0, ErrBadMagic
	}
	return b[4], nil
}

// Handshake performs one side of the hello exchange: write ours, read
// theirs, and require an exact version match.
func Handshake(rw io.ReadWriter) error {
	if err := WriteHello(rw); err != nil {
		return err
	}
	v, err := ReadHello(rw)
	if err != nil {
		return err
	}
	if v != Version {
		return fmt.Errorf("wire: protocol version mismatch: peer %d, ours %d", v, Version)
	}
	return nil
}

// WriteFrame writes f as header + payload. The header and payload are
// written separately; both sides buffer their connections, so this
// does not translate into small packets.
func WriteFrame(w io.Writer, f *Frame) error {
	if uint64(len(f.Payload)) > math.MaxUint32 {
		return fmt.Errorf("%w: %d bytes cannot be framed", ErrPayloadTooLarge, len(f.Payload))
	}
	var hdr [HeaderSize]byte
	hdr[0] = f.Type
	hdr[1] = f.Status
	binary.BigEndian.PutUint32(hdr[2:], f.Lineage)
	binary.BigEndian.PutUint32(hdr[6:], f.Ckpt)
	binary.BigEndian.PutUint32(hdr[10:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("wire: write frame payload: %w", err)
		}
	}
	return nil
}

// initialPayloadCap bounds the upfront payload allocation of
// ReadFrame: anything larger is grown only as bytes actually arrive,
// so a lying length field below maxPayload still cannot demand a
// large allocation for data that never shows up.
const initialPayloadCap = 64 << 10

// ReadFrame reads one frame, rejecting payloads larger than maxPayload
// (0 selects DefaultMaxPayload) before allocating anything. The
// payload buffer starts small and grows as bytes arrive, so the
// declared length is never trusted for the allocation.
func ReadFrame(r io.Reader, maxPayload uint32) (*Frame, error) {
	if maxPayload == 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	f := &Frame{
		Type:    hdr[0],
		Status:  hdr[1],
		Lineage: binary.BigEndian.Uint32(hdr[2:]),
		Ckpt:    binary.BigEndian.Uint32(hdr[6:]),
	}
	n := binary.BigEndian.Uint32(hdr[10:])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, n, maxPayload)
	}
	if n > 0 {
		total := int(n)
		f.Payload = make([]byte, min(total, initialPayloadCap))
		filled := 0
		for {
			m, err := io.ReadFull(r, f.Payload[filled:])
			filled += m
			if err != nil {
				if err == io.EOF {
					// The header promised payload bytes: EOF here is
					// a truncated frame, not a clean end of stream.
					err = io.ErrUnexpectedEOF
				}
				return nil, fmt.Errorf("wire: read frame payload: %w", err)
			}
			if filled == total {
				break
			}
			next := make([]byte, min(total, 2*filled))
			copy(next, f.Payload)
			f.Payload = next
		}
	}
	return f, nil
}

// LineageInfo is one entry of the TList response.
type LineageInfo struct {
	Name  string
	Len   uint32 // number of stored checkpoints
	Bytes uint64 // total stored diff bytes
}

// EncodeList serializes a TList response payload. It fails rather
// than truncate a count or name length that does not fit the format.
func EncodeList(infos []LineageInfo) ([]byte, error) {
	if uint64(len(infos)) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: %d lineages exceed the list format limit", len(infos))
	}
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(infos)))
	for _, in := range infos {
		if len(in.Name) > math.MaxUint16 {
			return nil, fmt.Errorf("wire: lineage name of %d bytes exceeds the list format limit", len(in.Name))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(in.Name)))
		buf = append(buf, in.Name...)
		buf = binary.BigEndian.AppendUint32(buf, in.Len)
		buf = binary.BigEndian.AppendUint64(buf, in.Bytes)
	}
	return buf, nil
}

// DecodeList parses a TList response payload.
func DecodeList(b []byte) ([]LineageInfo, error) {
	if len(b) < 4 {
		return nil, errors.New("wire: truncated lineage list")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	// The smallest entry is 14 bytes, so the payload bounds the entry
	// count — never allocate on the declared count alone.
	infos := make([]LineageInfo, 0, min(int(n), len(b)/14))
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, errors.New("wire: truncated lineage entry")
		}
		nameLen := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < nameLen+12 {
			return nil, errors.New("wire: truncated lineage entry")
		}
		infos = append(infos, LineageInfo{
			Name:  string(b[:nameLen]),
			Len:   binary.BigEndian.Uint32(b[nameLen:]),
			Bytes: binary.BigEndian.Uint64(b[nameLen+4:]),
		})
		b = b[nameLen+12:]
	}
	if len(b) != 0 {
		return nil, errors.New("wire: trailing bytes after lineage list")
	}
	return infos, nil
}

// Stats is the TStats response: the server's atomic counters.
type Stats struct {
	// Requests counts frames the server accepted as requests
	// (including the TStats request that reported them).
	Requests uint64
	// BytesIn / BytesOut count frame bytes (header + payload) received
	// from and sent to clients, hellos included.
	BytesIn, BytesOut uint64
	// ActiveConns is the number of connections currently being served.
	ActiveConns uint64
	// Conns counts connections accepted over the server's lifetime.
	Conns uint64
	// Lineages is the number of opened lineages.
	Lineages uint64
}

const statsSize = 6 * 8

// Encode serializes the stats counters.
func (s *Stats) Encode() []byte {
	buf := make([]byte, 0, statsSize)
	for _, v := range [...]uint64{s.Requests, s.BytesIn, s.BytesOut, s.ActiveConns, s.Conns, s.Lineages} {
		buf = binary.BigEndian.AppendUint64(buf, v)
	}
	return buf
}

// DecodeStats parses a TStats response payload.
func DecodeStats(b []byte) (Stats, error) {
	if len(b) != statsSize {
		return Stats{}, fmt.Errorf("wire: stats payload %d bytes, want %d", len(b), statsSize)
	}
	var s Stats
	for i, p := range [...]*uint64{&s.Requests, &s.BytesIn, &s.BytesOut, &s.ActiveConns, &s.Conns, &s.Lineages} {
		*p = binary.BigEndian.Uint64(b[8*i:])
	}
	return s, nil
}
