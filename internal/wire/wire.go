// Package wire defines the framed binary protocol spoken between the
// ckptd checkpoint server and its clients.
//
// The protocol is deliberately minimal — the shape of blox's
// WriteFrame/ReadFrame transport: a fixed-size big-endian frame header
// carrying a request type, a status byte, two 32-bit ids (lineage
// handle and checkpoint id) and the payload length, followed by the
// payload bytes. A connection starts with a 6-byte hello exchange
// (magic + protocol version + flags) in both directions; every frame
// read is guarded by a configurable maximum payload size so a corrupt
// or hostile peer cannot demand an unbounded allocation.
//
// Request/response pairing is strictly sequential per connection: the
// client writes one request frame and reads exactly one response frame
// (Status reports success or failure; error responses carry the
// message in the payload). This keeps the server loop trivial and
// makes the client's retry-on-transient-error logic safe: a broken
// connection can always be replayed by re-sending the request on a
// fresh connection. The single exception is a v5 subscription: an
// accepted TSubscribe switches the connection into a server-pushed
// tail stream of TTail frames (see subscribe.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"os"
	"time"
)

// Protocol constants.
const (
	// Magic opens every hello ("CKPD" big-endian).
	Magic uint32 = 0x434b5044
	// Version is the protocol version negotiated by the hello
	// exchange. Peers with different versions refuse the connection.
	//
	// Version history:
	//
	//	1: open/push/pull/list/stats.
	//	2: lineage lifecycle — COMPACT and POLICY requests, the
	//	   StatusUnsupported status byte, a baseline field in TOpen
	//	   responses and list entries, and compaction counters in
	//	   stats. The list and stats payload layouts changed shape,
	//	   hence the incompatible bump.
	//	3: durability — TPush payloads carry a CRC32C (Castagnoli)
	//	   prefix over the encoded diff, turning replayed pushes into
	//	   an idempotent content-hash precondition; the StatusBusy
	//	   status byte with a retry-after hint for load shedding; a
	//	   busy-reject counter in stats. The push and stats payload
	//	   layouts changed shape, hence the incompatible bump.
	//	4: raw wire speed — the TPushStream request (windowed
	//	   pipelined pushes with per-frame StreamAck responses keyed
	//	   by checkpoint id), the StatusUnknownHandle status byte
	//	   (handle-epoch invalidation a pooled client can recover
	//	   from), and min-version hello negotiation: each peer sends
	//	   the highest version it speaks and both sides settle on the
	//	   minimum, so a v4 client falls back to v3 request/response
	//	   against a v3 server instead of refusing the connection.
	//	5: live replication — the TSubscribe request (lineage + resume
	//	   cursor) switches a connection into a server-pushed tail
	//	   stream of TTail diff frames, and TResync carries the
	//	   barrier a subscriber receives when its cursor cannot be
	//	   honored (compaction fold moved the baseline, a slow
	//	   follower was shed, the server is shutting down). Only new
	//	   frame types were added — every v4 payload layout is
	//	   untouched — so a v5 client against a v4 server negotiates
	//	   down and falls back to poll-based tailing.
	//	6: anti-entropy — the TDigest request exchanges compact
	//	   per-lineage divergence digests (base, length, compaction
	//	   generation, rolling CRC32C over per-diff content checksums,
	//	   murmur3-128 merkle root) and, in detail mode, per-diff CRC
	//	   lists over a bounded span so a reconciler can bisect to the
	//	   diverging checkpoints. Stats grew six trailing counters
	//	   (quarantine gauge + anti-entropy totals); DecodeStats still
	//	   accepts the v5 120-byte layout, so mixed-version clusters
	//	   read each other's STATS. Only a new frame type and trailing
	//	   stats fields were added — a v6 reconciler against a v5 peer
	//	   gets StatusUnsupported and degrades to doing nothing.
	Version uint8 = 6
	// MinVersion is the oldest protocol version this build still
	// speaks. A peer advertising anything older is refused.
	MinVersion uint8 = 3
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 14
	// HelloSize is the handshake message length in bytes.
	HelloSize = 6
	// DefaultMaxPayload bounds a frame payload unless overridden: 256
	// MiB comfortably holds any realistic encoded diff while keeping a
	// lying length field from demanding gigabytes.
	DefaultMaxPayload = 256 << 20
)

// Frame types (requests and their responses share the type byte).
const (
	// TOpen resolves a lineage name (payload) to a numeric handle; the
	// response carries the handle in Lineage and the current number of
	// stored checkpoints in Ckpt.
	TOpen uint8 = iota + 1
	// TPush appends one encoded diff (payload) as checkpoint Ckpt of
	// lineage Lineage; the response's Ckpt is the new length.
	TPush
	// TPull fetches the encoded diff of checkpoint Ckpt of lineage
	// Lineage into the response payload.
	TPull
	// TList returns the server's lineage directory (EncodeList).
	TList
	// TStats returns the server's counters (Stats.Encode).
	TStats
	// TCompact folds lineage Lineage up to baseline Ckpt (CompactAuto
	// lets the server's retention policy pick the target); the
	// response carries the new baseline in Ckpt and a CompactResult
	// payload.
	TCompact
	// TPolicy sets the retention policy of lineage Lineage to the
	// payload string (empty payload = query only); the response
	// carries the current policy in the payload and the baseline in
	// Ckpt.
	TPolicy
	// TPushStream (v4) is the pipelined form of TPush: the client
	// keeps a window of TPushStream frames in flight without waiting
	// for responses, and the server answers each with a StreamAck
	// payload echoing the checkpoint id in both the header Ckpt field
	// and the payload, so acknowledgements can be matched in any
	// order. A failed frame produces an error-status ack (StatusErr,
	// StatusBusy or StatusUnknownHandle) on the same connection — one
	// bad diff never tears the stream.
	TPushStream
	// TSubscribe (v5) asks the server to push every future diff of
	// lineage Lineage to this connection. The payload is a resume
	// cursor (EncodeSubscribe): the subscriber's view of the baseline,
	// the next checkpoint id it needs, and the CRC32C of the last diff
	// it holds. An accepted subscription answers with a TSubscribe/
	// StatusOK frame (SubscribeAck payload) and the connection leaves
	// request/response mode: from then on the server pushes TTail
	// frames until either side closes or a TResync barrier ends the
	// stream. A rejected cursor answers with a TResync frame and the
	// connection STAYS in request mode, so the subscriber can pull the
	// authoritative span over the same connection and re-subscribe.
	TSubscribe
	// TTail (v5) is one server-pushed diff on a subscribed
	// connection: header Ckpt is the absolute checkpoint id and the
	// payload uses the TPush layout (CRC32C prefix + encoded diff).
	TTail
	// TResync (v5) tells a subscriber its cursor is not continuable;
	// the payload (EncodeResync) carries the reason and the
	// authoritative [base, len) span to re-sync from. As a response to
	// TSubscribe it keeps the connection in request mode; pushed
	// mid-stream it is a terminal barrier — the server closes the
	// connection after sending it.
	TResync
	// TDigest (v6) asks for a divergence digest of lineage Lineage.
	// The request payload (EncodeDigestReq) names a checkpoint span
	// and whether per-diff detail is wanted; the response carries a
	// DigestResp — the lineage's manifest coordinates (base, length,
	// compaction generation) plus a rolling CRC32C and murmur3-128
	// merkle root over the requested span's per-diff content
	// checksums, and, when detail was requested, the per-diff CRC
	// list itself. The anti-entropy reconciler compares summaries and
	// bisects with detail requests; the connection stays in
	// request/response mode throughout.
	TDigest
	// TErr is an unsolicited server error (e.g. connection limit
	// reached), sent without a matching request.
	TErr uint8 = 0xFF
)

// CompactAuto, as the Ckpt field of a TCompact request, asks the
// server to pick the compaction target from the lineage's retention
// policy instead of an explicit index.
const CompactAuto uint32 = math.MaxUint32

// Status bytes.
const (
	// StatusOK marks a successful response.
	StatusOK uint8 = 0
	// StatusErr marks a failed response; the payload holds the error
	// message.
	StatusErr uint8 = 1
	// StatusUnsupported marks a request whose type byte the server
	// does not implement — a client probing a newer operation against
	// an older server gets a typed error (ErrUnsupported) instead of a
	// torn connection.
	StatusUnsupported uint8 = 2
	// StatusBusy marks a request the server shed under load (connection
	// limit or per-lineage queue saturation). The payload carries a
	// retry-after hint (EncodeRetryAfter); the request was NOT executed,
	// so replaying it after backing off is always safe.
	StatusBusy uint8 = 3
	// StatusUnknownHandle (v4) marks a request whose Lineage handle
	// the server does not recognize — the handle epoch changed
	// underneath the client (server restart, pool reconnect). The
	// request was not executed; re-resolving the lineage name with
	// TOpen and replaying is always safe.
	StatusUnknownHandle uint8 = 4
)

// Errors.
var (
	// ErrBadMagic reports a hello that does not start with Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrPayloadTooLarge reports a frame whose declared payload
	// exceeds the reader's limit.
	ErrPayloadTooLarge = errors.New("wire: payload exceeds frame limit")
	// ErrUnsupported matches (via errors.Is) a RemoteError carried by
	// a StatusUnsupported response: the peer answered cleanly but does
	// not implement the request.
	ErrUnsupported = errors.New("wire: unsupported request")
	// ErrBusy matches (via errors.Is) a RemoteError carried by a
	// StatusBusy response: the peer shed the request under load. It is
	// the one RemoteError a client should retry, after honoring the
	// RetryAfter hint.
	ErrBusy = errors.New("wire: server busy")
	// ErrChecksum reports a TPush payload whose CRC32C prefix does not
	// match the encoded diff that follows it.
	ErrChecksum = errors.New("wire: push payload checksum mismatch")
	// ErrUnknownHandle matches (via errors.Is) a RemoteError carried by
	// a StatusUnknownHandle response: the lineage handle the request
	// named is from a stale epoch. The request was not executed; the
	// client recovers by dropping its cached handle, re-opening the
	// lineage by name and replaying.
	ErrUnknownHandle = errors.New("wire: unknown lineage handle")
)

// Frame is one protocol message in either direction.
type Frame struct {
	Type    uint8
	Status  uint8
	Lineage uint32 // lineage handle (TPush/TPull) or assigned handle (TOpen response)
	Ckpt    uint32 // checkpoint id or lineage length, per Type
	Payload []byte
}

// WireSize returns the number of bytes the frame occupies on the wire.
func (f *Frame) WireSize() int64 { return HeaderSize + int64(len(f.Payload)) }

// Err returns the error carried by a non-OK frame, or nil.
func (f *Frame) Err() error {
	if f.Status == StatusOK {
		return nil
	}
	if f.Status == StatusBusy {
		hint, _ := DecodeRetryAfter(f.Payload)
		return &RemoteError{Msg: "server busy", Busy: true, RetryAfter: hint}
	}
	return &RemoteError{
		Msg:           string(f.Payload),
		Unsupported:   f.Status == StatusUnsupported,
		UnknownHandle: f.Status == StatusUnknownHandle,
	}
}

// RemoteError is a failure reported by the peer through a StatusErr,
// StatusUnsupported or StatusBusy frame. It is a clean protocol-level
// outcome — the connection is still usable — so clients must not treat
// it as transient, with one exception: a Busy rejection was shed
// before execution and should be replayed after RetryAfter.
type RemoteError struct {
	Msg string
	// Unsupported marks a StatusUnsupported response: the peer does
	// not implement the request type. errors.Is(err, ErrUnsupported)
	// reports it.
	Unsupported bool
	// Busy marks a StatusBusy response: the peer shed the request
	// under load without executing it. errors.Is(err, ErrBusy)
	// reports it; RetryAfter carries the peer's backoff hint.
	Busy       bool
	RetryAfter time.Duration
	// UnknownHandle marks a StatusUnknownHandle response: the lineage
	// handle belongs to a stale epoch and the request was not executed.
	// errors.Is(err, ErrUnknownHandle) reports it.
	UnknownHandle bool
}

func (e *RemoteError) Error() string { return "remote: " + e.Msg }

// Is lets errors.Is match an unsupported-operation, busy or
// unknown-handle RemoteError against its sentinel.
func (e *RemoteError) Is(target error) bool {
	return (target == ErrUnsupported && e.Unsupported) ||
		(target == ErrBusy && e.Busy) ||
		(target == ErrUnknownHandle && e.UnknownHandle)
}

// EncodeRetryAfter serializes a StatusBusy retry-after hint as a
// 4-byte big-endian millisecond count (clamped to the uint32 range).
func EncodeRetryAfter(d time.Duration) []byte {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > math.MaxUint32 {
		ms = math.MaxUint32
	}
	return binary.BigEndian.AppendUint32(nil, uint32(ms))
}

// DecodeRetryAfter parses a StatusBusy payload. A malformed or empty
// payload decodes as a zero hint rather than an error: the rejection
// itself is the signal, the hint is advisory.
func DecodeRetryAfter(b []byte) (time.Duration, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("wire: retry-after payload %d bytes, want 4", len(b))
	}
	return time.Duration(binary.BigEndian.Uint32(b)) * time.Millisecond, nil
}

// Transient reports whether err warrants replaying the request on a
// fresh (or, for a busy rejection, the same) connection. It is the
// single classification point for every error that crosses the
// client/server wire boundary — the ckptlint `retryable` check keeps
// ad-hoc Timeout()/io.EOF tests from growing back elsewhere.
//
// Transient: deadline expiries and every net.Error timeout, torn
// connections (EOF, unexpected EOF, ECONNRESET, EPIPE), refused or
// unreachable dials (the peer may be restarting), and StatusBusy
// rejections. Terminal: every other RemoteError (the server executed
// or rejected the request — replaying would duplicate work or fail
// identically), protocol violations (bad magic, oversized frames,
// checksum mismatches) and operations on a connection this process
// already closed (net.ErrClosed: retrying a deliberate Close is a
// bug, not a network fault).
//
// Unknown errors default to transient: the v3 PUSH content-hash
// precondition makes replays idempotent, so the cost of a wasted
// retry is bounded while the cost of giving up on a recoverable
// fault is a failed checkpoint.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Busy
	}
	if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrPayloadTooLarge) || errors.Is(err, ErrChecksum) {
		return false
	}
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	// Everything else — net.Error timeouts, os.ErrDeadlineExceeded,
	// EOF/ErrUnexpectedEOF, ECONNRESET/EPIPE/ECONNREFUSED, and errors
	// this function has never seen — is transient.
	return true
}

// IsClean reports whether err is a clean connection shutdown — the
// peer finished and closed (EOF) or this process closed the
// connection itself (net.ErrClosed). Servers use it to keep routine
// disconnects out of the error log; it never justifies a retry.
func IsClean(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed)
}

// Timeout reports whether err is a read/write deadline expiry. A
// subscriber tailing a stream reads with short deadlines so it can
// notice cancellation between frames; an expired deadline with no
// bytes consumed is an idle tick, not a transport fault. Like
// Transient and IsClean this is the single classification point — the
// ckptlint retryable check keeps callers from matching
// os.ErrDeadlineExceeded themselves.
func Timeout(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded)
}

// WriteHello writes the 6-byte handshake advertising Version (the
// highest protocol this build speaks): magic, version, flags.
func WriteHello(w io.Writer) error {
	return WriteHelloVersion(w, Version)
}

// WriteHelloVersion writes the 6-byte handshake advertising an
// explicit protocol version — a server pinned to an older protocol
// (for interop tests or staged rollouts) advertises that instead of
// Version.
func WriteHelloVersion(w io.Writer, version uint8) error {
	var b [HelloSize]byte
	binary.BigEndian.PutUint32(b[0:], Magic)
	b[4] = version
	b[5] = 0 // flags, reserved
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("wire: write hello: %w", err)
	}
	return nil
}

// ReadHello reads and validates the peer's handshake, returning the
// peer's protocol version.
func ReadHello(r io.Reader) (uint8, error) {
	var b [HelloSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("wire: read hello: %w", err)
	}
	if binary.BigEndian.Uint32(b[0:]) != Magic {
		return 0, ErrBadMagic
	}
	return b[4], nil
}

// Handshake performs one side of the hello exchange: write our
// highest version, read theirs, and settle on the minimum of the two.
// It returns the effective version both sides will speak, or an error
// if the peer's protocol is older than MinVersion (each side checks
// the same floor, so a refused handshake is symmetric).
func Handshake(rw io.ReadWriter) (uint8, error) {
	return HandshakeVersion(rw, Version)
}

// HandshakeVersion is Handshake advertising an explicit highest
// version instead of Version. Pinning below MinVersion is a caller
// bug and fails before any bytes are written.
func HandshakeVersion(rw io.ReadWriter, version uint8) (uint8, error) {
	if version < MinVersion {
		return 0, fmt.Errorf("wire: cannot advertise protocol %d below the supported floor %d", version, MinVersion)
	}
	if err := WriteHelloVersion(rw, version); err != nil {
		return 0, err
	}
	theirs, err := ReadHello(rw)
	if err != nil {
		return 0, err
	}
	if theirs < MinVersion {
		return 0, fmt.Errorf("wire: protocol version mismatch: peer %d, ours %d (oldest supported %d)",
			theirs, version, MinVersion)
	}
	if theirs < version {
		return theirs, nil
	}
	return version, nil
}

// WriteFrame writes f as header + payload. The header and payload are
// written separately; both sides buffer their connections, so this
// does not translate into small packets.
func WriteFrame(w io.Writer, f *Frame) error {
	if uint64(len(f.Payload)) > math.MaxUint32 {
		return fmt.Errorf("%w: %d bytes cannot be framed", ErrPayloadTooLarge, len(f.Payload))
	}
	var hdr [HeaderSize]byte
	hdr[0] = f.Type
	hdr[1] = f.Status
	binary.BigEndian.PutUint32(hdr[2:], f.Lineage)
	binary.BigEndian.PutUint32(hdr[6:], f.Ckpt)
	binary.BigEndian.PutUint32(hdr[10:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("wire: write frame payload: %w", err)
		}
	}
	return nil
}

// AppendFrameHeader appends the 14-byte frame header for a payload of
// payloadLen bytes to buf and returns the extended slice. It is the
// zero-copy counterpart of WriteFrame's header block: the caller
// stages the header (and any payload prefix) in a reused buffer and
// ships the payload segments themselves by reference through
// WriteFrameVec, so large diff bytes are never copied between their
// producer and the socket.
func AppendFrameHeader(buf []byte, typ, status uint8, lineage, ckpt uint32, payloadLen int) ([]byte, error) {
	if payloadLen < 0 || uint64(payloadLen) > math.MaxUint32 {
		return buf, fmt.Errorf("%w: %d bytes cannot be framed", ErrPayloadTooLarge, payloadLen)
	}
	buf = append(buf, typ, status)
	buf = binary.BigEndian.AppendUint32(buf, lineage)
	buf = binary.BigEndian.AppendUint32(buf, ckpt)
	buf = binary.BigEndian.AppendUint32(buf, uint32(payloadLen))
	return buf, nil
}

// WriteFrameVec writes one or more pre-assembled frames as a single
// scatter/gather operation. On a *net.TCPConn, net.Buffers.WriteTo
// lowers to writev(2), so the segments — typically a staged
// [header|checksum|diff prefix] buffer followed by bitmap and data
// slices referenced straight out of the encoder — reach the socket
// without ever being copied into one contiguous payload.
//
// WriteTo consumes vec: on return (success or failure) the slice
// header and its entries have been advanced past whatever was
// written. Callers reusing a persistent vec must re-append segments
// for the next frame rather than re-slicing the old ones.
func WriteFrameVec(w io.Writer, vec *net.Buffers) error {
	if _, err := vec.WriteTo(w); err != nil {
		return fmt.Errorf("wire: writev frame: %w", err)
	}
	return nil
}

// initialPayloadCap bounds the upfront payload allocation of
// ReadFrame: anything larger is grown only as bytes actually arrive,
// so a lying length field below maxPayload still cannot demand a
// large allocation for data that never shows up.
const initialPayloadCap = 64 << 10

// ReadFrame reads one frame, rejecting payloads larger than maxPayload
// (0 selects DefaultMaxPayload) before allocating anything. The
// payload buffer starts small and grows as bytes arrive, so the
// declared length is never trusted for the allocation.
func ReadFrame(r io.Reader, maxPayload uint32) (*Frame, error) {
	f := new(Frame)
	var scratch []byte
	if err := ReadFrameInto(r, maxPayload, f, &scratch); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFrameInto reads one frame into f, reusing *scratch as the
// payload buffer. It is the allocation-free form of ReadFrame for hot
// receive loops (streaming acks, pooled connections): once *scratch
// has grown to the connection's steady-state payload size, subsequent
// calls allocate nothing. f.Payload aliases *scratch and is only
// valid until the next call with the same scratch.
//
// The same untrusted-length discipline as ReadFrame applies: a
// declared length is capped by maxPayload (0 selects
// DefaultMaxPayload) before any growth, and the buffer grows only as
// bytes actually arrive.
func ReadFrameInto(r io.Reader, maxPayload uint32, f *Frame, scratch *[]byte) error {
	if maxPayload == 0 {
		maxPayload = DefaultMaxPayload
	}
	// The header is staged in the scratch buffer too: a stack array
	// would escape through the io.Reader interface call and cost one
	// allocation per frame. The parsed fields are extracted before the
	// payload read reuses the same bytes.
	buf := *scratch
	if cap(buf) < HeaderSize {
		buf = make([]byte, HeaderSize)
	}
	hdr := buf[:HeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		*scratch = buf
		return err
	}
	f.Type = hdr[0]
	f.Status = hdr[1]
	f.Lineage = binary.BigEndian.Uint32(hdr[2:])
	f.Ckpt = binary.BigEndian.Uint32(hdr[6:])
	f.Payload = nil
	n := binary.BigEndian.Uint32(hdr[10:])
	*scratch = buf
	if n > maxPayload {
		return fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, n, maxPayload)
	}
	if n == 0 {
		return nil
	}
	total := int(n)
	if cap(buf) < min(total, initialPayloadCap) {
		buf = make([]byte, min(total, initialPayloadCap))
	} else {
		buf = buf[:min(total, cap(buf))]
	}
	filled := 0
	for {
		m, err := io.ReadFull(r, buf[filled:])
		filled += m
		if err != nil {
			if err == io.EOF {
				// The header promised payload bytes: EOF here is
				// a truncated frame, not a clean end of stream.
				err = io.ErrUnexpectedEOF
			}
			*scratch = buf
			return fmt.Errorf("wire: read frame payload: %w", err)
		}
		if filled == total {
			break
		}
		next := make([]byte, min(total, 2*filled))
		copy(next, buf)
		buf = next
	}
	*scratch = buf
	f.Payload = buf[:total]
	return nil
}

// PushChecksumSize is the length of the CRC32C prefix a v3 TPush
// payload carries ahead of the encoded diff bytes.
const PushChecksumSize = 4

// castagnoli is the CRC32C polynomial table shared by the push
// precondition and the FileStore's on-disk diff footers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C (Castagnoli) checksum of b — the
// content hash of the v3 push precondition.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ChecksumAdd extends a running CRC32C with b, so a checksum over
// scattered payload segments can be computed without first gathering
// them into one buffer: ChecksumAdd(ChecksumAdd(0, a), b) equals
// Checksum(append(a, b...)), and ChecksumAdd(0, b) equals Checksum(b).
func ChecksumAdd(sum uint32, b []byte) uint32 { return crc32.Update(sum, castagnoli, b) }

// EncodePush builds a v3 TPush payload: a big-endian CRC32C of the
// encoded diff, then the diff bytes themselves. The server verifies
// the prefix on arrival and, when the pushed checkpoint id is already
// stored, compares it against the stored bytes' checksum — an
// identical replay (a retry whose original response was lost) succeeds
// idempotently, a conflicting write is rejected.
func EncodePush(encoded []byte) []byte {
	buf := make([]byte, PushChecksumSize+len(encoded))
	binary.BigEndian.PutUint32(buf, Checksum(encoded))
	copy(buf[PushChecksumSize:], encoded)
	return buf
}

// DecodePush splits a v3 TPush payload into its checksum and encoded
// diff, verifying the prefix against the bytes that follow it.
func DecodePush(payload []byte) (crc uint32, encoded []byte, err error) {
	if len(payload) < PushChecksumSize {
		return 0, nil, fmt.Errorf("wire: push payload %d bytes, want at least %d", len(payload), PushChecksumSize)
	}
	crc = binary.BigEndian.Uint32(payload)
	encoded = payload[PushChecksumSize:]
	if Checksum(encoded) != crc {
		return 0, nil, fmt.Errorf("%w: declared %08x, computed %08x", ErrChecksum, crc, Checksum(encoded))
	}
	return crc, encoded, nil
}

// StreamAck is the response payload of one TPushStream frame. The
// frame header's Ckpt field echoes the acknowledged checkpoint id; the
// payload repeats it so an ack pulled out of a window of in-flight
// frames is self-describing even when the header is all the client
// kept. Status rides in the frame header exactly as for TPush — an
// error ack carries the message here instead of as a bare StatusErr
// payload, so the stream stays framed.
type StreamAck struct {
	// Ckpt is the checkpoint id this ack settles (== header Ckpt).
	Ckpt uint32
	// NewLen is the lineage length after a successful append; for an
	// idempotent replay hit it is the unchanged length. Zero on error.
	NewLen uint32
	// RetryAfterMs carries the backoff hint of a StatusBusy ack in
	// milliseconds; zero otherwise.
	RetryAfterMs uint32
	// Msg is the error message of a non-OK ack; empty on success.
	Msg string
}

// streamAckFixed is the fixed-size prefix of a StreamAck payload:
// ckpt, new length, retry-after, and the 2-byte message length.
const streamAckFixed = 4 + 4 + 4 + 2

// AppendStreamAck appends the encoded ack to buf and returns the
// extended slice, so a per-connection staging buffer can carry ack
// after ack without reallocating. It fails rather than truncate a
// message that does not fit the 2-byte length field.
func AppendStreamAck(buf []byte, a *StreamAck) ([]byte, error) {
	if len(a.Msg) > math.MaxUint16 {
		return buf, fmt.Errorf("wire: stream ack message of %d bytes exceeds the format limit", len(a.Msg))
	}
	buf = binary.BigEndian.AppendUint32(buf, a.Ckpt)
	buf = binary.BigEndian.AppendUint32(buf, a.NewLen)
	buf = binary.BigEndian.AppendUint32(buf, a.RetryAfterMs)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Msg)))
	buf = append(buf, a.Msg...)
	return buf, nil
}

// DecodeStreamAck parses a TPushStream response payload.
func DecodeStreamAck(b []byte) (StreamAck, error) {
	if len(b) < streamAckFixed {
		return StreamAck{}, fmt.Errorf("wire: stream ack payload %d bytes, want at least %d", len(b), streamAckFixed)
	}
	a := StreamAck{
		Ckpt:         binary.BigEndian.Uint32(b[0:]),
		NewLen:       binary.BigEndian.Uint32(b[4:]),
		RetryAfterMs: binary.BigEndian.Uint32(b[8:]),
	}
	msgLen := int(binary.BigEndian.Uint16(b[12:]))
	if len(b) != streamAckFixed+msgLen {
		return StreamAck{}, fmt.Errorf("wire: stream ack payload %d bytes, want %d", len(b), streamAckFixed+msgLen)
	}
	a.Msg = string(b[streamAckFixed:])
	return a, nil
}

// Err maps a stream ack received under the given frame status to the
// same typed errors a TPush response would produce: nil for StatusOK,
// a RemoteError (busy / unsupported / unknown-handle flags set from
// the status, RetryAfter from the hint) otherwise.
func (a *StreamAck) Err(status uint8) error {
	if status == StatusOK {
		return nil
	}
	msg := a.Msg
	if msg == "" && status == StatusBusy {
		msg = "server busy"
	}
	return &RemoteError{
		Msg:           msg,
		Unsupported:   status == StatusUnsupported,
		Busy:          status == StatusBusy,
		RetryAfter:    time.Duration(a.RetryAfterMs) * time.Millisecond,
		UnknownHandle: status == StatusUnknownHandle,
	}
}

// StreamFrameError reports the failure of one frame inside a push
// stream: the surrounding stream (and the checkpoints acked around
// it) completed or failed independently. Unwrap exposes the
// underlying typed error, so errors.Is(err, ErrBusy) and friends see
// through it.
type StreamFrameError struct {
	// Ckpt is the checkpoint id of the failed frame.
	Ckpt uint32
	// Err is the per-frame failure — usually a RemoteError decoded
	// from an error-status ack.
	Err error
}

func (e *StreamFrameError) Error() string {
	return fmt.Sprintf("wire: stream push of checkpoint %d: %v", e.Ckpt, e.Err)
}

func (e *StreamFrameError) Unwrap() error { return e.Err }

// LineageInfo is one entry of the TList response.
type LineageInfo struct {
	Name  string
	Len   uint32 // one past the highest stored checkpoint index
	Base  uint32 // baseline index; stored diffs span [Base, Len)
	Bytes uint64 // total stored diff bytes
}

// EncodeList serializes a TList response payload. It fails rather
// than truncate a count or name length that does not fit the format.
func EncodeList(infos []LineageInfo) ([]byte, error) {
	if uint64(len(infos)) > math.MaxUint32 {
		return nil, fmt.Errorf("wire: %d lineages exceed the list format limit", len(infos))
	}
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(infos)))
	for _, in := range infos {
		if len(in.Name) > math.MaxUint16 {
			return nil, fmt.Errorf("wire: lineage name of %d bytes exceeds the list format limit", len(in.Name))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(in.Name)))
		buf = append(buf, in.Name...)
		buf = binary.BigEndian.AppendUint32(buf, in.Len)
		buf = binary.BigEndian.AppendUint32(buf, in.Base)
		buf = binary.BigEndian.AppendUint64(buf, in.Bytes)
	}
	return buf, nil
}

// DecodeList parses a TList response payload.
func DecodeList(b []byte) ([]LineageInfo, error) {
	if len(b) < 4 {
		return nil, errors.New("wire: truncated lineage list")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	// The smallest entry is 18 bytes, so the payload bounds the entry
	// count — never allocate on the declared count alone.
	infos := make([]LineageInfo, 0, min(int(n), len(b)/18))
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, errors.New("wire: truncated lineage entry")
		}
		nameLen := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < nameLen+16 {
			return nil, errors.New("wire: truncated lineage entry")
		}
		in := LineageInfo{
			Name:  string(b[:nameLen]),
			Len:   binary.BigEndian.Uint32(b[nameLen:]),
			Base:  binary.BigEndian.Uint32(b[nameLen+4:]),
			Bytes: binary.BigEndian.Uint64(b[nameLen+8:]),
		}
		if in.Base > in.Len {
			return nil, fmt.Errorf("wire: lineage %q baseline %d beyond length %d", in.Name, in.Base, in.Len)
		}
		infos = append(infos, in)
		b = b[nameLen+16:]
	}
	if len(b) != 0 {
		return nil, errors.New("wire: trailing bytes after lineage list")
	}
	return infos, nil
}

// EncodeOpenInfo serializes the extra payload of a TOpen response: the
// lineage's baseline index (the response header's Ckpt field carries
// the length).
func EncodeOpenInfo(base uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, base)
}

// DecodeOpenInfo parses a TOpen response payload. An empty payload
// decodes as baseline 0 (a v2 server always sends one; the empty case
// keeps raw test harnesses and future slimmer responses valid).
func DecodeOpenInfo(b []byte) (uint32, error) {
	switch len(b) {
	case 0:
		return 0, nil
	case 4:
		return binary.BigEndian.Uint32(b), nil
	default:
		return 0, fmt.Errorf("wire: open info payload %d bytes, want 0 or 4", len(b))
	}
}

// CompactResult is the payload of a successful TCompact response.
type CompactResult struct {
	// OldBase and NewBase are the baseline before and after the
	// transaction; equal for a no-op.
	OldBase, NewBase uint32
	// Pruned counts deleted diff files; Rewritten counts retained
	// diffs rewritten to drop references into the folded prefix.
	Pruned, Rewritten uint32
	// FreedBytes is the net on-disk byte change (signed: a baseline
	// can cost more than a short folded prefix freed).
	FreedBytes int64
}

const compactResultSize = 4 + 4 + 4 + 4 + 8

// Encode serializes the compaction result.
func (r *CompactResult) Encode() []byte {
	buf := make([]byte, 0, compactResultSize)
	buf = binary.BigEndian.AppendUint32(buf, r.OldBase)
	buf = binary.BigEndian.AppendUint32(buf, r.NewBase)
	buf = binary.BigEndian.AppendUint32(buf, r.Pruned)
	buf = binary.BigEndian.AppendUint32(buf, r.Rewritten)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.FreedBytes))
	return buf
}

// DecodeCompactResult parses a TCompact response payload.
func DecodeCompactResult(b []byte) (CompactResult, error) {
	if len(b) != compactResultSize {
		return CompactResult{}, fmt.Errorf("wire: compact result payload %d bytes, want %d",
			len(b), compactResultSize)
	}
	r := CompactResult{
		OldBase:    binary.BigEndian.Uint32(b[0:]),
		NewBase:    binary.BigEndian.Uint32(b[4:]),
		Pruned:     binary.BigEndian.Uint32(b[8:]),
		Rewritten:  binary.BigEndian.Uint32(b[12:]),
		FreedBytes: int64(binary.BigEndian.Uint64(b[16:])),
	}
	if r.NewBase < r.OldBase {
		return CompactResult{}, fmt.Errorf("wire: compact result moves baseline backwards: %d -> %d",
			r.OldBase, r.NewBase)
	}
	return r, nil
}

// Stats is the TStats response: the server's atomic counters.
type Stats struct {
	// Requests counts frames the server accepted as requests
	// (including the TStats request that reported them).
	Requests uint64
	// BytesIn / BytesOut count frame bytes (header + payload) received
	// from and sent to clients, hellos included.
	BytesIn, BytesOut uint64
	// ActiveConns is the number of connections currently being served.
	ActiveConns uint64
	// Conns counts connections accepted over the server's lifetime.
	Conns uint64
	// Lineages is the number of opened lineages.
	Lineages uint64
	// Compactions counts committed compaction transactions that moved
	// a baseline forward (background worker and TCompact requests).
	Compactions uint64
	// CompactedDiffs counts diff files deleted by compactions.
	CompactedDiffs uint64
	// ReclaimedBytes sums the net on-disk bytes freed by compactions
	// (transactions with a negative net change contribute zero).
	ReclaimedBytes uint64
	// BusyRejects counts requests and connections shed with StatusBusy
	// (load shedding, not failures: the work was never started).
	BusyRejects uint64
	// BlocksInterned counts unique blocks written to the shared
	// content-addressed block store; BlockDedupHits counts appends
	// resolved to an already-present block.
	BlocksInterned, BlockDedupHits uint64
	// BlockBytesSaved sums the payload bytes de-duplication avoided
	// writing — the cross-lineage sharing win.
	BlockBytesSaved uint64
	// BlockGCBlocks / BlockGCBytes count blocks and payload bytes
	// reclaimed by committed block-store GC transactions.
	BlockGCBlocks, BlockGCBytes uint64
	// Quarantined (v6) is a gauge: diff files currently sitting in
	// quarantine across every open lineage — the operator's rot alarm.
	Quarantined uint64
	// DigestRounds (v6) counts completed anti-entropy digest rounds
	// (one round = one digest comparison against one peer, per
	// lineage, whether or not it found divergence).
	DigestRounds uint64
	// SpansHealed (v6) counts diffs repaired or re-installed from a
	// peer by the anti-entropy reconciler.
	SpansHealed uint64
	// BytesRefetched (v6) sums the encoded diff bytes pulled from
	// peers by anti-entropy heals.
	BytesRefetched uint64
	// HealQuarantines (v6) counts lineages the reconciler fail-stopped
	// — divergence it could not heal (both replicas rotten, content
	// conflict, repeated heal failure) — never silently ignored.
	HealQuarantines uint64
	// Degraded (v6) is a gauge: peers currently unreachable (the
	// reconciler is backing off and the cluster is running with less
	// redundancy than configured).
	Degraded uint64
}

// statsSizeV5 is the frozen 15-counter v3..v5 layout; statsSize is
// the current layout with the v6 anti-entropy trailer. DecodeStats
// accepts both so mixed-version clusters read each other's STATS.
const (
	statsSizeV5 = 15 * 8
	statsSize   = 21 * 8
)

// fields returns pointers to every counter in wire order; the first
// 15 are the frozen v5 prefix.
func (s *Stats) fields() [21]*uint64 {
	return [21]*uint64{&s.Requests, &s.BytesIn, &s.BytesOut, &s.ActiveConns, &s.Conns, &s.Lineages,
		&s.Compactions, &s.CompactedDiffs, &s.ReclaimedBytes, &s.BusyRejects,
		&s.BlocksInterned, &s.BlockDedupHits, &s.BlockBytesSaved, &s.BlockGCBlocks, &s.BlockGCBytes,
		&s.Quarantined, &s.DigestRounds, &s.SpansHealed, &s.BytesRefetched, &s.HealQuarantines, &s.Degraded}
}

// Encode serializes the stats counters.
func (s *Stats) Encode() []byte {
	buf := make([]byte, 0, statsSize)
	for _, p := range s.fields() {
		buf = binary.BigEndian.AppendUint64(buf, *p)
	}
	return buf
}

// DecodeStats parses a TStats response payload: the current layout,
// or the 120-byte v5 layout from an older server (the v6 trailer
// decodes as zero).
func DecodeStats(b []byte) (Stats, error) {
	if len(b) != statsSize && len(b) != statsSizeV5 {
		return Stats{}, fmt.Errorf("wire: stats payload %d bytes, want %d or %d", len(b), statsSize, statsSizeV5)
	}
	var s Stats
	for i, p := range s.fields() {
		if 8*i >= len(b) {
			break
		}
		*p = binary.BigEndian.Uint64(b[8*i:])
	}
	return s, nil
}
