// Wire v6 anti-entropy payloads: the digest request a reconciler
// sends with TDigest and the divergence digest a peer answers with.
//
// A digest is deliberately two-speed. The summary form is tiny (36
// bytes) and covers an arbitrary span with a rolling CRC32C and a
// murmur3-128 merkle root over per-diff CONTENT checksums — content,
// not file bytes, because the same diff stored self-contained on one
// replica and block-mapped on another has different on-disk images
// but identical canonical encodings. Matching summaries end the
// round. A mismatch bisects: the reconciler halves the span with
// further summary requests until it is small enough to ask for
// detail — the per-diff CRC list — and learns exactly which
// checkpoints diverge. DigestMaxDetail bounds the detail form so a
// lying peer cannot demand an unbounded allocation.

package wire

import (
	"encoding/binary"
	"fmt"
)

// Digest payload sizes.
const (
	// DigestReqSize is the TDigest request payload length: lo, hi
	// (absolute checkpoint ids, 4 bytes each) and a flags byte.
	DigestReqSize = 9
	// DigestRespHeader is the fixed prefix of a TDigest response:
	// base u32, len u32, generation u64, span CRC u32, merkle root
	// 16 bytes, span lo u32, span hi u32, detail count u32.
	DigestRespHeader = 4 + 4 + 8 + 4 + 16 + 4 + 4 + 4
	// DigestMaxDetail bounds the per-diff CRC list a detail response
	// may carry; requests for wider spans are answered summary-only.
	// 4096 ids keeps the largest detail payload under 16 KiB while
	// letting the bisection finish in one request for realistic
	// lineages.
	DigestMaxDetail = 4096
)

// Digest request flags.
const (
	// DigestDetail asks for the per-diff CRC list of the requested
	// span (refused for spans wider than DigestMaxDetail).
	DigestDetail uint8 = 1 << 0
)

// DigestReq is a TDigest request: digest the intersection of the
// lineage's stored span with [Lo, Hi). Lo == Hi == 0 means the whole
// stored span.
type DigestReq struct {
	Lo, Hi uint32
	Detail bool
}

// EncodeDigestReq encodes a TDigest request payload.
func EncodeDigestReq(q DigestReq) []byte {
	return AppendDigestReq(nil, q)
}

// AppendDigestReq appends the encoded request to buf and returns the
// extended slice.
func AppendDigestReq(buf []byte, q DigestReq) []byte {
	buf = binary.BigEndian.AppendUint32(buf, q.Lo)
	buf = binary.BigEndian.AppendUint32(buf, q.Hi)
	var flags uint8
	if q.Detail {
		flags |= DigestDetail
	}
	return append(buf, flags)
}

// DecodeDigestReq parses a TDigest request payload.
func DecodeDigestReq(b []byte) (DigestReq, error) {
	if len(b) != DigestReqSize {
		return DigestReq{}, fmt.Errorf("wire: digest request payload is %d bytes, want %d", len(b), DigestReqSize)
	}
	q := DigestReq{
		Lo: binary.BigEndian.Uint32(b[0:]),
		Hi: binary.BigEndian.Uint32(b[4:]),
	}
	flags := b[8]
	if flags&^DigestDetail != 0 {
		return DigestReq{}, fmt.Errorf("wire: unknown digest request flags %#x", flags)
	}
	q.Detail = flags&DigestDetail != 0
	if q.Hi < q.Lo {
		return DigestReq{}, fmt.Errorf("wire: digest request span [%d,%d) inverted", q.Lo, q.Hi)
	}
	if q.Detail && q.Hi-q.Lo > DigestMaxDetail {
		return DigestReq{}, fmt.Errorf("wire: digest detail span %d exceeds %d", q.Hi-q.Lo, DigestMaxDetail)
	}
	return q, nil
}

// DigestResp is a TDigest response: the lineage's manifest
// coordinates plus the digest of the requested span's per-diff
// content checksums. Span is the requested range clipped to [Base,
// Len); CRC and Root cover exactly the diffs in Span, in id order.
// Detail, present only when requested, holds one content CRC per
// diff of Span.
type DigestResp struct {
	// Base and Len are the lineage's committed baseline and length —
	// the span a healthy replica stores is [Base, Len).
	Base, Len uint32
	// Generation is the manifest's compaction generation. A replica
	// whose peer reports a higher generation (or baseline) must not
	// patch individual diffs: the peer folded, and convergence means
	// re-installing the peer's authoritative span.
	Generation uint64
	// CRC is the rolling CRC32C over the big-endian per-diff content
	// checksums of Span, in id order (ChecksumAdd-folded; zero for an
	// empty span).
	CRC uint32
	// Root is the murmur3-128 merkle root over the same per-diff
	// checksums (antientropy.SpanRoot; zero for an empty span).
	Root [16]byte
	// SpanLo / SpanHi echo the digested span after clipping.
	SpanLo, SpanHi uint32
	// Detail is the per-diff content CRC list for Span, id order;
	// nil unless the request set DigestDetail.
	Detail []uint32
}

// EncodeDigestResp encodes a TDigest response payload.
func EncodeDigestResp(r DigestResp) []byte {
	return AppendDigestResp(nil, r)
}

// AppendDigestResp appends the encoded response to buf and returns
// the extended slice.
func AppendDigestResp(buf []byte, r DigestResp) []byte {
	// The decoder rejects detail lists over DigestMaxDetail, so an
	// oversized list could never be accepted anyway; clamp rather than
	// emit a payload every peer must refuse.
	if len(r.Detail) > DigestMaxDetail {
		r.Detail = r.Detail[:DigestMaxDetail]
	}
	buf = binary.BigEndian.AppendUint32(buf, r.Base)
	buf = binary.BigEndian.AppendUint32(buf, r.Len)
	buf = binary.BigEndian.AppendUint64(buf, r.Generation)
	buf = binary.BigEndian.AppendUint32(buf, r.CRC)
	buf = append(buf, r.Root[:]...)
	buf = binary.BigEndian.AppendUint32(buf, r.SpanLo)
	buf = binary.BigEndian.AppendUint32(buf, r.SpanHi)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Detail)))
	for _, crc := range r.Detail {
		buf = binary.BigEndian.AppendUint32(buf, crc)
	}
	return buf
}

// DecodeDigestResp parses a TDigest response payload. Like
// DecodeList, it never allocates on the declared count alone: the
// detail slice grows only as far as the payload actually reaches.
func DecodeDigestResp(b []byte) (DigestResp, error) {
	const fixed = DigestRespHeader
	if len(b) < fixed {
		return DigestResp{}, fmt.Errorf("wire: digest response payload is %d bytes, want >= %d", len(b), fixed)
	}
	var r DigestResp
	r.Base = binary.BigEndian.Uint32(b[0:])
	r.Len = binary.BigEndian.Uint32(b[4:])
	r.Generation = binary.BigEndian.Uint64(b[8:])
	r.CRC = binary.BigEndian.Uint32(b[16:])
	copy(r.Root[:], b[20:36])
	r.SpanLo = binary.BigEndian.Uint32(b[36:])
	r.SpanHi = binary.BigEndian.Uint32(b[40:])
	n := binary.BigEndian.Uint32(b[44:])
	if r.Len < r.Base {
		return DigestResp{}, fmt.Errorf("wire: digest response len %d below base %d", r.Len, r.Base)
	}
	if r.SpanHi < r.SpanLo || r.SpanLo < r.Base || r.SpanHi > r.Len {
		return DigestResp{}, fmt.Errorf("wire: digest span [%d,%d) outside lineage [%d,%d)",
			r.SpanLo, r.SpanHi, r.Base, r.Len)
	}
	if n > DigestMaxDetail {
		return DigestResp{}, fmt.Errorf("wire: digest detail count %d exceeds %d", n, DigestMaxDetail)
	}
	if len(b) != fixed+4*int(n) {
		return DigestResp{}, fmt.Errorf("wire: digest response is %d bytes, want %d for %d detail entries",
			len(b), fixed+4*int(n), n)
	}
	if n > 0 {
		if uint32(r.SpanHi-r.SpanLo) != n {
			return DigestResp{}, fmt.Errorf("wire: digest detail count %d does not cover span [%d,%d)",
				n, r.SpanLo, r.SpanHi)
		}
		r.Detail = make([]uint32, 0, min(int(n), (len(b)-fixed)/4))
		for i := 0; i < int(n); i++ {
			r.Detail = append(r.Detail, binary.BigEndian.Uint32(b[fixed+4*i:]))
		}
	}
	return r, nil
}
