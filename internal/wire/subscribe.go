// Wire v5 subscription payloads: the resume cursor a follower sends
// with TSubscribe, the acknowledgement an accepted subscription gets
// back, and the resync barrier that ends or refuses a tail stream.
//
// The cursor is what makes shedding safe: a server may drop a slow
// subscriber at any moment, because the subscriber can always come
// back with {base, next, crc} and either resume exactly where it
// stopped (the server re-verifies continuity by hashing its stored
// copy of diff next-1) or learn via TResync that the baseline moved
// and it must re-pull the authoritative span first.

package wire

import (
	"encoding/binary"
	"fmt"
)

// Sizes of the fixed v5 payloads.
const (
	// SubscribeSize is the TSubscribe request payload length: base,
	// next and crc, each 4 bytes big-endian.
	SubscribeSize = 12
	// SubscribeAckSize is the accepted-subscription response payload
	// length: base and len, each 4 bytes big-endian.
	SubscribeAckSize = 8
	// ResyncSize is the TResync payload length: a reason byte followed
	// by base and len, each 4 bytes big-endian.
	ResyncSize = 9
)

// Resync reasons.
const (
	// ResyncFold: a compaction fold moved the lineage baseline (or the
	// cursor was otherwise not continuable — wrong base, a gap, or a
	// CRC mismatch against the stored diff). The subscriber must
	// re-pull [Base, Len) before resuming.
	ResyncFold uint8 = 1
	// ResyncLag: the subscriber's bounded queue overflowed and the
	// server shed it. Its cursor is still valid — reconnecting and
	// re-subscribing resumes from next without a re-pull.
	ResyncLag uint8 = 2
	// ResyncShutdown: the server is draining. Nothing is wrong with
	// the cursor; retry against the restarted (or promoted) peer.
	ResyncShutdown uint8 = 3
)

// Cursor is a subscriber's resume position in a lineage: the baseline
// it believes the lineage has, the next checkpoint id it needs, and
// the CRC32C (Checksum) of the encoded diff Next-1 it already holds —
// zero when Next == Base and it holds nothing. Next counts absolute
// checkpoint ids, so Base <= Next always.
type Cursor struct {
	Base uint32
	Next uint32
	CRC  uint32
}

// EncodeSubscribe encodes a TSubscribe request payload.
func EncodeSubscribe(c Cursor) []byte {
	return AppendSubscribe(nil, c)
}

// AppendSubscribe appends the encoded cursor to buf and returns the
// extended slice (zero-allocation staging, like AppendFrameHeader).
func AppendSubscribe(buf []byte, c Cursor) []byte {
	buf = binary.BigEndian.AppendUint32(buf, c.Base)
	buf = binary.BigEndian.AppendUint32(buf, c.Next)
	buf = binary.BigEndian.AppendUint32(buf, c.CRC)
	return buf
}

// DecodeSubscribe parses a TSubscribe request payload.
func DecodeSubscribe(b []byte) (Cursor, error) {
	if len(b) != SubscribeSize {
		return Cursor{}, fmt.Errorf("wire: subscribe payload is %d bytes, want %d", len(b), SubscribeSize)
	}
	c := Cursor{
		Base: binary.BigEndian.Uint32(b[0:]),
		Next: binary.BigEndian.Uint32(b[4:]),
		CRC:  binary.BigEndian.Uint32(b[8:]),
	}
	if c.Next < c.Base {
		return Cursor{}, fmt.Errorf("wire: subscribe cursor next %d below base %d", c.Next, c.Base)
	}
	return c, nil
}

// SubscribeAck is the payload of an accepted subscription response:
// the lineage's current baseline and length at acceptance time. Every
// diff in [cursor.Next, Len) is replayed from the store before live
// frames; the subscriber can use Len to report initial catch-up lag.
type SubscribeAck struct {
	Base uint32
	Len  uint32
}

// EncodeSubscribeAck encodes an accepted-subscription response
// payload.
func EncodeSubscribeAck(a SubscribeAck) []byte {
	var b [SubscribeAckSize]byte
	binary.BigEndian.PutUint32(b[0:], a.Base)
	binary.BigEndian.PutUint32(b[4:], a.Len)
	return b[:]
}

// DecodeSubscribeAck parses an accepted-subscription response payload.
func DecodeSubscribeAck(b []byte) (SubscribeAck, error) {
	if len(b) != SubscribeAckSize {
		return SubscribeAck{}, fmt.Errorf("wire: subscribe ack payload is %d bytes, want %d", len(b), SubscribeAckSize)
	}
	a := SubscribeAck{
		Base: binary.BigEndian.Uint32(b[0:]),
		Len:  binary.BigEndian.Uint32(b[4:]),
	}
	if a.Len < a.Base {
		return SubscribeAck{}, fmt.Errorf("wire: subscribe ack len %d below base %d", a.Len, a.Base)
	}
	return a, nil
}

// Resync is the payload of a TResync barrier: why the cursor is not
// continuable and the authoritative [Base, Len) span to re-sync from.
type Resync struct {
	Reason uint8
	Base   uint32
	Len    uint32
}

// EncodeResync encodes a TResync payload.
func EncodeResync(r Resync) []byte {
	return AppendResync(nil, r)
}

// AppendResync appends the encoded barrier to buf and returns the
// extended slice.
func AppendResync(buf []byte, r Resync) []byte {
	buf = append(buf, r.Reason)
	buf = binary.BigEndian.AppendUint32(buf, r.Base)
	buf = binary.BigEndian.AppendUint32(buf, r.Len)
	return buf
}

// DecodeResync parses a TResync payload.
func DecodeResync(b []byte) (Resync, error) {
	if len(b) != ResyncSize {
		return Resync{}, fmt.Errorf("wire: resync payload is %d bytes, want %d", len(b), ResyncSize)
	}
	r := Resync{
		Reason: b[0],
		Base:   binary.BigEndian.Uint32(b[1:]),
		Len:    binary.BigEndian.Uint32(b[5:]),
	}
	if r.Reason < ResyncFold || r.Reason > ResyncShutdown {
		return Resync{}, fmt.Errorf("wire: unknown resync reason %d", r.Reason)
	}
	if r.Len < r.Base {
		return Resync{}, fmt.Errorf("wire: resync len %d below base %d", r.Len, r.Base)
	}
	return r, nil
}

// ResyncReasonString names a resync reason for logs.
func ResyncReasonString(reason uint8) string {
	switch reason {
	case ResyncFold:
		return "fold"
	case ResyncLag:
		return "lag"
	case ResyncShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("reason(%d)", reason)
	}
}
