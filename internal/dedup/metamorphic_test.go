package dedup

// Metamorphic cross-checks: every method and every option combination
// must reconstruct exactly the same byte sequences from the same
// workload, and metamorphic relations between the methods' outputs
// must hold (Full is an upper bound, Tree never stores more data than
// List, etc.).

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
)

// workloadSnapshots builds a deterministic mutation workload with a
// mix of sparse writes, aligned moves and no-op checkpoints.
func workloadSnapshots(seed int64, size, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, size)
	rng.Read(buf)
	snaps := [][]byte{append([]byte(nil), buf...)}
	for k := 1; k < n; k++ {
		switch k % 4 {
		case 0: // unchanged checkpoint
		case 1: // sparse writes
			for i := 0; i < 3; i++ {
				off := rng.Intn(size - 100)
				rng.Read(buf[off : off+100])
			}
		case 2: // aligned block move (shifted duplicates)
			blk := 64 * (1 + rng.Intn(16))
			src := rng.Intn(size-blk) / 64 * 64
			dst := rng.Intn(size-blk) / 64 * 64
			copy(buf[dst:dst+blk], buf[src:src+blk])
		case 3: // write then duplicate the written block elsewhere
			blk := 256
			off := rng.Intn(size-2*blk) / 64 * 64
			rng.Read(buf[off : off+blk])
			dst := rng.Intn(size-blk) / 64 * 64
			copy(buf[dst:dst+blk], buf[off:off+blk])
		}
		snaps = append(snaps, append([]byte(nil), buf...))
	}
	return snaps
}

func TestMetamorphicAllMethodsAllOptions(t *testing.T) {
	snaps := workloadSnapshots(71, 48*1024, 8)
	size := len(snaps[0])

	optionSets := []Options{
		{ChunkSize: 64},
		{ChunkSize: 64, StreamingTransfer: true},
		{ChunkSize: 64, VerifyDuplicates: true},
		{ChunkSize: 64, AutoFallback: true},
		{ChunkSize: 64, Compressor: compress.NewCascaded()},
		{ChunkSize: 64, Compressor: compress.NewLZ4(), StreamingTransfer: true, VerifyDuplicates: true, AutoFallback: true},
		{ChunkSize: 96, SingleStage: true, PerThreadGather: true, Unfused: true},
	}

	type outcome struct {
		stored int64
		data   int64
	}
	// results[optIdx][method]
	results := make([]map[checkpoint.Method]outcome, len(optionSets))

	for oi, opts := range optionSets {
		results[oi] = map[checkpoint.Method]outcome{}
		for _, m := range checkpoint.Methods() {
			d := mustNew(t, m, size, opts)
			var sum outcome
			for k, snap := range snaps {
				_, st, err := d.Checkpoint(snap)
				if err != nil {
					t.Fatalf("opts %d %v ckpt %d: %v", oi, m, k, err)
				}
				sum.stored += st.DiffBytes
				sum.data += st.DataBytes
			}
			// Every version must restore bit-exactly under every
			// option combination.
			for k, snap := range snaps {
				got, err := d.Restore(k)
				if err != nil || !bytes.Equal(got, snap) {
					t.Fatalf("opts %d %v restore %d failed: %v", oi, m, k, err)
				}
			}
			results[oi][m] = sum
		}
	}

	// Metamorphic relations on the paper-config runs (option set 0).
	base := results[0]
	full := base[checkpoint.MethodFull]
	basic := base[checkpoint.MethodBasic]
	list := base[checkpoint.MethodList]
	tree := base[checkpoint.MethodTree]
	if !(tree.stored <= list.stored && list.stored <= full.stored) {
		t.Fatalf("stored ordering violated: tree %d, list %d, full %d",
			tree.stored, list.stored, full.stored)
	}
	if basic.stored > full.stored {
		t.Fatalf("basic %d above full %d", basic.stored, full.stored)
	}
	// Tree and List see identical leaf-level duplicates: equal data.
	if tree.data != list.data {
		t.Fatalf("tree data %d != list data %d", tree.data, list.data)
	}
	// Streaming and verification must not change stored sizes
	// (collision-free input).
	if results[1][checkpoint.MethodTree].stored != tree.stored {
		t.Fatal("streaming changed stored bytes")
	}
	if results[2][checkpoint.MethodTree].stored != tree.stored {
		t.Fatal("verification changed stored bytes")
	}
	// Compression never increases the record.
	if results[4][checkpoint.MethodTree].stored > tree.stored {
		t.Fatal("compression grew the record")
	}
}

func TestMetamorphicQuickSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(100); seed < 112; seed++ {
		snaps := workloadSnapshots(seed, 16*1024, 5)
		var prevRestored [][]byte
		for _, m := range checkpoint.Methods() {
			d := mustNew(t, m, len(snaps[0]), Options{ChunkSize: 64})
			for _, snap := range snaps {
				if _, _, err := d.Checkpoint(snap); err != nil {
					t.Fatalf("seed %d %v: %v", seed, m, err)
				}
			}
			var restored [][]byte
			for k := range snaps {
				got, err := d.Restore(k)
				if err != nil {
					t.Fatalf("seed %d %v restore %d: %v", seed, m, k, err)
				}
				restored = append(restored, got)
			}
			// All methods agree with the input and with each other.
			for k := range snaps {
				if !bytes.Equal(restored[k], snaps[k]) {
					t.Fatalf("seed %d %v: restore %d diverged from input", seed, m, k)
				}
				if prevRestored != nil && !bytes.Equal(restored[k], prevRestored[k]) {
					t.Fatalf("seed %d: methods disagree at checkpoint %d", seed, k)
				}
			}
			prevRestored = restored
		}
	}
}
