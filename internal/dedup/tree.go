package dedup

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/hashmap"
	"github.com/gpuckpt/gpuckpt/internal/merkle"
	"github.com/gpuckpt/gpuckpt/internal/murmur3"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// emittedRegion is one region root saved by the labeling sweep.
type emittedRegion struct {
	node  uint32
	label Label
	src   hashmap.Entry // valid for LabelShiftDupl
}

// sortEmitted orders regions by their covered chunk range.
func (d *Deduplicator) sortEmitted(regions []emittedRegion) {
	sort.Slice(regions, func(i, j int) bool {
		li, _ := d.tree.LeafRange(int(regions[i].node))
		lj, _ := d.tree.LeafRange(int(regions[j].node))
		return li < lj
	})
}

// initBodies creates every kernel body once. The bodies read their
// per-launch parameters (current buffer, current tree level, scratch
// slices) from Deduplicator fields, so launching them allocates no
// closures — a requirement for the allocation-free steady state.
func (d *Deduplicator) initBodies() {
	//ckptlint:noalloc
	d.resetBody = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d.labels[i] = LabelNone
		}
	}

	// Lines 1-23 of Algorithm 1: hash every chunk and classify it as
	// FIXED_DUPL / FIRST_OCUR / SHIFT_DUPL against the historical
	// record of unique hashes, refreshing the leaf digests.
	//ckptlint:noalloc
	d.leafBody = func(lo, hi int) {
		g := &d.gs
		data := d.frontData
		var ops, fx int64
		for c := lo; c < hi; c++ {
			node := d.tree.LeafNode(c)
			off, end := d.chunkSpan(c)
			dig := d.hashChunk(data[off:end])
			if dig == d.tree.Digests[node] {
				d.labels[node] = LabelFixedDupl
				fx++
				continue
			}
			entry := hashmap.Entry{Node: uint32(node), Ckpt: d.ckptID}
			_, inserted, ierr := d.hmap.InsertIfAbsent(dig, entry)
			ops++
			if ierr != nil {
				g.fail(fmt.Errorf("dedup: historical record full at checkpoint %d (capacity %d); raise Options.MapCapacity: %w",
					d.ckptID, d.hmap.Capacity(), ierr))
				return
			}
			if inserted {
				d.labels[node] = LabelFirstOcur
			} else {
				// Lines 13-16: the earliest same-checkpoint occurrence
				// becomes canonical; later ones are shifted duplicates.
				d.hmap.UpdateIfEarlier(dig, entry)
				d.labels[node] = LabelShiftDupl
				ops++
			}
			d.tree.Digests[node] = dig
		}
		g.mapOps.Add(ops)
		g.fixedN.Add(fx)
	}

	// Reconciliation: align labels with the final map state. With
	// VerifyDuplicates, every shifted leaf is additionally
	// byte-compared against its recorded source (§2.4's hash-collision
	// mitigation); a mismatching chunk is demoted to a first occurrence
	// so its real bytes ship.
	//ckptlint:noalloc
	d.reconcileBody = func(lo, hi int) {
		g := &d.gs
		data := d.frontData
		var ops, fi, sh, vf int64
		for c := lo; c < hi; c++ {
			node := d.tree.LeafNode(c)
			lbl := d.labels[node]
			if lbl == LabelFixedDupl {
				continue
			}
			e, ok := d.hmap.Find(d.tree.Digests[node])
			ops++
			if ok && e.Node == uint32(node) && e.Ckpt == d.ckptID {
				d.labels[node] = LabelFirstOcur
				fi++
				continue
			}
			if d.opts.VerifyDuplicates {
				vf++
				off, end := d.chunkSpan(c)
				if !d.sourceMatches(e, data, data[off:end]) {
					d.labels[node] = LabelFirstOcur
					fi++
					continue
				}
			}
			d.labels[node] = LabelShiftDupl
			sh++
		}
		g.mapOps.Add(ops)
		g.firstN.Add(fi)
		g.shiftN.Add(sh)
		g.verified.Add(vf)
	}

	// Lines 24-32 of Algorithm 1: consolidate adjacent FIRST_OCUR
	// regions one level at a time (level interval in d.curLevelLo).
	//ckptlint:noalloc
	d.firstLevelBody = func(lo, hi int) {
		base := d.curLevelLo
		var p int64
		for i := lo; i < hi; i++ {
			v := base + i
			left, right := merkle.Left(v), merkle.Right(v)
			if d.labels[left] == LabelFirstOcur && d.labels[right] == LabelFirstOcur {
				dig := murmur3.SumPair(d.tree.Digests[left], d.tree.Digests[right], d.opts.Seed)
				d.tree.Digests[v] = dig
				d.hmap.InsertIfAbsent(dig, hashmap.Entry{Node: uint32(v), Ckpt: d.ckptID})
				d.labels[v] = LabelFirstOcur
				p++
			}
		}
		d.gs.promoted.Add(p)
	}

	// Lines 33-46 of Algorithm 1: consolidate FIXED_DUPL and SHIFT_DUPL
	// regions and save the roots of maximal uniform regions.
	//ckptlint:noalloc
	d.consolidateBody = func(lo, hi int) {
		base := d.curLevelLo
		var buf []emittedRegion
		var h, lk int64
		for i := lo; i < hi; i++ {
			v := base + i
			left, right := merkle.Left(v), merkle.Right(v)
			la, lb := d.labels[left], d.labels[right]
			switch {
			case la == LabelFirstOcur && lb == LabelFirstOcur:
				// Consolidated (and registered) by stage one.
			case la == LabelFixedDupl && lb == LabelFixedDupl:
				d.labels[v] = LabelFixedDupl
			case la == LabelShiftDupl && lb == LabelShiftDupl:
				dig := murmur3.SumPair(d.tree.Digests[left], d.tree.Digests[right], d.opts.Seed)
				d.tree.Digests[v] = dig
				h++
				e, ok := d.lookupShift(dig)
				lk++
				if ok && !(e.Node == uint32(v) && e.Ckpt == d.ckptID) {
					d.labels[v] = LabelShiftDupl
				} else {
					buf = d.emitChild(buf, left)
					buf = d.emitChild(buf, right)
					d.labels[v] = LabelMixed
				}
			default:
				// Differing labels (or a Mixed child): the
				// consolidatable children become region roots.
				buf = d.emitChild(buf, left)
				buf = d.emitChild(buf, right)
				d.labels[v] = LabelMixed
			}
		}
		if len(buf) > 0 {
			d.regions.add(buf)
		}
		d.gs.hashed.Add(h)
		d.gs.lookups.Add(lk)
	}

	// Serialization bodies (§2.4): region sizes, then the gather copy,
	// either team-coalesced or one thread per region (ablation).
	//ckptlint:noalloc
	d.gatherSizesBody = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off, end := d.tree.NodeSpan(int(d.gatherFirsts[i]), d.opts.ChunkSize, d.dataLen)
			d.gatherSizes[i] = int64(end - off)
		}
	}
	//ckptlint:noalloc
	d.gatherTeamBody = func(t parallel.Team) {
		i := t.LeagueRank()
		off, end := d.tree.NodeSpan(int(d.gatherFirsts[i]), d.opts.ChunkSize, d.dataLen)
		copy(d.gatherOut[d.gatherOffsets[i]:d.gatherOffsets[i]+d.gatherSizes[i]], d.gatherData[off:end])
	}
	//ckptlint:noalloc
	d.gatherPerThread = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off, end := d.tree.NodeSpan(int(d.gatherFirsts[i]), d.opts.ChunkSize, d.dataLen)
			copy(d.gatherOut[d.gatherOffsets[i]:d.gatherOffsets[i]+d.gatherSizes[i]], d.gatherData[off:end])
		}
	}

	d.initBasicBodies()
}

// emitChild appends node c to buf when its label makes it a diff
// region root (FIRST_OCUR / SHIFT_DUPL).
//
//ckptlint:noalloc
func (d *Deduplicator) emitChild(buf []emittedRegion, c int) []emittedRegion {
	switch d.labels[c] {
	case LabelFirstOcur:
		return append(buf, emittedRegion{node: uint32(c), label: LabelFirstOcur})
	case LabelShiftDupl:
		src, ok := d.hmap.Find(d.tree.Digests[c])
		if !ok {
			// Unreachable by construction: every SHIFT_DUPL label
			// was assigned after a successful map lookup.
			//ckptlint:ignore noalloc unreachable panic path
			panic(fmt.Sprintf("dedup: shifted region %d missing from historical record", c))
		}
		return append(buf, emittedRegion{node: uint32(c), label: LabelShiftDupl, src: src})
	default: // LabelFixedDupl costs nothing; LabelMixed already emitted
		return buf
	}
}

// leafPhase implements lines 1-23 of Algorithm 1 via the stored leaf
// and reconciliation bodies.
//
// Concurrent inserts of the same digest race exactly as on the GPU;
// determinism is restored by (a) UpdateIfEarlier converging the map
// entry to the minimum node of the current checkpoint and (b) the
// reconciliation sweep that re-labels each leaf against the final map
// state, so FIRST_OCUR is held by exactly the leaf the map records.
func (d *Deduplicator) leafPhase(data []byte, l *launcher) (fixed, first, shift int64, err error) {
	pool := d.dev.Pool()
	g := &d.gs
	d.frontData = data
	g.mapOps.Store(0)
	g.fixedN.Store(0)
	g.firstN.Store(0)
	g.shiftN.Store(0)
	g.verified.Store(0)

	pool.ForRange(d.nChunks, d.leafBody)
	if err := g.takeErr(); err != nil {
		return 0, 0, 0, err
	}
	pool.ForRange(d.nChunks, d.reconcileBody)

	l.phase("leaf-hash", device.Cost{
		HashBytes: int64(float64(d.dataLen) * d.opts.HashCostMultiplier),
		MemBytes:  int64(d.nChunks)*16 + g.verified.Load()*2*int64(d.opts.ChunkSize),
		MapOps:    g.mapOps.Load(),
		ChunkOps:  int64(d.nChunks),
	})
	return g.fixedN.Load(), g.firstN.Load(), g.shiftN.Load(), nil
}

// sourceMatches byte-compares a chunk against the recorded source of
// its digest. Same-checkpoint sources are leaf chunks of the current
// buffer; older sources are read from the stored record.
func (d *Deduplicator) sourceMatches(e hashmap.Entry, data, chunk []byte) bool {
	if e.Ckpt == d.ckptID {
		off, end := d.tree.NodeSpan(int(e.Node), d.opts.ChunkSize, d.dataLen)
		if end-off != len(chunk) {
			return false
		}
		return bytesEqual(data[off:end], chunk)
	}
	src, err := d.record.RegionBytes(e.Ckpt, e.Node)
	if err != nil || len(src) != len(chunk) {
		return false
	}
	return bytesEqual(src, chunk)
}

func bytesEqual(a, b []byte) bool { return bytes.Equal(a, b) }

// resetLabels clears the label array before a sweep.
func (d *Deduplicator) resetLabels(l *launcher) {
	d.dev.Pool().ForRange(len(d.labels), d.resetBody)
	l.phase("reset-labels", device.Cost{MemBytes: int64(len(d.labels))})
}

// buildFirstOcurSubtrees implements lines 24-32 of Algorithm 1: a
// bottom-up level-parallel sweep that consolidates adjacent
// FIRST_OCUR regions, registering every consolidated region in the
// historical record. It runs to completion before the shifted
// duplicates are consolidated — the two-stage parallelization of §2.2
// that prevents shifted subtrees from missing first-occurrence entries
// still being hashed.
func (d *Deduplicator) buildFirstOcurSubtrees(l *launcher) {
	pool := d.dev.Pool()
	for _, lv := range d.levels {
		width := lv[1] - lv[0]
		d.curLevelLo = lv[0]
		d.gs.promoted.Store(0)
		pool.ForRange(width, d.firstLevelBody)
		promoted := d.gs.promoted.Load()
		l.phase("firstocur-level", device.Cost{
			HashBytes: int64(float64(promoted*32) * d.opts.HashCostMultiplier),
			MemBytes:  int64(width) * 2,
			MapOps:    promoted,
		})
	}
}

// consolidateAndEmit implements lines 33-46 of Algorithm 1: the second
// bottom-up sweep that consolidates FIXED_DUPL and SHIFT_DUPL regions
// and saves the roots of maximal uniform regions. FIXED_DUPL roots
// cost nothing and are dropped; FIRST_OCUR and SHIFT_DUPL roots are
// emitted as diff regions.
func (d *Deduplicator) consolidateAndEmit(l *launcher) []emittedRegion {
	pool := d.dev.Pool()
	d.regions.reset()

	for _, lv := range d.levels {
		width := lv[1] - lv[0]
		d.curLevelLo = lv[0]
		d.gs.hashed.Store(0)
		d.gs.lookups.Store(0)
		pool.ForRange(width, d.consolidateBody)
		l.phase("consolidate-level", device.Cost{
			HashBytes: int64(float64(d.gs.hashed.Load()*32) * d.opts.HashCostMultiplier),
			MemBytes:  int64(width) * 2,
			MapOps:    d.gs.lookups.Load(),
		})
	}

	// The root is the region when the whole buffer carries one label.
	switch d.labels[0] {
	case LabelFirstOcur:
		d.regions.appendOne(emittedRegion{node: 0, label: LabelFirstOcur})
	case LabelShiftDupl:
		src, ok := d.hmap.Find(d.tree.Digests[0])
		if !ok {
			panic("dedup: shifted root missing from historical record")
		}
		d.regions.appendOne(emittedRegion{node: 0, label: LabelShiftDupl, src: src})
	}
	return d.regions.snapshot()
}

// lookupShift resolves a consolidated shifted-duplicate hash in the
// historical record. In the SingleStage ablation, entries registered
// during the current checkpoint are invisible — modeling the race the
// two-stage parallelization exists to avoid (§2.2).
func (d *Deduplicator) lookupShift(dig murmur3.Digest) (hashmap.Entry, bool) {
	e, ok := d.hmap.Find(dig)
	if !ok {
		return e, false
	}
	if d.opts.SingleStage && e.Ckpt == d.ckptID {
		return hashmap.Entry{}, false
	}
	return e, true
}

// gather serializes the first-occurrence regions into one contiguous
// buffer: offsets are pre-calculated with an exclusive scan and the
// copies run team-parallel so accesses coalesce (§2.4, "high
// throughput serialization of scattered chunks"). The returned buffer
// is freshly allocated — it is retained by the diff — but the sizes
// and offsets scratch is reused across checkpoints.
func (d *Deduplicator) gather(data []byte, firstNodes []uint32, l *launcher) []byte {
	if len(firstNodes) == 0 {
		return nil
	}
	pool := d.dev.Pool()
	n := len(firstNodes)
	d.gatherData, d.gatherFirsts = data, firstNodes
	d.gatherSizes = growInt64(d.gatherSizes, n)
	d.gatherOffsets = growInt64(d.gatherOffsets, n)
	pool.ForRange(n, d.gatherSizesBody)
	total := parallel.ScanExclusive(pool, d.gatherSizes, d.gatherOffsets)
	out := make([]byte, total)
	d.gatherOut = out

	cost := device.Cost{MemBytes: 2 * total}
	if d.opts.PerThreadGather {
		// One thread per region: long strided copies, uncoalesced.
		cost.UncoalescedPenalty = 4
		pool.ForRange(n, d.gatherPerThread)
	} else {
		pool.ForTeams(n, 32, d.gatherTeamBody)
	}
	l.phase("gather", cost)
	d.gatherData, d.gatherFirsts, d.gatherOut = nil, nil, nil
	return out
}

// sortRegions orders emitted regions by their covered chunk range so
// the diff layout (and therefore the wire format) is deterministic.
// The returned slices are freshly allocated (they are retained by the
// diff); the regions slice itself is sorted in place and reused.
func (d *Deduplicator) sortRegions(regions []emittedRegion) (firsts []uint32, shifts []checkpoint.ShiftRegion) {
	d.sortEmitted(regions)
	for _, r := range regions {
		switch r.label {
		case LabelFirstOcur:
			firsts = append(firsts, r.node)
		case LabelShiftDupl:
			shifts = append(shifts, checkpoint.ShiftRegion{
				Node:    r.node,
				SrcNode: r.src.Node,
				SrcCkpt: r.src.Ckpt,
			})
		}
	}
	return firsts, shifts
}

// treeFrontResult carries the hash/label outcome of one Tree
// checkpoint from the front half to the (possibly pipelined) back
// half: leaf statistics, the fast-path flag and the sorted regions.
type treeFrontResult struct {
	st     Stats
	fast   bool
	firsts []uint32
	shifts []checkpoint.ShiftRegion
}

// treeFront runs the hash/label/consolidate phases of Algorithm 1
// (everything up to, but not including, the gather/serialize stage).
func (d *Deduplicator) treeFront(data []byte, l *launcher) (treeFrontResult, error) {
	var fr treeFrontResult
	d.resetLabels(l)
	fixed, first, shift, err := d.leafPhase(data, l)
	if err != nil {
		return fr, err
	}
	fr.st.FixedLeaves = int(fixed)
	fr.st.FirstLeaves = int(first)
	fr.st.ShiftLeaves = int(shift)

	// Fast path: a fully unchanged buffer needs no consolidation
	// sweeps at all (§2.4's mitigation of unnecessary intermediate
	// hashing between identical checkpoints).
	if first == 0 && shift == 0 {
		fr.fast = true
		fr.st.FastPath = true
		d.frontData = nil
		return fr, nil
	}

	d.buildFirstOcurSubtrees(l)
	regions := d.consolidateAndEmit(l)
	fr.firsts, fr.shifts = d.sortRegions(regions)
	fr.st.NumFirstOcur = len(fr.firsts)
	fr.st.NumShiftDupl = len(fr.shifts)
	d.frontData = nil
	return fr, nil
}

// treeBack runs the gather/serialize stage and assembles the diff for
// checkpoint id. In the pipelined engine it executes on the backend
// goroutine, overlapping the next checkpoint's treeFront; it touches
// only the gather scratch, the diff arena and fr — never the tree,
// labels or hash map the front half mutates.
func (d *Deduplicator) treeBack(data []byte, fr *treeFrontResult, l *launcher, id uint32) (*checkpoint.Diff, error) {
	dataLen, chunkSize := d.wireGeom()
	if fr.fast {
		l.flush()
		diff := d.newDiff()
		*diff = checkpoint.Diff{
			Method:    checkpoint.MethodTree,
			CkptID:    id,
			DataLen:   dataLen,
			ChunkSize: chunkSize,
		}
		return diff, nil
	}

	gathered := d.gather(data, fr.firsts, l)
	l.flush()

	// §2.4: when (almost) the whole buffer changed, incremental
	// checkpointing is deactivated for this interval — a Full diff
	// carries the same bytes without the metadata.
	if d.opts.AutoFallback && int64(len(gathered)) > int64(0.9*float64(d.dataLen)) {
		fr.st.FellBack = true
		cp := make([]byte, len(data))
		copy(cp, data)
		diff := d.newDiff()
		*diff = checkpoint.Diff{
			Method:    checkpoint.MethodFull,
			CkptID:    id,
			DataLen:   dataLen,
			ChunkSize: chunkSize,
			Data:      cp,
		}
		return diff, nil
	}

	diff := d.newDiff()
	*diff = checkpoint.Diff{
		Method:    checkpoint.MethodTree,
		CkptID:    id,
		DataLen:   dataLen,
		ChunkSize: chunkSize,
		FirstOcur: fr.firsts,
		ShiftDupl: fr.shifts,
		Data:      gathered,
	}
	return diff, nil
}

// checkpointTree runs the full Tree pipeline (Algorithm 1)
// synchronously: front and back halves on the caller's goroutine,
// sharing one launcher so fused mode still models a single kernel.
func (d *Deduplicator) checkpointTree(data []byte) (*checkpoint.Diff, Stats, error) {
	l := d.frontLauncher("tree-dedup")
	fr, err := d.treeFront(data, l)
	if err != nil {
		return nil, fr.st, err
	}
	diff, err := d.treeBack(data, &fr, l, d.ckptID)
	return diff, fr.st, err
}
