package dedup

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/hashmap"
	"github.com/gpuckpt/gpuckpt/internal/merkle"
	"github.com/gpuckpt/gpuckpt/internal/murmur3"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// emittedRegion is one region root saved by the labeling sweep.
type emittedRegion struct {
	node  uint32
	label Label
	src   hashmap.Entry // valid for LabelShiftDupl
}

// leafPhase implements lines 1-23 of Algorithm 1: hash every chunk,
// classify it as FIXED_DUPL / FIRST_OCUR / SHIFT_DUPL against the
// historical record of unique hashes, and refresh the leaf digests.
//
// Concurrent inserts of the same digest race exactly as on the GPU;
// determinism is restored by (a) UpdateIfEarlier converging the map
// entry to the minimum node of the current checkpoint and (b) a
// reconciliation sweep that re-labels each leaf against the final map
// state, so FIRST_OCUR is held by exactly the leaf the map records.
func (d *Deduplicator) leafPhase(data []byte, l *launcher) (fixed, first, shift int64, err error) {
	pool := d.dev.Pool()
	var mapOps, fixedN atomic.Int64
	var errOnce sync.Once
	var phaseErr error

	pool.ForRange(d.nChunks, func(lo, hi int) {
		var ops, fx int64
		for c := lo; c < hi; c++ {
			node := d.tree.LeafNode(c)
			off, end := d.chunkSpan(c)
			dig := d.hashChunk(data[off:end])
			if dig == d.tree.Digests[node] {
				d.labels[node] = LabelFixedDupl
				fx++
				continue
			}
			entry := hashmap.Entry{Node: uint32(node), Ckpt: d.ckptID}
			_, inserted, ierr := d.hmap.InsertIfAbsent(dig, entry)
			ops++
			if ierr != nil {
				errOnce.Do(func() {
					phaseErr = fmt.Errorf("dedup: historical record full at checkpoint %d (capacity %d); raise Options.MapCapacity: %w",
						d.ckptID, d.hmap.Capacity(), ierr)
				})
				return
			}
			if inserted {
				d.labels[node] = LabelFirstOcur
			} else {
				// Lines 13-16: the earliest same-checkpoint occurrence
				// becomes canonical; later ones are shifted duplicates.
				d.hmap.UpdateIfEarlier(dig, entry)
				d.labels[node] = LabelShiftDupl
				ops++
			}
			d.tree.Digests[node] = dig
		}
		mapOps.Add(ops)
		fixedN.Add(fx)
	})
	if phaseErr != nil {
		return 0, 0, 0, phaseErr
	}

	// Reconciliation: align labels with the final map state. With
	// VerifyDuplicates, every shifted leaf is additionally
	// byte-compared against its recorded source (§2.4's
	// hash-collision mitigation); a mismatching chunk is demoted to a
	// first occurrence so its real bytes ship.
	var firstN, shiftN, verified atomic.Int64
	pool.ForRange(d.nChunks, func(lo, hi int) {
		var ops, fi, sh, vf int64
		for c := lo; c < hi; c++ {
			node := d.tree.LeafNode(c)
			lbl := d.labels[node]
			if lbl == LabelFixedDupl {
				continue
			}
			e, ok := d.hmap.Find(d.tree.Digests[node])
			ops++
			if ok && e.Node == uint32(node) && e.Ckpt == d.ckptID {
				d.labels[node] = LabelFirstOcur
				fi++
				continue
			}
			if d.opts.VerifyDuplicates {
				vf++
				off, end := d.chunkSpan(c)
				if !d.sourceMatches(e, data, data[off:end]) {
					d.labels[node] = LabelFirstOcur
					fi++
					continue
				}
			}
			d.labels[node] = LabelShiftDupl
			sh++
		}
		mapOps.Add(ops)
		firstN.Add(fi)
		shiftN.Add(sh)
		verified.Add(vf)
	})

	l.phase("leaf-hash", device.Cost{
		HashBytes: int64(float64(d.dataLen) * d.opts.HashCostMultiplier),
		MemBytes:  int64(d.nChunks)*16 + verified.Load()*2*int64(d.opts.ChunkSize),
		MapOps:    mapOps.Load(),
		ChunkOps:  int64(d.nChunks),
	})
	return fixedN.Load(), firstN.Load(), shiftN.Load(), nil
}

// sourceMatches byte-compares a chunk against the recorded source of
// its digest. Same-checkpoint sources are leaf chunks of the current
// buffer; older sources are read from the stored record.
func (d *Deduplicator) sourceMatches(e hashmap.Entry, data, chunk []byte) bool {
	if e.Ckpt == d.ckptID {
		off, end := d.tree.NodeSpan(int(e.Node), d.opts.ChunkSize, d.dataLen)
		if end-off != len(chunk) {
			return false
		}
		return bytesEqual(data[off:end], chunk)
	}
	src, err := d.record.RegionBytes(e.Ckpt, e.Node)
	if err != nil || len(src) != len(chunk) {
		return false
	}
	return bytesEqual(src, chunk)
}

func bytesEqual(a, b []byte) bool { return bytes.Equal(a, b) }

// resetLabels clears the label array before a sweep.
func (d *Deduplicator) resetLabels(l *launcher) {
	pool := d.dev.Pool()
	pool.ForRange(len(d.labels), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d.labels[i] = LabelNone
		}
	})
	l.phase("reset-labels", device.Cost{MemBytes: int64(len(d.labels))})
}

// buildFirstOcurSubtrees implements lines 24-32 of Algorithm 1: a
// bottom-up level-parallel sweep that consolidates adjacent
// FIRST_OCUR regions, registering every consolidated region in the
// historical record. It runs to completion before the shifted
// duplicates are consolidated — the two-stage parallelization of §2.2
// that prevents shifted subtrees from missing first-occurrence entries
// still being hashed.
func (d *Deduplicator) buildFirstOcurSubtrees(l *launcher) {
	pool := d.dev.Pool()
	for _, lv := range d.tree.Levels() {
		width := lv[1] - lv[0]
		var promoted atomic.Int64
		pool.ForRange(width, func(lo, hi int) {
			var p int64
			for i := lo; i < hi; i++ {
				v := lv[0] + i
				left, right := merkle.Left(v), merkle.Right(v)
				if d.labels[left] == LabelFirstOcur && d.labels[right] == LabelFirstOcur {
					dig := murmur3.SumPair(d.tree.Digests[left], d.tree.Digests[right], d.opts.Seed)
					d.tree.Digests[v] = dig
					d.hmap.InsertIfAbsent(dig, hashmap.Entry{Node: uint32(v), Ckpt: d.ckptID})
					d.labels[v] = LabelFirstOcur
					p++
				}
			}
			promoted.Add(p)
		})
		l.phase("firstocur-level", device.Cost{
			HashBytes: int64(float64(promoted.Load()*32) * d.opts.HashCostMultiplier),
			MemBytes:  int64(width) * 2,
			MapOps:    promoted.Load(),
		})
	}
}

// consolidateAndEmit implements lines 33-46 of Algorithm 1: the second
// bottom-up sweep that consolidates FIXED_DUPL and SHIFT_DUPL regions
// and saves the roots of maximal uniform regions. FIXED_DUPL roots
// cost nothing and are dropped; FIRST_OCUR and SHIFT_DUPL roots are
// emitted as diff regions.
func (d *Deduplicator) consolidateAndEmit(l *launcher) []emittedRegion {
	pool := d.dev.Pool()
	var out parallel.Collector[emittedRegion]

	emitChild := func(buf []emittedRegion, c int) []emittedRegion {
		switch d.labels[c] {
		case LabelFirstOcur:
			return append(buf, emittedRegion{node: uint32(c), label: LabelFirstOcur})
		case LabelShiftDupl:
			src, ok := d.hmap.Find(d.tree.Digests[c])
			if !ok {
				// Unreachable by construction: every SHIFT_DUPL label
				// was assigned after a successful map lookup.
				panic(fmt.Sprintf("dedup: shifted region %d missing from historical record", c))
			}
			return append(buf, emittedRegion{node: uint32(c), label: LabelShiftDupl, src: src})
		default: // LabelFixedDupl costs nothing; LabelMixed already emitted
			return buf
		}
	}

	for _, lv := range d.tree.Levels() {
		width := lv[1] - lv[0]
		var hashed, lookups atomic.Int64
		pool.ForRange(width, func(lo, hi int) {
			var buf []emittedRegion
			var h, lk int64
			for i := lo; i < hi; i++ {
				v := lv[0] + i
				left, right := merkle.Left(v), merkle.Right(v)
				la, lb := d.labels[left], d.labels[right]
				switch {
				case la == LabelFirstOcur && lb == LabelFirstOcur:
					// Consolidated (and registered) by stage one.
				case la == LabelFixedDupl && lb == LabelFixedDupl:
					d.labels[v] = LabelFixedDupl
				case la == LabelShiftDupl && lb == LabelShiftDupl:
					dig := murmur3.SumPair(d.tree.Digests[left], d.tree.Digests[right], d.opts.Seed)
					d.tree.Digests[v] = dig
					h++
					e, ok := d.lookupShift(dig)
					lk++
					if ok && !(e.Node == uint32(v) && e.Ckpt == d.ckptID) {
						d.labels[v] = LabelShiftDupl
					} else {
						buf = emitChild(buf, left)
						buf = emitChild(buf, right)
						d.labels[v] = LabelMixed
					}
				default:
					// Differing labels (or a Mixed child): the
					// consolidatable children become region roots.
					buf = emitChild(buf, left)
					buf = emitChild(buf, right)
					d.labels[v] = LabelMixed
				}
			}
			if len(buf) > 0 {
				out.Append(buf...)
			}
			hashed.Add(h)
			lookups.Add(lk)
		})
		l.phase("consolidate-level", device.Cost{
			HashBytes: int64(float64(hashed.Load()*32) * d.opts.HashCostMultiplier),
			MemBytes:  int64(width) * 2,
			MapOps:    lookups.Load(),
		})
	}

	// The root is the region when the whole buffer carries one label.
	regions := out.Items()
	switch d.labels[0] {
	case LabelFirstOcur:
		regions = append(regions, emittedRegion{node: 0, label: LabelFirstOcur})
	case LabelShiftDupl:
		src, ok := d.hmap.Find(d.tree.Digests[0])
		if !ok {
			panic("dedup: shifted root missing from historical record")
		}
		regions = append(regions, emittedRegion{node: 0, label: LabelShiftDupl, src: src})
	}
	return regions
}

// lookupShift resolves a consolidated shifted-duplicate hash in the
// historical record. In the SingleStage ablation, entries registered
// during the current checkpoint are invisible — modeling the race the
// two-stage parallelization exists to avoid (§2.2).
func (d *Deduplicator) lookupShift(dig murmur3.Digest) (hashmap.Entry, bool) {
	e, ok := d.hmap.Find(dig)
	if !ok {
		return e, false
	}
	if d.opts.SingleStage && e.Ckpt == d.ckptID {
		return hashmap.Entry{}, false
	}
	return e, true
}

// gather serializes the first-occurrence regions into one contiguous
// buffer: offsets are pre-calculated with an exclusive scan and the
// copies run team-parallel so accesses coalesce (§2.4, "high
// throughput serialization of scattered chunks").
func (d *Deduplicator) gather(data []byte, firstNodes []uint32, l *launcher) []byte {
	if len(firstNodes) == 0 {
		return nil
	}
	pool := d.dev.Pool()
	sizes := make([]int64, len(firstNodes))
	pool.For(len(firstNodes), func(i int) {
		off, end := d.tree.NodeSpan(int(firstNodes[i]), d.opts.ChunkSize, d.dataLen)
		sizes[i] = int64(end - off)
	})
	offsets := make([]int64, len(firstNodes))
	total := parallel.ScanExclusive(pool, sizes, offsets)
	out := make([]byte, total)

	cost := device.Cost{MemBytes: 2 * total}
	if d.opts.PerThreadGather {
		// One thread per region: long strided copies, uncoalesced.
		cost.UncoalescedPenalty = 4
		pool.For(len(firstNodes), func(i int) {
			off, end := d.tree.NodeSpan(int(firstNodes[i]), d.opts.ChunkSize, d.dataLen)
			copy(out[offsets[i]:offsets[i]+sizes[i]], data[off:end])
		})
	} else {
		pool.ForTeams(len(firstNodes), 32, func(t parallel.Team) {
			i := t.LeagueRank()
			off, end := d.tree.NodeSpan(int(firstNodes[i]), d.opts.ChunkSize, d.dataLen)
			copy(out[offsets[i]:offsets[i]+sizes[i]], data[off:end])
		})
	}
	l.phase("gather", cost)
	return out
}

// sortRegions orders emitted regions by their covered chunk range so
// the diff layout (and therefore the wire format) is deterministic.
func (d *Deduplicator) sortRegions(regions []emittedRegion) (firsts []uint32, shifts []checkpoint.ShiftRegion) {
	sort.Slice(regions, func(i, j int) bool {
		li, _ := d.tree.LeafRange(int(regions[i].node))
		lj, _ := d.tree.LeafRange(int(regions[j].node))
		return li < lj
	})
	for _, r := range regions {
		switch r.label {
		case LabelFirstOcur:
			firsts = append(firsts, r.node)
		case LabelShiftDupl:
			shifts = append(shifts, checkpoint.ShiftRegion{
				Node:    r.node,
				SrcNode: r.src.Node,
				SrcCkpt: r.src.Ckpt,
			})
		}
	}
	return firsts, shifts
}

// checkpointTree runs the full Tree pipeline (Algorithm 1).
func (d *Deduplicator) checkpointTree(data []byte) (*checkpoint.Diff, Stats, error) {
	l := newLauncher(d.dev, !d.opts.Unfused, "tree-dedup")
	var st Stats

	d.resetLabels(l)
	fixed, first, shift, err := d.leafPhase(data, l)
	if err != nil {
		return nil, st, err
	}
	st.FixedLeaves = int(fixed)
	st.FirstLeaves = int(first)
	st.ShiftLeaves = int(shift)

	// Fast path: a fully unchanged buffer needs no consolidation
	// sweeps at all (§2.4's mitigation of unnecessary intermediate
	// hashing between identical checkpoints).
	if first == 0 && shift == 0 {
		st.FastPath = true
		l.flush()
		return &checkpoint.Diff{
			Method:    checkpoint.MethodTree,
			CkptID:    d.ckptID,
			DataLen:   uint64(d.dataLen),
			ChunkSize: uint32(d.opts.ChunkSize),
		}, st, nil
	}

	d.buildFirstOcurSubtrees(l)
	regions := d.consolidateAndEmit(l)
	firsts, shifts := d.sortRegions(regions)
	gathered := d.gather(data, firsts, l)
	l.flush()

	st.NumFirstOcur = len(firsts)
	st.NumShiftDupl = len(shifts)

	// §2.4: when (almost) the whole buffer changed, incremental
	// checkpointing is deactivated for this interval — a Full diff
	// carries the same bytes without the metadata.
	if d.opts.AutoFallback && int64(len(gathered)) > int64(0.9*float64(d.dataLen)) {
		st.FellBack = true
		cp := make([]byte, len(data))
		copy(cp, data)
		return &checkpoint.Diff{
			Method:    checkpoint.MethodFull,
			CkptID:    d.ckptID,
			DataLen:   uint64(d.dataLen),
			ChunkSize: uint32(d.opts.ChunkSize),
			Data:      cp,
		}, st, nil
	}

	diff := &checkpoint.Diff{
		Method:    checkpoint.MethodTree,
		CkptID:    d.ckptID,
		DataLen:   uint64(d.dataLen),
		ChunkSize: uint32(d.opts.ChunkSize),
		FirstOcur: firsts,
		ShiftDupl: shifts,
		Data:      gathered,
	}
	return diff, st, nil
}
