package dedup

// Tests for the §5 future-work extensions (in-diff compression,
// streaming transfers) and the §2.4 hash-collision mitigation.

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/murmur3"
)

// compressibleBuf builds a buffer of small counters (sparse-GDV-like),
// which every codec shrinks.
func compressibleBuf(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := 0; i+4 <= n; i += 4 {
		if rng.Intn(8) == 0 {
			binary.LittleEndian.PutUint32(b[i:], uint32(rng.Intn(50)))
		}
	}
	return b
}

func TestCompressedDiffsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := compressibleBuf(rng, 64*1024)
	for _, codec := range []compress.Codec{compress.NewCascaded(), compress.NewLZ4(), compress.NewDeflate()} {
		for _, m := range checkpoint.Methods() {
			d := mustNew(t, m, len(base), Options{ChunkSize: 64, Compressor: codec})
			buf := append([]byte(nil), base...)
			var snaps [][]byte
			for k := 0; k < 4; k++ {
				if k > 0 {
					off := rng.Intn(len(buf) - 2048)
					copy(buf[off:off+2048], compressibleBuf(rng, 2048))
				}
				snaps = append(snaps, append([]byte(nil), buf...))
				diff, _, err := d.Checkpoint(buf)
				if err != nil {
					t.Fatalf("%s/%v ckpt %d: %v", codec.Name(), m, k, err)
				}
				if len(diff.Data) > 0 && diff.DataCodec == 0 {
					t.Fatalf("%s/%v ckpt %d: compressible data left raw", codec.Name(), m, k)
				}
			}
			for k, snap := range snaps {
				got, err := d.Restore(k)
				if err != nil || !bytes.Equal(got, snap) {
					t.Fatalf("%s/%v restore %d failed: %v", codec.Name(), m, k, err)
				}
			}
		}
	}
}

func TestCompressedDiffShrinksRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := compressibleBuf(rng, 128*1024)
	run := func(codec compress.Codec) int64 {
		d := mustNew(t, checkpoint.MethodTree, len(base), Options{ChunkSize: 128, Compressor: codec})
		if _, _, err := d.Checkpoint(base); err != nil {
			t.Fatal(err)
		}
		return d.Record().TotalBytes()
	}
	raw := run(nil)
	comp := run(compress.NewCascaded())
	if comp >= raw {
		t.Fatalf("compressed record %d not below raw %d", comp, raw)
	}
}

func TestCompressedDiffSurvivesWireFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := compressibleBuf(rng, 32*1024)
	d := mustNew(t, checkpoint.MethodTree, len(base), Options{ChunkSize: 64, Compressor: compress.NewLZ4()})
	buf := append([]byte(nil), base...)
	var stream bytes.Buffer
	var snaps [][]byte
	for k := 0; k < 3; k++ {
		if k > 0 {
			off := rng.Intn(len(buf) - 1024)
			copy(buf[off:off+1024], compressibleBuf(rng, 1024))
		}
		snaps = append(snaps, append([]byte(nil), buf...))
		diff, _, err := d.Checkpoint(buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := diff.Encode(&stream); err != nil {
			t.Fatal(err)
		}
	}
	rec := checkpoint.NewRecord()
	r := bytes.NewReader(stream.Bytes())
	for k := 0; k < 3; k++ {
		diff, err := checkpoint.Decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Append(diff); err != nil {
			t.Fatal(err)
		}
	}
	for k, snap := range snaps {
		got, err := rec.Restore(k)
		if err != nil || !bytes.Equal(got, snap) {
			t.Fatalf("decoded-record restore %d failed: %v", k, err)
		}
	}
}

func TestIncompressibleDataStaysRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	base := randBuf(rng, 32*1024) // uniform random: nothing shrinks it
	d := mustNew(t, checkpoint.MethodFull, len(base), Options{ChunkSize: 128, Compressor: compress.NewLZ4()})
	diff, _, err := d.Checkpoint(base)
	if err != nil {
		t.Fatal(err)
	}
	if diff.DataCodec != 0 {
		t.Fatalf("incompressible data stored with codec %d", diff.DataCodec)
	}
	if got, err := d.Restore(0); err != nil || !bytes.Equal(got, base) {
		t.Fatalf("restore failed: %v", err)
	}
}

func TestStreamingTransferOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	base := randBuf(rng, 1<<20)
	run := func(streaming bool) (Stats, []byte) {
		d := mustNew(t, checkpoint.MethodFull, len(base), Options{ChunkSize: 128, StreamingTransfer: streaming})
		_, st, err := d.Checkpoint(base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Restore(0)
		if err != nil {
			t.Fatal(err)
		}
		return st, got
	}
	plain, a := run(false)
	stream, b := run(true)
	if !bytes.Equal(a, b) || !bytes.Equal(a, base) {
		t.Fatal("streaming changed restore bytes")
	}
	// Full has (nearly) no dedup time, so streaming hides almost
	// nothing of the transfer — but must never be slower.
	if stream.TransferTime > plain.TransferTime {
		t.Fatalf("streaming transfer %v > blocking %v", stream.TransferTime, plain.TransferTime)
	}
	// Tree on an unchanged buffer: dedup dominates, transfer is tiny;
	// the streamed tail must be zero.
	d := mustNew(t, checkpoint.MethodTree, len(base), Options{ChunkSize: 128, StreamingTransfer: true})
	if _, _, err := d.Checkpoint(base); err != nil {
		t.Fatal(err)
	}
	_, st, err := d.Checkpoint(base)
	if err != nil {
		t.Fatal(err)
	}
	if st.TransferTime != 0 {
		t.Fatalf("fully-hidden transfer reported %v", st.TransferTime)
	}
	if st.Throughput() <= 0 {
		t.Fatal("degenerate streaming throughput")
	}
}

// weakHash fingerprints a chunk by its first byte only: plenty of
// cross-position collisions, and any test mutation that changes the
// first byte changes the digest (avoiding false fixed-duplicates).
func weakHash(data []byte) murmur3.Digest {
	var b byte
	if len(data) > 0 {
		b = data[0]
	}
	return murmur3.Digest{H1: uint64(b) + 1, H2: 0xabcd}
}

func TestVerifyDuplicatesRepairsHashCollisions(t *testing.T) {
	const chunk = 64
	const n = 16 * chunk
	// Checkpoint 0: chunk i starts with byte i and has a distinct tail.
	base := make([]byte, n)
	for c := 0; c < 16; c++ {
		base[c*chunk] = byte(c)
		for i := 1; i < chunk; i++ {
			base[c*chunk+i] = byte(c*31 + i)
		}
	}
	// Checkpoint 1: chunk 5 gets content whose first byte collides
	// with chunk 7's digest but whose tail differs.
	next := append([]byte(nil), base...)
	next[5*chunk] = 7
	for i := 1; i < chunk; i++ {
		next[5*chunk+i] = 0xEE
	}

	run := func(verify bool) ([]byte, Stats) {
		d := mustNew(t, checkpoint.MethodTree, n, Options{ChunkSize: chunk, VerifyDuplicates: verify})
		d.hashChunk = weakHash
		if _, _, err := d.Checkpoint(base); err != nil {
			t.Fatal(err)
		}
		_, st, err := d.Checkpoint(next)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Restore(1)
		if err != nil {
			t.Fatal(err)
		}
		return got, st
	}

	corrupted, stOff := run(false)
	if bytes.Equal(corrupted, next) {
		t.Fatal("test vector did not produce a collision: weak-hash corruption expected without verification")
	}
	if stOff.ShiftLeaves == 0 {
		t.Fatal("collision was not classified as a shifted duplicate")
	}

	repaired, stOn := run(true)
	if !bytes.Equal(repaired, next) {
		t.Fatal("VerifyDuplicates did not repair the collision")
	}
	if stOn.FirstLeaves <= stOff.FirstLeaves {
		t.Fatal("verification did not demote the colliding chunk to a first occurrence")
	}
}

func TestVerifyDuplicatesKeepsRealDuplicates(t *testing.T) {
	// With the real hash, verification must change nothing: same diff
	// bytes, same stats.
	rng := rand.New(rand.NewSource(26))
	base := randBuf(rng, 64*1024)
	next := append([]byte(nil), base...)
	copy(next[0:8192], base[32768:40960]) // aligned move -> shifted dups

	run := func(verify bool) ([]byte, Stats) {
		d := mustNew(t, checkpoint.MethodTree, len(base), Options{ChunkSize: 64, VerifyDuplicates: verify})
		if _, _, err := d.Checkpoint(base); err != nil {
			t.Fatal(err)
		}
		diff, st, err := d.Checkpoint(next)
		if err != nil {
			t.Fatal(err)
		}
		var enc bytes.Buffer
		if err := diff.Encode(&enc); err != nil {
			t.Fatal(err)
		}
		if got, err := d.Restore(1); err != nil || !bytes.Equal(got, next) {
			t.Fatalf("restore failed: %v", err)
		}
		return enc.Bytes(), st
	}
	a, sa := run(false)
	b, sb := run(true)
	if !bytes.Equal(a, b) {
		t.Fatal("verification changed the diff for collision-free input")
	}
	if sa.ShiftLeaves != sb.ShiftLeaves || sa.FirstLeaves != sb.FirstLeaves {
		t.Fatal("verification changed labels for collision-free input")
	}
	if sb.ShiftLeaves == 0 {
		t.Fatal("expected shifted duplicates in this workload")
	}
}

func TestFastPathOnUnchangedCheckpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	base := randBuf(rng, 64*1024)
	d := mustNew(t, checkpoint.MethodTree, len(base), Options{ChunkSize: 64})
	_, st0, err := d.Checkpoint(base)
	if err != nil {
		t.Fatal(err)
	}
	if st0.FastPath {
		t.Fatal("first checkpoint took the fast path")
	}
	diff, st1, err := d.Checkpoint(base)
	if err != nil {
		t.Fatal(err)
	}
	if !st1.FastPath {
		t.Fatal("unchanged checkpoint missed the fast path")
	}
	if len(diff.FirstOcur)+len(diff.ShiftDupl)+len(diff.Data) != 0 {
		t.Fatal("fast-path diff not empty")
	}
	if st1.DedupTime >= st0.DedupTime {
		t.Fatalf("fast path (%v) not cheaper than full labeling (%v)", st1.DedupTime, st0.DedupTime)
	}
	// A later sparse change still works (fast path must not corrupt
	// the persistent tree/map state).
	next := append([]byte(nil), base...)
	rng.Read(next[100:300])
	if _, st2, err := d.Checkpoint(next); err != nil || st2.FastPath {
		t.Fatalf("post-fast-path checkpoint wrong: %v fast=%v", err, st2.FastPath)
	}
	if got, err := d.Restore(2); err != nil || !bytes.Equal(got, next) {
		t.Fatalf("restore after fast path failed: %v", err)
	}
	if got, err := d.Restore(1); err != nil || !bytes.Equal(got, base) {
		t.Fatalf("restore of fast-path checkpoint failed: %v", err)
	}
}

func TestAutoFallbackOnFullChange(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	base := randBuf(rng, 64*1024)
	d := mustNew(t, checkpoint.MethodTree, len(base), Options{ChunkSize: 64, AutoFallback: true})
	if _, _, err := d.Checkpoint(base); err != nil {
		t.Fatal(err)
	}
	// Fully new content: incremental checkpointing deactivates.
	full := randBuf(rng, 64*1024)
	diff, st, err := d.Checkpoint(full)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack || diff.Method != checkpoint.MethodFull {
		t.Fatalf("no fallback on full change: fellback=%v method=%v", st.FellBack, diff.Method)
	}
	// A later sparse change returns to the Tree method and may
	// reference regions inside the Full diff.
	next := append([]byte(nil), full...)
	copy(next[0:4096], full[8192:12288]) // aligned move -> shift into full diff
	diff2, st2, err := d.Checkpoint(next)
	if err != nil {
		t.Fatal(err)
	}
	if st2.FellBack || diff2.Method != checkpoint.MethodTree {
		t.Fatalf("sparse change fell back: %v", diff2.Method)
	}
	if st2.NumShiftDupl == 0 {
		t.Fatal("expected shifted references into the fallback diff")
	}
	for k, want := range [][]byte{base, full, next} {
		got, err := d.Restore(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("mixed-method restore %d failed: %v", k, err)
		}
	}
	// Without fallback the same change stays a Tree diff.
	d2 := mustNew(t, checkpoint.MethodTree, len(base), Options{ChunkSize: 64})
	if _, _, err := d2.Checkpoint(base); err != nil {
		t.Fatal(err)
	}
	dd, st3, err := d2.Checkpoint(full)
	if err != nil {
		t.Fatal(err)
	}
	if st3.FellBack || dd.Method != checkpoint.MethodTree {
		t.Fatal("fallback triggered while disabled")
	}
}
