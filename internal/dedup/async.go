package dedup

import (
	"fmt"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
)

// AsyncResult delivers the outcome of one pipelined checkpoint.
type AsyncResult struct {
	Diff  *checkpoint.Diff
	Stats Stats
	Err   error
}

// CheckpointAsync is the pipelined variant of Checkpoint: the
// hash/label/consolidate front half of checkpoint i runs on the
// caller's goroutine while the gather/serialize/compress/transfer/
// record back half of checkpoint i-1 is still executing on a single
// internal backend goroutine — the CPU-real analogue of the paper's
// stream overlap between de-duplication and the diff transfer (§5).
//
// The returned channel delivers exactly one AsyncResult. The caller
// must keep data unmodified until that result has been received. The
// produced diffs, record contents and restore bytes are identical to
// the sequential Checkpoint path; only the modeled kernel partitioning
// differs (the gather stage becomes its own fused launch, adding one
// kernel-launch latency per non-fast-path Tree checkpoint).
//
// At most one checkpoint is in flight: a second CheckpointAsync call
// first overlaps its front half with the outstanding back half, then
// waits for it before dispatching its own. After a backend failure the
// pipeline is poisoned: every subsequent call returns the error.
func (d *Deduplicator) CheckpointAsync(data []byte) (<-chan AsyncResult, error) {
	if d.closed {
		return nil, ErrClosed
	}
	if len(data) != d.dataLen {
		return nil, fmt.Errorf("dedup: buffer length %d, deduplicator configured for %d",
			len(data), d.dataLen)
	}
	if d.opts.VerifyDuplicates {
		// The verification sweep byte-compares shifted chunks against
		// the stored record, which the backend is still appending to —
		// serialize the stages (correctness over overlap).
		if err := d.waitBackend(); err != nil {
			return nil, err
		}
	}

	if inj := d.opts.FaultInjector; inj != nil {
		if err := inj("front", d.ckptID); err != nil {
			return nil, fmt.Errorf("dedup: front stage of checkpoint %d: %w", d.ckptID, err)
		}
	}

	// Front half on the caller's goroutine, overlapping the previous
	// checkpoint's backend. Full/Basic/List build their whole diff
	// here (their gather is cheap and shares state with the hash
	// sweep); Tree defers gather/serialize to the backend.
	d.l.reset(d.dev, !d.opts.Unfused, "front")
	var (
		fr   treeFrontResult
		diff *checkpoint.Diff
		err  error
	)
	switch d.method {
	case checkpoint.MethodFull:
		diff, fr.st, err = d.checkpointFull(data)
	case checkpoint.MethodBasic:
		diff, fr.st, err = d.checkpointBasic(data)
	case checkpoint.MethodList:
		diff, fr.st, err = d.checkpointList(data)
	case checkpoint.MethodTree:
		l := d.frontLauncher("tree-dedup")
		fr, err = d.treeFront(data, l)
		l.flush()
	}
	if err != nil {
		return nil, err
	}
	frontTime := d.l.elapsed

	// Only one backend may be in flight: its goroutine owns the diff
	// arena (for Tree), the gather scratch and the record.
	if err := d.waitBackend(); err != nil {
		return nil, err
	}

	id := d.ckptID
	ch := make(chan AsyncResult, 1)
	done := make(chan struct{})
	d.backDone = done
	go func() {
		res := d.backend(data, &fr, diff, id, frontTime)
		if res.Err != nil {
			d.asyncErr = res.Err
		}
		ch <- res
		close(done)
	}()
	d.ckptID++
	return ch, nil
}

// backend runs the back half of one pipelined checkpoint: the Tree
// gather/serialize stage, compression, stats finalization, the
// modeled device-to-host transfer and the record append.
func (d *Deduplicator) backend(data []byte, fr *treeFrontResult, diff *checkpoint.Diff, id uint32, frontTime time.Duration) AsyncResult {
	if inj := d.opts.FaultInjector; inj != nil {
		if err := inj("back", id); err != nil {
			return AsyncResult{Err: fmt.Errorf("dedup: back stage of checkpoint %d: %w", id, err)}
		}
	}
	var backTime time.Duration
	if d.method == checkpoint.MethodTree {
		d.backL.reset(d.dev, !d.opts.Unfused, "tree-dedup")
		var err error
		diff, err = d.treeBack(data, fr, &d.backL, id)
		if err != nil {
			return AsyncResult{Err: err}
		}
		backTime = d.backL.elapsed
	}
	compDur, err := d.compressDiff(diff)
	if err != nil {
		return AsyncResult{Err: err}
	}

	st := fr.st
	st.Method = d.method
	st.CkptID = id
	st.ChunkSize = d.opts.ChunkSize
	st.InputBytes = int64(d.dataLen)
	st.DiffBytes = diff.TotalBytes()
	st.MetadataBytes = diff.MetadataBytes()
	st.DataBytes = int64(len(diff.Data))
	// The device clock advances from both pipeline stages at once, so
	// DedupTime is the sum of this checkpoint's own charges rather
	// than a clock delta.
	st.DedupTime = frontTime + backTime + compDur

	if d.opts.StreamingTransfer {
		// §5 streaming extension: the transfer overlaps the
		// de-duplication pipeline, so only the non-overlapped tail
		// blocks the application.
		xfer := d.dev.EstimateTransfer(diff.TotalBytes())
		tail := xfer - st.DedupTime
		if tail < 0 {
			tail = 0
		}
		d.dev.ChargeDuration("d2h-streamed", tail)
		st.TransferTime = tail
	} else {
		st.TransferTime = d.dev.CopyToHost(diff.TotalBytes())
	}

	if inj := d.opts.FaultInjector; inj != nil {
		if err := inj("append", id); err != nil {
			return AsyncResult{Err: fmt.Errorf("dedup: append stage of checkpoint %d: %w", id, err)}
		}
	}
	if err := d.record.Append(diff); err != nil {
		return AsyncResult{Err: fmt.Errorf("dedup: appending diff: %w", err)}
	}
	return AsyncResult{Diff: diff, Stats: st}
}

// drainBackend blocks until the in-flight pipelined backend, if any,
// has finished.
func (d *Deduplicator) drainBackend() {
	if d.backDone != nil {
		<-d.backDone
		d.backDone = nil
	}
}

// waitBackend drains the backend and reports the sticky pipeline
// error, if any.
func (d *Deduplicator) waitBackend() error {
	d.drainBackend()
	if d.asyncErr != nil {
		return fmt.Errorf("dedup: pipelined checkpoint failed: %w", d.asyncErr)
	}
	return nil
}
