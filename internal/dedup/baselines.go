package dedup

import (
	"sync/atomic"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// checkpointFull implements the Full baseline: the complete buffer is
// shipped every checkpoint. There is no on-device work beyond the
// transfer, so its throughput measures the raw GPU-to-host flush
// bandwidth (§3.2).
func (d *Deduplicator) checkpointFull(data []byte) (*checkpoint.Diff, Stats, error) {
	var st Stats
	cp := make([]byte, len(data))
	copy(cp, data)
	diff := &checkpoint.Diff{
		Method:    checkpoint.MethodFull,
		CkptID:    d.ckptID,
		DataLen:   uint64(d.dataLen),
		ChunkSize: uint32(d.opts.ChunkSize),
		Data:      cp,
	}
	return diff, st, nil
}

// checkpointBasic implements the Basic incremental baseline (§3.2):
// chunks are hashed and compared against the hash of the same chunk
// position in the previous checkpoint; a bitmap marks the changed
// chunks, whose bytes are gathered behind it. Spatial duplication and
// shifted temporal duplication are invisible to this method.
func (d *Deduplicator) checkpointBasic(data []byte) (*checkpoint.Diff, Stats, error) {
	l := newLauncher(d.dev, !d.opts.Unfused, "basic-dedup")
	var st Stats
	pool := d.dev.Pool()

	bitmap := make([]byte, checkpoint.BitmapLen(d.nChunks))
	changed := make([]int64, d.nChunks) // 1 when chunk changed (also scan input)
	var changedN, fixedN atomic.Int64

	pool.ForRange(d.nChunks, func(lo, hi int) {
		var ch, fx int64
		for c := lo; c < hi; c++ {
			node := d.tree.LeafNode(c)
			off, end := d.chunkSpan(c)
			dig := d.hashChunk(data[off:end])
			if dig == d.tree.Digests[node] {
				fx++
				continue
			}
			d.tree.Digests[node] = dig
			changed[c] = 1
			ch++
		}
		changedN.Add(ch)
		fixedN.Add(fx)
	})
	// The bitmap is written sequentially per 8-chunk group to avoid
	// sub-byte races.
	pool.ForRange(len(bitmap), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			var v byte
			for bit := 0; bit < 8; bit++ {
				c := b*8 + bit
				if c < d.nChunks && changed[c] == 1 {
					v |= 1 << bit
				}
			}
			bitmap[b] = v
		}
	})
	l.phase("leaf-hash", device.Cost{
		HashBytes: int64(float64(d.dataLen) * d.opts.HashCostMultiplier),
		MemBytes:  int64(d.nChunks)*16 + int64(len(bitmap)),
		ChunkOps:  int64(d.nChunks),
	})

	// Gather changed chunks: sizes -> exclusive scan -> parallel copy.
	sizes := make([]int64, d.nChunks)
	pool.For(d.nChunks, func(c int) {
		if changed[c] == 1 {
			off, end := d.chunkSpan(c)
			sizes[c] = int64(end - off)
		}
	})
	offsets := make([]int64, d.nChunks)
	total := parallel.ScanExclusive(pool, sizes, offsets)
	out := make([]byte, total)
	pool.ForRange(d.nChunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			if changed[c] == 1 {
				off, end := d.chunkSpan(c)
				copy(out[offsets[c]:offsets[c]+sizes[c]], data[off:end])
			}
		}
	})
	l.phase("gather", device.Cost{MemBytes: 2 * total})
	l.flush()

	st.FixedLeaves = int(fixedN.Load())
	st.FirstLeaves = int(changedN.Load())
	diff := &checkpoint.Diff{
		Method:    checkpoint.MethodBasic,
		CkptID:    d.ckptID,
		DataLen:   uint64(d.dataLen),
		ChunkSize: uint32(d.opts.ChunkSize),
		Bitmap:    bitmap,
		Data:      out,
	}
	return diff, st, nil
}

// checkpointList implements the List baseline (§3.2): identical to the
// Tree method's leaf-level de-duplication — including spatial and
// shifted temporal redundancy via the historical record — but with the
// metadata compaction omitted: every first-occurrence and
// shifted-duplicate chunk is stored as its own metadata entry.
func (d *Deduplicator) checkpointList(data []byte) (*checkpoint.Diff, Stats, error) {
	l := newLauncher(d.dev, !d.opts.Unfused, "list-dedup")
	var st Stats

	d.resetLabels(l)
	fixed, first, shift, err := d.leafPhase(data, l)
	if err != nil {
		return nil, st, err
	}
	st.FixedLeaves = int(fixed)
	st.FirstLeaves = int(first)
	st.ShiftLeaves = int(shift)

	// Emit one region per non-fixed leaf, already in chunk order.
	firsts := make([]uint32, 0, first)
	shifts := make([]checkpoint.ShiftRegion, 0, shift)
	for c := 0; c < d.nChunks; c++ {
		node := d.tree.LeafNode(c)
		switch d.labels[node] {
		case LabelFirstOcur:
			firsts = append(firsts, uint32(node))
		case LabelShiftDupl:
			src, ok := d.hmap.Find(d.tree.Digests[node])
			if !ok {
				panic("dedup: shifted leaf missing from historical record")
			}
			shifts = append(shifts, checkpoint.ShiftRegion{
				Node:    uint32(node),
				SrcNode: src.Node,
				SrcCkpt: src.Ckpt,
			})
		}
	}
	l.phase("emit-list", device.Cost{
		MemBytes: int64(4*len(firsts) + 12*len(shifts)),
		MapOps:   int64(len(shifts)),
	})

	gathered := d.gather(data, firsts, l)
	l.flush()

	st.NumFirstOcur = len(firsts)
	st.NumShiftDupl = len(shifts)
	diff := &checkpoint.Diff{
		Method:    checkpoint.MethodList,
		CkptID:    d.ckptID,
		DataLen:   uint64(d.dataLen),
		ChunkSize: uint32(d.opts.ChunkSize),
		FirstOcur: firsts,
		ShiftDupl: shifts,
		Data:      gathered,
	}
	return diff, st, nil
}
