package dedup

import (
	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// initBasicBodies creates the Basic baseline's kernel bodies once (see
// initBodies): the hash/compare sweep, the bitmap pack, and the
// size/copy gather sweeps, all reading scratch from Deduplicator
// fields.
func (d *Deduplicator) initBasicBodies() {
	d.basicHashBody = func(lo, hi int) {
		data := d.frontData
		var ch, fx int64
		for c := lo; c < hi; c++ {
			node := d.tree.LeafNode(c)
			off, end := d.chunkSpan(c)
			dig := d.hashChunk(data[off:end])
			if dig == d.tree.Digests[node] {
				d.basicChanged[c] = 0
				fx++
				continue
			}
			d.tree.Digests[node] = dig
			d.basicChanged[c] = 1
			ch++
		}
		d.gs.changedN.Add(ch)
		d.gs.fixedN.Add(fx)
	}
	// The bitmap is written sequentially per 8-chunk group to avoid
	// sub-byte races.
	d.basicBitmapBody = func(lo, hi int) {
		for b := lo; b < hi; b++ {
			var v byte
			for bit := 0; bit < 8; bit++ {
				c := b*8 + bit
				if c < d.nChunks && d.basicChanged[c] == 1 {
					v |= 1 << bit
				}
			}
			d.basicBitmap[b] = v
		}
	}
	d.basicSizesBody = func(lo, hi int) {
		for c := lo; c < hi; c++ {
			if d.basicChanged[c] == 1 {
				off, end := d.chunkSpan(c)
				d.gatherSizes[c] = int64(end - off)
			} else {
				d.gatherSizes[c] = 0
			}
		}
	}
	d.basicCopyBody = func(lo, hi int) {
		data := d.frontData
		for c := lo; c < hi; c++ {
			if d.basicChanged[c] == 1 {
				off, end := d.chunkSpan(c)
				copy(d.basicOut[d.gatherOffsets[c]:d.gatherOffsets[c]+d.gatherSizes[c]], data[off:end])
			}
		}
	}
}

// checkpointFull implements the Full baseline: the complete buffer is
// shipped every checkpoint. There is no on-device work beyond the
// transfer, so its throughput measures the raw GPU-to-host flush
// bandwidth (§3.2).
func (d *Deduplicator) checkpointFull(data []byte) (*checkpoint.Diff, Stats, error) {
	dataLen, chunkSize := d.wireGeom()
	var st Stats
	cp := make([]byte, len(data))
	copy(cp, data)
	diff := d.newDiff()
	*diff = checkpoint.Diff{
		Method:    checkpoint.MethodFull,
		CkptID:    d.ckptID,
		DataLen:   dataLen,
		ChunkSize: chunkSize,
		Data:      cp,
	}
	return diff, st, nil
}

// checkpointBasic implements the Basic incremental baseline (§3.2):
// chunks are hashed and compared against the hash of the same chunk
// position in the previous checkpoint; a bitmap marks the changed
// chunks, whose bytes are gathered behind it. Spatial duplication and
// shifted temporal duplication are invisible to this method.
func (d *Deduplicator) checkpointBasic(data []byte) (*checkpoint.Diff, Stats, error) {
	dataLen, chunkSize := d.wireGeom()
	l := d.frontLauncher("basic-dedup")
	var st Stats
	pool := d.dev.Pool()

	d.frontData = data
	d.gs.changedN.Store(0)
	d.gs.fixedN.Store(0)
	pool.ForRange(d.nChunks, d.basicHashBody)
	changed := d.gs.changedN.Load()

	bitmapLen := checkpoint.BitmapLen(d.nChunks)
	leafCost := device.Cost{
		HashBytes: int64(float64(d.dataLen) * d.opts.HashCostMultiplier),
		MemBytes:  int64(d.nChunks)*16 + int64(bitmapLen),
		ChunkOps:  int64(d.nChunks),
	}

	var bitmap, out []byte
	if changed == 0 {
		// Steady state: nothing changed, so the diff is an all-zero
		// bitmap with no data. The bitmap-pack and gather sweeps are
		// skipped — one shared zero bitmap stands in (the record never
		// mutates diff contents) — while the modeled costs charged are
		// identical to what the sweeps would have incurred, so the
		// device clock is unaffected by the shortcut.
		if d.zeroBitmap == nil {
			d.zeroBitmap = make([]byte, bitmapLen)
		}
		bitmap = d.zeroBitmap
		l.phase("leaf-hash", leafCost)
		l.phase("gather", device.Cost{})
	} else {
		bitmap = make([]byte, bitmapLen)
		d.basicBitmap = bitmap
		pool.ForRange(bitmapLen, d.basicBitmapBody)
		l.phase("leaf-hash", leafCost)

		// Gather changed chunks: sizes -> exclusive scan -> parallel copy.
		d.gatherSizes = growInt64(d.gatherSizes, d.nChunks)
		d.gatherOffsets = growInt64(d.gatherOffsets, d.nChunks)
		pool.ForRange(d.nChunks, d.basicSizesBody)
		total := parallel.ScanExclusive(pool, d.gatherSizes, d.gatherOffsets)
		out = make([]byte, total)
		d.basicOut = out
		pool.ForRange(d.nChunks, d.basicCopyBody)
		l.phase("gather", device.Cost{MemBytes: 2 * total})
		d.basicBitmap, d.basicOut = nil, nil
	}
	l.flush()
	d.frontData = nil

	st.FixedLeaves = int(d.gs.fixedN.Load())
	st.FirstLeaves = int(changed)
	diff := d.newDiff()
	*diff = checkpoint.Diff{
		Method:    checkpoint.MethodBasic,
		CkptID:    d.ckptID,
		DataLen:   dataLen,
		ChunkSize: chunkSize,
		Bitmap:    bitmap,
		Data:      out,
	}
	return diff, st, nil
}

// checkpointList implements the List baseline (§3.2): identical to the
// Tree method's leaf-level de-duplication — including spatial and
// shifted temporal redundancy via the historical record — but with the
// metadata compaction omitted: every first-occurrence and
// shifted-duplicate chunk is stored as its own metadata entry.
func (d *Deduplicator) checkpointList(data []byte) (*checkpoint.Diff, Stats, error) {
	dataLen, chunkSize := d.wireGeom()
	l := d.frontLauncher("list-dedup")
	var st Stats

	d.resetLabels(l)
	fixed, first, shift, err := d.leafPhase(data, l)
	if err != nil {
		return nil, st, err
	}
	st.FixedLeaves = int(fixed)
	st.FirstLeaves = int(first)
	st.ShiftLeaves = int(shift)

	// Emit one region per non-fixed leaf, already in chunk order.
	firsts := make([]uint32, 0, first)
	shifts := make([]checkpoint.ShiftRegion, 0, shift)
	for c := 0; c < d.nChunks; c++ {
		node := d.tree.LeafNode(c)
		switch d.labels[node] {
		case LabelFirstOcur:
			firsts = append(firsts, uint32(node))
		case LabelShiftDupl:
			src, ok := d.hmap.Find(d.tree.Digests[node])
			if !ok {
				panic("dedup: shifted leaf missing from historical record")
			}
			shifts = append(shifts, checkpoint.ShiftRegion{
				Node:    uint32(node),
				SrcNode: src.Node,
				SrcCkpt: src.Ckpt,
			})
		}
	}
	l.phase("emit-list", device.Cost{
		MemBytes: int64(4*len(firsts) + 12*len(shifts)),
		MapOps:   int64(len(shifts)),
	})

	gathered := d.gather(data, firsts, l)
	l.flush()
	d.frontData = nil

	st.NumFirstOcur = len(firsts)
	st.NumShiftDupl = len(shifts)
	diff := d.newDiff()
	*diff = checkpoint.Diff{
		Method:    checkpoint.MethodList,
		CkptID:    d.ckptID,
		DataLen:   dataLen,
		ChunkSize: chunkSize,
		FirstOcur: firsts,
		ShiftDupl: shifts,
		Data:      gathered,
	}
	return diff, st, nil
}
