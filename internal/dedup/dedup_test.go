package dedup

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

func newTestDevice() *device.Device {
	return device.New(device.A100(), parallel.NewPool(4), nil)
}

func mustNew(t *testing.T, m checkpoint.Method, dataLen int, opts Options) *Deduplicator {
	t.Helper()
	d, err := New(m, dataLen, newTestDevice(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func randBuf(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestNewValidation(t *testing.T) {
	dev := newTestDevice()
	if _, err := New(checkpoint.MethodTree, 0, dev, Options{}); err == nil {
		t.Fatal("zero-length buffer accepted")
	}
	if _, err := New(checkpoint.MethodTree, 100, nil, Options{}); err == nil {
		t.Fatal("nil device accepted")
	}
	if _, err := New(checkpoint.Method(77), 100, dev, Options{}); err == nil {
		t.Fatal("unknown method accepted")
	}
	d, err := New(checkpoint.MethodTree, 100, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Allocated() == 0 {
		t.Fatal("no device memory reserved")
	}
	d.Close()
	if dev.Allocated() != 0 {
		t.Fatal("device memory not released on Close")
	}
	if _, _, err := d.Checkpoint(make([]byte, 100)); err != ErrClosed {
		t.Fatalf("checkpoint after close: %v", err)
	}
}

func TestWrongBufferLength(t *testing.T) {
	d := mustNew(t, checkpoint.MethodTree, 1000, Options{ChunkSize: 64})
	if _, _, err := d.Checkpoint(make([]byte, 999)); err == nil {
		t.Fatal("wrong-length buffer accepted")
	}
}

func TestFirstCheckpointIsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randBuf(rng, 4096+37) // short tail chunk
	for _, m := range checkpoint.Methods() {
		d := mustNew(t, m, len(data), Options{ChunkSize: 64})
		diff, st, err := d.Checkpoint(data)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if int(st.DataBytes) != len(data) {
			t.Errorf("%v: first checkpoint stored %d data bytes, want %d", m, st.DataBytes, len(data))
		}
		if m == checkpoint.MethodTree {
			if len(diff.FirstOcur) != 1 || diff.FirstOcur[0] != 0 {
				t.Errorf("Tree first checkpoint regions = %v, want [0] (root)", diff.FirstOcur)
			}
		}
		got, err := d.Restore(0)
		if err != nil {
			t.Fatalf("%v restore: %v", m, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%v: first checkpoint restore mismatch", m)
		}
	}
}

func TestUnchangedCheckpointIsTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randBuf(rng, 8192)
	for _, m := range []checkpoint.Method{checkpoint.MethodBasic, checkpoint.MethodList, checkpoint.MethodTree} {
		d := mustNew(t, m, len(data), Options{ChunkSize: 128})
		if _, _, err := d.Checkpoint(data); err != nil {
			t.Fatal(err)
		}
		diff, st, err := d.Checkpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		if st.DataBytes != 0 {
			t.Errorf("%v: unchanged checkpoint stored %d data bytes", m, st.DataBytes)
		}
		if m == checkpoint.MethodTree && (len(diff.FirstOcur)+len(diff.ShiftDupl)) != 0 {
			t.Errorf("Tree: unchanged checkpoint emitted %d+%d regions",
				len(diff.FirstOcur), len(diff.ShiftDupl))
		}
		if got, err := d.Restore(1); err != nil || !bytes.Equal(got, data) {
			t.Errorf("%v: unchanged restore failed: %v", m, err)
		}
		if st.FixedLeaves != d.NumChunks() {
			t.Errorf("%v: %d fixed leaves, want %d", m, st.FixedLeaves, d.NumChunks())
		}
	}
}

// TestPaperFigure2 reproduces the worked example of §2.2 exactly:
// 8 chunks (tree nodes 7..14). After a full first checkpoint, the
// second checkpoint has new chunks at positions 0-3 (nodes 7-10),
// a fixed duplicate at position 4 (node 11), a shifted duplicate of an
// old chunk at position 5 (node 12), and copies of the new chunks 0,1
// at positions 6,7 (nodes 13,14). The compact metadata must be exactly
// three regions — FIRST_OCUR node 1, SHIFT_DUPL node 12 and SHIFT_DUPL
// node 6 — versus seven entries for the List method.
func TestPaperFigure2(t *testing.T) {
	const chunk = 64
	rng := rand.New(rand.NewSource(3))
	chunks0 := make([][]byte, 8)
	for i := range chunks0 {
		chunks0[i] = randBuf(rng, chunk)
	}
	ckpt0 := bytes.Join(chunks0, nil)

	news := make([][]byte, 4)
	for i := range news {
		news[i] = randBuf(rng, chunk)
	}
	chunks1 := [][]byte{
		news[0], news[1], news[2], news[3], // nodes 7-10: first occurrences
		chunks0[4], // node 11: fixed duplicate
		chunks0[2], // node 12: shifted duplicate of old chunk (node 9 of ckpt 0)
		news[0],    // node 13: shifted duplicate of new chunk (node 7 of ckpt 1)
		news[1],    // node 14: shifted duplicate of new chunk (node 8 of ckpt 1)
	}
	ckpt1 := bytes.Join(chunks1, nil)

	d := mustNew(t, checkpoint.MethodTree, len(ckpt0), Options{ChunkSize: chunk})
	if _, _, err := d.Checkpoint(ckpt0); err != nil {
		t.Fatal(err)
	}
	diff, st, err := d.Checkpoint(ckpt1)
	if err != nil {
		t.Fatal(err)
	}

	if st.NumFirstOcur != 1 || st.NumShiftDupl != 2 {
		t.Fatalf("regions = %d first + %d shift, want 1 + 2 (paper: 3 entries total)",
			st.NumFirstOcur, st.NumShiftDupl)
	}
	if len(diff.FirstOcur) != 1 || diff.FirstOcur[0] != 1 {
		t.Fatalf("first-ocur regions = %v, want [1]", diff.FirstOcur)
	}
	wantShifts := map[uint32]checkpoint.ShiftRegion{
		12: {Node: 12, SrcNode: 9, SrcCkpt: 0},
		6:  {Node: 6, SrcNode: 3, SrcCkpt: 1},
	}
	for _, s := range diff.ShiftDupl {
		w, ok := wantShifts[s.Node]
		if !ok {
			t.Fatalf("unexpected shift region %+v", s)
		}
		if s != w {
			t.Fatalf("shift region %+v, want %+v", s, w)
		}
		delete(wantShifts, s.Node)
	}
	if len(wantShifts) != 0 {
		t.Fatalf("missing shift regions: %v", wantShifts)
	}
	// Only the four new chunks' bytes are stored.
	if int(st.DataBytes) != 4*chunk {
		t.Fatalf("data bytes = %d, want %d", st.DataBytes, 4*chunk)
	}
	// Label census: 1 fixed, 4 first, 3 shifted leaves.
	if st.FixedLeaves != 1 || st.FirstLeaves != 4 || st.ShiftLeaves != 3 {
		t.Fatalf("leaf census = %d/%d/%d fixed/first/shift, want 1/4/3",
			st.FixedLeaves, st.FirstLeaves, st.ShiftLeaves)
	}

	got, err := d.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ckpt1) {
		t.Fatal("figure-2 restore mismatch")
	}

	// The List method on the same sequence needs 7 metadata entries.
	dl := mustNew(t, checkpoint.MethodList, len(ckpt0), Options{ChunkSize: chunk})
	if _, _, err := dl.Checkpoint(ckpt0); err != nil {
		t.Fatal(err)
	}
	ldiff, lst, err := dl.Checkpoint(ckpt1)
	if err != nil {
		t.Fatal(err)
	}
	if lst.NumFirstOcur+lst.NumShiftDupl != 7 {
		t.Fatalf("List entries = %d, want 7", lst.NumFirstOcur+lst.NumShiftDupl)
	}
	if ldiff.MetadataBytes() <= diff.MetadataBytes() {
		t.Fatalf("List metadata (%d B) not larger than Tree (%d B)",
			ldiff.MetadataBytes(), diff.MetadataBytes())
	}
	if lgot, err := dl.Restore(1); err != nil || !bytes.Equal(lgot, ckpt1) {
		t.Fatalf("List restore mismatch: %v", err)
	}
}

// mutate applies sparse random overwrites and region moves, the update
// pattern of the paper's graph workloads.
func mutate(rng *rand.Rand, buf []byte, writes, moves int) {
	for i := 0; i < writes; i++ {
		off := rng.Intn(len(buf))
		n := 1 + rng.Intn(200)
		if off+n > len(buf) {
			n = len(buf) - off
		}
		rng.Read(buf[off : off+n])
	}
	for i := 0; i < moves; i++ {
		n := 64 * (1 + rng.Intn(8))
		if n >= len(buf)/2 {
			continue
		}
		src := rng.Intn(len(buf) - n)
		dst := rng.Intn(len(buf) - n)
		copy(buf[dst:dst+n], buf[src:src+n])
	}
}

func TestRoundTripAllMethodsRandomMutations(t *testing.T) {
	sizes := []int{1000, 4096, 65536 + 13}
	chunkSizes := []int{32, 64, 128, 100} // include a non-power-of-two chunk
	for _, size := range sizes {
		for _, cs := range chunkSizes {
			rng := rand.New(rand.NewSource(int64(size*1000 + cs)))
			base := randBuf(rng, size)
			snapshots := [][]byte{append([]byte(nil), base...)}
			buf := append([]byte(nil), base...)
			const nCkpts = 6
			for k := 1; k < nCkpts; k++ {
				mutate(rng, buf, 3, 2)
				snapshots = append(snapshots, append([]byte(nil), buf...))
			}
			for _, m := range checkpoint.Methods() {
				d := mustNew(t, m, size, Options{ChunkSize: cs})
				for k, snap := range snapshots {
					if _, _, err := d.Checkpoint(snap); err != nil {
						t.Fatalf("size=%d cs=%d %v ckpt %d: %v", size, cs, m, k, err)
					}
				}
				for k, snap := range snapshots {
					got, err := d.Restore(k)
					if err != nil {
						t.Fatalf("size=%d cs=%d %v restore %d: %v", size, cs, m, k, err)
					}
					if !bytes.Equal(got, snap) {
						t.Fatalf("size=%d cs=%d %v restore %d mismatch", size, cs, m, k)
					}
				}
			}
		}
	}
}

func TestShiftedDuplicateSavesData(t *testing.T) {
	// Checkpoint 1 copies an aligned block from elsewhere in the
	// buffer: Tree and List must store zero new data for it; Basic
	// must store the full block.
	const chunk, n = 64, 64 * 64
	rng := rand.New(rand.NewSource(5))
	base := randBuf(rng, n)
	next := append([]byte(nil), base...)
	copy(next[0:16*chunk], base[32*chunk:48*chunk]) // move 16 chunks

	type result struct{ data int64 }
	results := map[checkpoint.Method]result{}
	for _, m := range []checkpoint.Method{checkpoint.MethodBasic, checkpoint.MethodList, checkpoint.MethodTree} {
		d := mustNew(t, m, n, Options{ChunkSize: chunk})
		if _, _, err := d.Checkpoint(base); err != nil {
			t.Fatal(err)
		}
		_, st, err := d.Checkpoint(next)
		if err != nil {
			t.Fatal(err)
		}
		results[m] = result{data: st.DataBytes}
		if got, err := d.Restore(1); err != nil || !bytes.Equal(got, next) {
			t.Fatalf("%v shifted restore failed: %v", m, err)
		}
	}
	if results[checkpoint.MethodTree].data != 0 {
		t.Fatalf("Tree stored %d data bytes for a pure move", results[checkpoint.MethodTree].data)
	}
	if results[checkpoint.MethodList].data != 0 {
		t.Fatalf("List stored %d data bytes for a pure move", results[checkpoint.MethodList].data)
	}
	if results[checkpoint.MethodBasic].data != 16*chunk {
		t.Fatalf("Basic stored %d data bytes, want %d", results[checkpoint.MethodBasic].data, 16*chunk)
	}
}

func TestSpatialDuplicationWithinFirstCheckpoint(t *testing.T) {
	// A buffer made of one chunk repeated: Tree and List store the
	// chunk once; Full/Basic store everything.
	const chunk = 128
	rng := rand.New(rand.NewSource(6))
	unit := randBuf(rng, chunk)
	data := bytes.Repeat(unit, 256)

	for _, m := range []checkpoint.Method{checkpoint.MethodList, checkpoint.MethodTree} {
		d := mustNew(t, m, len(data), Options{ChunkSize: chunk})
		_, st, err := d.Checkpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		if st.DataBytes != chunk {
			t.Errorf("%v: stored %d bytes of a fully repetitive buffer, want %d", m, st.DataBytes, chunk)
		}
		if got, err := d.Restore(0); err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%v repetitive restore failed: %v", m, err)
		}
	}
}

func TestTreeMetadataNotLargerThanList(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	size := 32768
	buf := randBuf(rng, size)
	dt := mustNew(t, checkpoint.MethodTree, size, Options{ChunkSize: 64})
	dl := mustNew(t, checkpoint.MethodList, size, Options{ChunkSize: 64})
	for k := 0; k < 8; k++ {
		if k > 0 {
			mutate(rng, buf, 4, 1)
		}
		_, ts, err := dt.Checkpoint(buf)
		if err != nil {
			t.Fatal(err)
		}
		_, ls, err := dl.Checkpoint(buf)
		if err != nil {
			t.Fatal(err)
		}
		if ts.MetadataBytes > ls.MetadataBytes {
			t.Fatalf("ckpt %d: Tree metadata %d > List %d", k, ts.MetadataBytes, ls.MetadataBytes)
		}
	}
	if dt.Record().TotalBytes() > dl.Record().TotalBytes() {
		t.Fatalf("Tree record %d B > List record %d B",
			dt.Record().TotalBytes(), dl.Record().TotalBytes())
	}
}

func TestSingleStageAblationMissesSameCheckpointShifts(t *testing.T) {
	// Same construction as Figure 2: nodes 13,14 duplicate chunks that
	// are first occurrences of the *same* checkpoint. Single-stage
	// labeling cannot see them (the hazard §2.2's two-stage
	// parallelization avoids), so it stores their bytes again — but
	// restore must still be correct.
	const chunk = 64
	rng := rand.New(rand.NewSource(8))
	base := randBuf(rng, 8*chunk)
	next := append([]byte(nil), base...)
	fresh := randBuf(rng, 2*chunk)
	copy(next[0:2*chunk], fresh)
	copy(next[4*chunk:6*chunk], fresh) // same-checkpoint duplicate

	run := func(single bool) Stats {
		d := mustNew(t, checkpoint.MethodTree, len(base), Options{ChunkSize: chunk, SingleStage: single})
		if _, _, err := d.Checkpoint(base); err != nil {
			t.Fatal(err)
		}
		_, st, err := d.Checkpoint(next)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := d.Restore(1); err != nil || !bytes.Equal(got, next) {
			t.Fatalf("single=%v restore failed: %v", single, err)
		}
		return st
	}
	two := run(false)
	one := run(true)
	if two.DataBytes != 2*chunk {
		t.Fatalf("two-stage stored %d bytes, want %d", two.DataBytes, 2*chunk)
	}
	// Leaf-level de-duplication is unaffected (the map insert dedups
	// regardless of order), but the missed interior lookups fragment
	// the shifted region into more, smaller metadata entries.
	if one.DataBytes != two.DataBytes {
		t.Fatalf("single-stage changed data bytes: %d vs %d", one.DataBytes, two.DataBytes)
	}
	if one.MetadataBytes <= two.MetadataBytes {
		t.Fatalf("single-stage metadata (%d B) not larger than two-stage (%d B)",
			one.MetadataBytes, two.MetadataBytes)
	}
	if one.NumShiftDupl <= two.NumShiftDupl {
		t.Fatalf("single-stage emitted %d shift regions, two-stage %d — expected fragmentation",
			one.NumShiftDupl, two.NumShiftDupl)
	}
}

func TestMapFullReturnsError(t *testing.T) {
	d := mustNew(t, checkpoint.MethodTree, 4096, Options{ChunkSize: 32, MapCapacity: 4})
	if _, _, err := d.Checkpoint(randBuf(rand.New(rand.NewSource(9)), 4096)); err == nil {
		t.Fatal("checkpoint with tiny map succeeded")
	}
}

func TestStatsAndModeledTime(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := randBuf(rng, 1<<20)
	d := mustNew(t, checkpoint.MethodTree, len(data), Options{ChunkSize: 128})
	_, st, err := d.Checkpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.DedupTime <= 0 || st.TransferTime <= 0 {
		t.Fatalf("modeled times not positive: %v %v", st.DedupTime, st.TransferTime)
	}
	if st.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	if st.Ratio() < 0.9 || st.Ratio() > 1.1 {
		t.Fatalf("first-checkpoint ratio %.3f not ~1", st.Ratio())
	}
	if st.Method != checkpoint.MethodTree || st.ChunkSize != 128 || st.CkptID != 0 {
		t.Fatalf("stats identity wrong: %+v", st)
	}
	if d.Device().Elapsed() <= 0 {
		t.Fatal("device clock did not advance")
	}
	if (Stats{}).Throughput() != 0 || (Stats{}).Ratio() != 0 {
		t.Fatal("zero stats not handled")
	}
}

func TestUnfusedChargesMoreLaunches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randBuf(rng, 1<<18)

	run := func(unfused bool) (int64, []byte) {
		dev := newTestDevice()
		d, err := New(checkpoint.MethodTree, len(data), dev, Options{ChunkSize: 64, Unfused: unfused})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		diff, _, err := d.Checkpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		var launches int64
		for name, st := range dev.Stats() {
			if name != "d2h" {
				launches += st.Launches
			}
		}
		var enc bytes.Buffer
		if err := diff.Encode(&enc); err != nil {
			t.Fatal(err)
		}
		return launches, enc.Bytes()
	}
	fusedLaunches, fusedDiff := run(false)
	unfusedLaunches, unfusedDiff := run(true)
	if fusedLaunches != 1 {
		t.Fatalf("fused pipeline made %d launches, want 1", fusedLaunches)
	}
	if unfusedLaunches <= fusedLaunches {
		t.Fatalf("unfused launches %d not greater than fused %d", unfusedLaunches, fusedLaunches)
	}
	if !bytes.Equal(fusedDiff, unfusedDiff) {
		t.Fatal("kernel fusion changed the diff bytes")
	}
}

func TestGatherModesProduceSameDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randBuf(rng, 1<<17)
	var diffs [][]byte
	for _, perThread := range []bool{false, true} {
		d := mustNew(t, checkpoint.MethodTree, len(data), Options{ChunkSize: 64, PerThreadGather: perThread})
		diff, _, err := d.Checkpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		var enc bytes.Buffer
		if err := diff.Encode(&enc); err != nil {
			t.Fatal(err)
		}
		diffs = append(diffs, enc.Bytes())
	}
	if !bytes.Equal(diffs[0], diffs[1]) {
		t.Fatal("gather mode changed the diff bytes")
	}
}

func TestDeterministicDiffBytes(t *testing.T) {
	// Two runs over the same data with different worker counts must
	// produce byte-identical diffs (determinism despite racing
	// inserts).
	rng := rand.New(rand.NewSource(13))
	base := randBuf(rng, 1<<16)
	next := append([]byte(nil), base...)
	mutate(rng, next, 5, 3)

	encode := func(workers int) []byte {
		dev := device.New(device.A100(), parallel.NewPool(workers), nil)
		d, err := New(checkpoint.MethodTree, len(base), dev, Options{ChunkSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		var out bytes.Buffer
		for _, b := range [][]byte{base, next} {
			diff, _, err := d.Checkpoint(b)
			if err != nil {
				t.Fatal(err)
			}
			if err := diff.Encode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return out.Bytes()
	}
	a := encode(1)
	b := encode(8)
	if !bytes.Equal(a, b) {
		t.Fatal("diff bytes depend on worker count")
	}
}

func TestLabelString(t *testing.T) {
	for l, w := range map[Label]string{
		LabelNone: "NONE", LabelFixedDupl: "FIXED_DUPL", LabelFirstOcur: "FIRST_OCUR",
		LabelShiftDupl: "SHIFT_DUPL", LabelMixed: "MIXED",
	} {
		if l.String() != w {
			t.Fatalf("%d.String()=%q want %q", l, l.String(), w)
		}
	}
	if Label(200).String() == "" {
		t.Fatal("unknown label has empty name")
	}
}

func TestAccessors(t *testing.T) {
	d := mustNew(t, checkpoint.MethodTree, 10000, Options{ChunkSize: 100})
	if d.Method() != checkpoint.MethodTree || d.ChunkSize() != 100 || d.NumChunks() != 100 {
		t.Fatal("accessors wrong")
	}
	if d.Record() == nil || d.Device() == nil {
		t.Fatal("nil accessors")
	}
	d.Close()
	d.Close() // idempotent
}

// Benchmarks: real wall-clock of each method's checkpoint path on a
// 4 MiB buffer with 1% sparse updates per iteration.
func benchmarkMethod(b *testing.B, m checkpoint.Method, opts Options) {
	const size = 4 << 20
	rng := rand.New(rand.NewSource(61))
	buf := make([]byte, size)
	rng.Read(buf)
	dev := device.New(device.A100(), parallel.NewPool(0), nil)
	d, err := New(m, size, dev, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if _, _, err := d.Checkpoint(buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := rng.Intn(size - size/100)
		rng.Read(buf[off : off+size/100])
		if _, _, err := d.Checkpoint(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointFull(b *testing.B) {
	benchmarkMethod(b, checkpoint.MethodFull, Options{ChunkSize: 128})
}
func BenchmarkCheckpointBasic(b *testing.B) {
	benchmarkMethod(b, checkpoint.MethodBasic, Options{ChunkSize: 128})
}
func BenchmarkCheckpointList(b *testing.B) {
	benchmarkMethod(b, checkpoint.MethodList, Options{ChunkSize: 128})
}
func BenchmarkCheckpointTreeMethod(b *testing.B) {
	benchmarkMethod(b, checkpoint.MethodTree, Options{ChunkSize: 128})
}
func BenchmarkCheckpointTreeSmallChunks(b *testing.B) {
	benchmarkMethod(b, checkpoint.MethodTree, Options{ChunkSize: 32})
}
