// Package dedup implements the paper's primary contribution: scalable
// incremental checkpointing by GPU-accelerated de-duplication (Tan et
// al., ICPP 2023).
//
// Four methods are provided, matching §3.2 ("Compared state-of-the-art
// methods"):
//
//   - Full:  every checkpoint stores the complete buffer.
//   - Basic: chunks are hashed and compared against the same offset of
//     the previous checkpoint; a bitmap plus the changed chunks are
//     stored (dirty-chunk tracking, no spatial redundancy).
//   - List:  the full hash-table based de-duplication of the Tree
//     method but without metadata compaction — every first-occurrence
//     and shifted-duplicate chunk gets its own metadata entry.
//   - Tree:  the contribution — Algorithm 1. Chunk digests are the
//     leaves of a Merkle tree; contiguous regions with uniform labels
//     are consolidated bottom-up into a close-to-minimal set of
//     non-overlapping regions, shrinking metadata dramatically.
//
// All methods execute their data-parallel phases for real on the
// simulated device's worker pool and charge modeled GPU time to the
// device clock (see package device).
package dedup

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/hashmap"
	"github.com/gpuckpt/gpuckpt/internal/merkle"
	"github.com/gpuckpt/gpuckpt/internal/murmur3"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// Label classifies a tree node during one checkpoint, following
// Algorithm 1. The zero value means "not yet labeled".
type Label uint8

const (
	// LabelNone marks an unprocessed node.
	LabelNone Label = iota
	// LabelFixedDupl marks a region identical to the same offset of
	// the previous checkpoint; it costs nothing in the diff.
	LabelFixedDupl
	// LabelFirstOcur marks a region seen for the first time in the
	// entire checkpoint record; its bytes enter the diff.
	LabelFirstOcur
	// LabelShiftDupl marks a region identical to a region recorded at
	// a different position (same or earlier checkpoint); only a
	// reference enters the diff.
	LabelShiftDupl
	// LabelMixed marks an interior node whose children could not be
	// consolidated; its children were emitted as region roots.
	LabelMixed
)

// String returns the Algorithm 1 name of the label.
func (l Label) String() string {
	switch l {
	case LabelNone:
		return "NONE"
	case LabelFixedDupl:
		return "FIXED_DUPL"
	case LabelFirstOcur:
		return "FIRST_OCUR"
	case LabelShiftDupl:
		return "SHIFT_DUPL"
	case LabelMixed:
		return "MIXED"
	default:
		return fmt.Sprintf("Label(%d)", uint8(l))
	}
}

// Options tunes a Deduplicator. The zero value reproduces the paper's
// configuration; the Disable*/Per*/Unfused knobs exist for the
// ablation benchmarks of the design choices in §2.4.
type Options struct {
	// ChunkSize is the de-duplication granularity in bytes (§3.3
	// sweeps 32..512). Default 128.
	ChunkSize int
	// Seed is the Murmur3 seed.
	Seed uint32
	// MapCapacity overrides the historical-record hash-table sizing
	// (default: 3x the node count, which accommodates several
	// checkpoints of moderate change rate).
	MapCapacity int
	// SingleStage disables the two-stage parallelization of §2.2
	// (first-occurrence subtrees before shifted-duplicate subtrees).
	// In single-stage mode shifted regions cannot match
	// first-occurrence regions registered in the same checkpoint,
	// reproducing the missed-de-duplication hazard the paper avoids.
	SingleStage bool
	// PerThreadGather replaces the team-based coalesced chunk gather
	// with one thread per chunk (§2.4 serialization ablation), which
	// the cost model charges an uncoalesced-access penalty for.
	PerThreadGather bool
	// Unfused launches one kernel per phase and per tree level
	// instead of a single fused kernel (§2.4 fused-kernel ablation),
	// multiplying kernel-launch latency.
	Unfused bool
	// HashCostMultiplier scales the modeled hashing cost; 0 means 1.
	// The cryptographic-hash ablation (§2.4: "slow cryptographic hash
	// functions such as MD5 would introduce a bottleneck") sets ~20.
	HashCostMultiplier float64
	// Compressor, when set, compresses the gathered first-occurrence
	// data inside each diff — the §5 future-work extension
	// ("compressing the first-time occurrences in the difference").
	// The compressed form is kept only when it is actually smaller.
	Compressor compress.Codec
	// StreamingTransfer models the §5 streaming extension: the
	// device-to-host transfer of the diff overlaps the de-duplication
	// of the next regions, so the modeled checkpoint time becomes
	// max(dedup, transfer) instead of their sum.
	StreamingTransfer bool
	// VerifyDuplicates byte-compares every shifted-duplicate chunk
	// against its recorded source before trusting the digest match —
	// the §2.4 hash-collision mitigation ("a cache of chunks that can
	// be directly compared"). Leaf-level only; consolidated interior
	// regions inherit their children's verification.
	VerifyDuplicates bool
	// AutoFallback deactivates incremental checkpointing for a
	// checkpoint whose data "fully changes during the checkpoint
	// interval" (§2.4: "this can be easily detected, and incremental
	// checkpointing can be deactivated"): when the gathered
	// first-occurrence data exceeds 90% of the buffer, a plain Full
	// diff is stored instead, avoiding the worst-case metadata.
	AutoFallback bool
	// FaultInjector, when set, is consulted at the pipeline's stage
	// boundaries ("front" on the caller's goroutine, "back" and
	// "append" on the backend goroutine) with the checkpoint id; a
	// non-nil return fails that stage as a kernel failure would. The
	// fault-injection seam of internal/faults — nil in production.
	FaultInjector func(stage string, ckpt uint32) error
}

func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 128
	}
	if o.HashCostMultiplier <= 0 {
		o.HashCostMultiplier = 1
	}
	return o
}

// Stats reports the outcome of one Checkpoint call.
type Stats struct {
	Method    checkpoint.Method
	CkptID    uint32
	ChunkSize int

	// InputBytes is the size of the checkpointed buffer.
	InputBytes int64
	// DiffBytes is the serialized size of the produced diff.
	DiffBytes int64
	// MetadataBytes is the metadata portion of the diff.
	MetadataBytes int64
	// DataBytes is the gathered-data portion of the diff.
	DataBytes int64

	// Region/label census.
	NumFirstOcur int // first-occurrence regions emitted
	NumShiftDupl int // shifted-duplicate regions emitted
	FixedLeaves  int // leaves labeled FIXED_DUPL
	FirstLeaves  int // leaves labeled FIRST_OCUR
	ShiftLeaves  int // leaves labeled SHIFT_DUPL

	// FastPath reports that the checkpoint was entirely unchanged, so
	// the consolidation sweeps were skipped (§2.4's top-down
	// mitigation of unnecessary intermediate-node work).
	FastPath bool
	// FellBack reports that AutoFallback replaced the incremental diff
	// with a Full one because the buffer had fully changed.
	FellBack bool

	// DedupTime is the modeled on-device de-duplication time;
	// TransferTime the modeled device-to-host copy of the diff.
	DedupTime    time.Duration
	TransferTime time.Duration
}

// Throughput returns the paper's throughput metric (§3.2): original
// data size divided by the time to create and copy the incremental
// checkpoint to host memory, in bytes/second.
func (s Stats) Throughput() float64 {
	total := s.DedupTime + s.TransferTime
	if total <= 0 {
		return 0
	}
	return float64(s.InputBytes) / total.Seconds()
}

// Ratio returns the per-checkpoint de-duplication ratio (full size
// divided by diff size).
func (s Stats) Ratio() float64 {
	if s.DiffBytes == 0 {
		return 0
	}
	return float64(s.InputBytes) / float64(s.DiffBytes)
}

// Deduplicator creates the incremental checkpoint record of one
// process's buffer on one (simulated) GPU. It retains the Merkle tree
// and the historical record of unique hashes across checkpoints, as
// each process does in its own GPU memory (§2.1).
//
// A Deduplicator is not safe for concurrent use; the parallelism lives
// inside the kernels it launches (and, with CheckpointAsync, in the
// single pipelined backend goroutine it manages internally).
type Deduplicator struct {
	method checkpoint.Method
	opts   Options
	dev    *device.Device

	dataLen int
	nChunks int
	tree    *merkle.Tree
	labels  []Label
	hmap    *hashmap.Map
	record  *checkpoint.Record
	ckptID  uint32

	// hashChunk fingerprints one chunk. It defaults to Murmur3 with
	// the configured seed; tests substitute weak hashes to exercise
	// the collision-mitigation path.
	hashChunk func(data []byte) murmur3.Digest

	devBytes int64 // device memory charged at construction
	closed   bool

	// Persistent per-checkpoint scratch. Hoisting it here (instead of
	// allocating inside each sweep) makes the steady-state hot path
	// allocation-free: the kernel bodies below are created once in New
	// and read their per-launch parameters from these fields.
	levels  [][2]int // cached tree level intervals (static geometry)
	l       launcher // front/sync kernel accounting
	backL   launcher // pipelined-backend kernel accounting
	gs      sweepScratch
	regions regionCollector
	arena   []checkpoint.Diff // batch-allocated Diffs handed out one at a time

	frontData  []byte // buffer being hashed/labeled by the front half
	curLevelLo int    // first node index of the level being swept

	// gather/scan scratch. Used by the Tree backend and by the
	// Basic/List front halves — never both concurrently, since one
	// Deduplicator runs exactly one method.
	gatherData    []byte
	gatherFirsts  []uint32
	gatherOut     []byte
	gatherSizes   []int64
	gatherOffsets []int64

	basicChanged []int64
	basicBitmap  []byte
	basicOut     []byte
	zeroBitmap   []byte // shared all-zero bitmap for unchanged Basic checkpoints

	// Kernel bodies stored once so launches do not allocate closures.
	resetBody       func(lo, hi int)
	leafBody        func(lo, hi int)
	reconcileBody   func(lo, hi int)
	firstLevelBody  func(lo, hi int)
	consolidateBody func(lo, hi int)
	basicHashBody   func(lo, hi int)
	basicBitmapBody func(lo, hi int)
	basicSizesBody  func(lo, hi int)
	basicCopyBody   func(lo, hi int)
	gatherSizesBody func(lo, hi int)
	gatherTeamBody  func(t parallel.Team)
	gatherPerThread func(lo, hi int)

	// Pipelined-backend state (see async.go). backDone is non-nil while
	// a backend goroutine is in flight; asyncErr poisons the pipeline
	// after a backend failure.
	backDone chan struct{}
	asyncErr error
}

// sweepScratch holds the atomic counters the labeling sweeps
// accumulate into, plus the sweep error slot, reused across
// checkpoints.
type sweepScratch struct {
	mapOps, fixedN, firstN, shiftN, verified atomic.Int64 //ckptlint:atomic
	promoted, hashed, lookups, changedN      atomic.Int64 //ckptlint:atomic

	errMu sync.Mutex
	//ckptlint:guardedby errMu
	err error
}

// fail records the first error raised inside a parallel sweep.
func (g *sweepScratch) fail(err error) {
	g.errMu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.errMu.Unlock()
}

// takeErr returns and clears the recorded sweep error.
func (g *sweepScratch) takeErr() error {
	g.errMu.Lock()
	err := g.err
	g.err = nil
	g.errMu.Unlock()
	return err
}

// regionCollector accumulates emitted region roots from concurrent
// sweep blocks into one grow-only buffer reused across checkpoints.
type regionCollector struct {
	mu sync.Mutex
	//ckptlint:guardedby mu
	buf []emittedRegion
}

func (rc *regionCollector) add(rs []emittedRegion) {
	rc.mu.Lock()
	rc.buf = append(rc.buf, rs...)
	rc.mu.Unlock()
}

func (rc *regionCollector) reset() {
	rc.mu.Lock()
	rc.buf = rc.buf[:0]
	rc.mu.Unlock()
}

// appendOne adds a single region root (the tree root, emitted by the
// orchestrating goroutine after the parallel sweep completes).
func (rc *regionCollector) appendOne(r emittedRegion) {
	rc.mu.Lock()
	rc.buf = append(rc.buf, r)
	rc.mu.Unlock()
}

// snapshot returns the collected regions. The returned slice aliases
// the collector's buffer and is valid until the next reset.
func (rc *regionCollector) snapshot() []emittedRegion {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.buf
}

// diffArenaSize batches Diff allocations: the record retains every
// Diff, so they cannot be pooled, but handing them out of a
// block-allocated arena amortizes the per-checkpoint allocation away.
const diffArenaSize = 64

// newDiff returns a zeroed Diff from the arena.
func (d *Deduplicator) newDiff() *checkpoint.Diff {
	if len(d.arena) == 0 {
		d.arena = make([]checkpoint.Diff, diffArenaSize)
	}
	diff := &d.arena[0]
	d.arena = d.arena[1:]
	return diff
}

// wireGeom returns the diff-header geometry fields. New validates the
// geometry (dataLen > 0, 0 < ChunkSize ≤ MaxUint32), so the narrowing
// here cannot truncate; the panic is a backstop for that invariant.
func (d *Deduplicator) wireGeom() (dataLen uint64, chunkSize uint32) {
	n, cs := d.dataLen, d.opts.ChunkSize
	if n < 0 || cs <= 0 || int64(cs) > math.MaxUint32 {
		panic("dedup: invalid geometry escaped New validation")
	}
	return uint64(n), uint32(cs)
}

// growInt64 returns s resized to n entries, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// ErrClosed is returned by operations on a closed Deduplicator.
var ErrClosed = errors.New("dedup: deduplicator closed")

// New creates a Deduplicator for buffers of exactly dataLen bytes
// using the given method and device. Device memory for the Merkle
// tree, label array and hash table is reserved against the modeled
// capacity and released by Close.
func New(method checkpoint.Method, dataLen int, dev *device.Device, opts Options) (*Deduplicator, error) {
	if dataLen <= 0 {
		return nil, fmt.Errorf("dedup: data length must be positive, got %d", dataLen)
	}
	if dev == nil {
		return nil, errors.New("dedup: nil device")
	}
	opts = opts.withDefaults()
	if int64(opts.ChunkSize) > math.MaxUint32 {
		return nil, fmt.Errorf("dedup: chunk size %d does not fit the diff format", opts.ChunkSize)
	}
	switch method {
	case checkpoint.MethodFull, checkpoint.MethodBasic, checkpoint.MethodList, checkpoint.MethodTree:
	default:
		return nil, fmt.Errorf("dedup: unknown method %v", method)
	}

	d := &Deduplicator{
		method:  method,
		opts:    opts,
		dev:     dev,
		dataLen: dataLen,
		nChunks: merkle.NumChunks(dataLen, opts.ChunkSize),
		record:  checkpoint.NewRecord(),
	}
	seed := opts.Seed
	d.hashChunk = func(data []byte) murmur3.Digest { return murmur3.Sum128(data, seed) }
	d.record.SetPool(dev.Pool())
	d.tree = merkle.New(d.nChunks)
	d.levels = d.tree.Levels()
	d.initBodies()

	var devBytes int64
	devBytes += int64(d.tree.NumNodes) * 16 // digests
	if method == checkpoint.MethodTree || method == checkpoint.MethodList || method == checkpoint.MethodBasic {
		d.labels = make([]Label, d.tree.NumNodes)
		devBytes += int64(d.tree.NumNodes)
	}
	if method == checkpoint.MethodBasic {
		d.basicChanged = make([]int64, d.nChunks)
	}
	if method == checkpoint.MethodTree || method == checkpoint.MethodList {
		capacity := opts.MapCapacity
		if capacity <= 0 {
			capacity = 3 * d.tree.NumNodes
		}
		d.hmap = hashmap.New(capacity)
		devBytes += int64(d.hmap.Capacity()) * 28
	}
	if err := dev.Malloc(devBytes); err != nil {
		return nil, fmt.Errorf("dedup: reserving device memory: %w", err)
	}
	d.devBytes = devBytes
	return d, nil
}

// Method returns the de-duplication method of this instance.
func (d *Deduplicator) Method() checkpoint.Method { return d.method }

// ChunkSize returns the configured chunk granularity.
func (d *Deduplicator) ChunkSize() int { return d.opts.ChunkSize }

// NumChunks returns the leaf count of the Merkle tree.
func (d *Deduplicator) NumChunks() int { return d.nChunks }

// Record returns the checkpoint lineage accumulated so far. If a
// pipelined checkpoint is in flight its backend is drained first, so
// the returned record is complete.
func (d *Deduplicator) Record() *checkpoint.Record {
	d.drainBackend()
	return d.record
}

// Device returns the device the deduplicator runs on.
func (d *Deduplicator) Device() *device.Device { return d.dev }

// Close releases the modeled device memory, draining any in-flight
// pipelined backend first.
func (d *Deduplicator) Close() {
	if !d.closed {
		d.drainBackend()
		d.dev.Free(d.devBytes)
		d.closed = true
	}
}

// Restore reconstructs the buffer as of checkpoint k.
func (d *Deduplicator) Restore(k int) ([]byte, error) {
	if err := d.waitBackend(); err != nil {
		return nil, err
	}
	return d.record.Restore(k)
}

// compressDiff applies the configured codec to the diff's data section
// (keeping the compressed form only when it actually helps), charges
// the modeled compression time, and returns that duration.
func (d *Deduplicator) compressDiff(diff *checkpoint.Diff) (time.Duration, error) {
	if d.opts.Compressor == nil || len(diff.Data) == 0 {
		return 0, nil
	}
	comp, err := d.opts.Compressor.Compress(diff.Data)
	if err != nil {
		return 0, fmt.Errorf("dedup: compressing diff data: %w", err)
	}
	dur := time.Duration(float64(len(diff.Data)) / d.opts.Compressor.ModeledRate() * float64(time.Second))
	d.dev.ChargeDuration("compress", dur)
	if len(comp) < len(diff.Data) {
		diff.DataCodec = compress.IDOf(d.opts.Compressor)
		diff.RawDataLen = uint64(len(diff.Data))
		diff.Data = comp
	}
	return dur, nil
}

// Checkpoint de-duplicates data against the checkpoint record,
// appends the resulting diff to the lineage, charges the modeled
// kernel and transfer time, and returns the diff with its statistics.
func (d *Deduplicator) Checkpoint(data []byte) (*checkpoint.Diff, Stats, error) {
	if d.closed {
		return nil, Stats{}, ErrClosed
	}
	if err := d.waitBackend(); err != nil {
		return nil, Stats{}, err
	}
	if len(data) != d.dataLen {
		return nil, Stats{}, fmt.Errorf("dedup: buffer length %d, deduplicator configured for %d",
			len(data), d.dataLen)
	}
	startClock := d.dev.Elapsed()

	var (
		diff *checkpoint.Diff
		st   Stats
		err  error
	)
	switch d.method {
	case checkpoint.MethodFull:
		diff, st, err = d.checkpointFull(data)
	case checkpoint.MethodBasic:
		diff, st, err = d.checkpointBasic(data)
	case checkpoint.MethodList:
		diff, st, err = d.checkpointList(data)
	case checkpoint.MethodTree:
		diff, st, err = d.checkpointTree(data)
	}
	if err != nil {
		return nil, Stats{}, err
	}
	if _, err := d.compressDiff(diff); err != nil {
		return nil, Stats{}, err
	}
	st.Method = d.method
	st.CkptID = d.ckptID
	st.ChunkSize = d.opts.ChunkSize
	st.InputBytes = int64(d.dataLen)
	st.DiffBytes = diff.TotalBytes()
	st.MetadataBytes = diff.MetadataBytes()
	st.DataBytes = int64(len(diff.Data))
	st.DedupTime = d.dev.Elapsed() - startClock

	if d.opts.StreamingTransfer {
		// §5 streaming extension: the transfer overlaps the
		// de-duplication pipeline, so only the non-overlapped tail
		// blocks the application.
		xfer := d.dev.EstimateTransfer(diff.TotalBytes())
		tail := xfer - st.DedupTime
		if tail < 0 {
			tail = 0
		}
		d.dev.ChargeDuration("d2h-streamed", tail)
		st.TransferTime = tail
	} else {
		st.TransferTime = d.dev.CopyToHost(diff.TotalBytes())
	}

	if err := d.record.Append(diff); err != nil {
		return nil, Stats{}, fmt.Errorf("dedup: appending diff: %w", err)
	}
	d.ckptID++
	return diff, st, nil
}

// launcher accumulates kernel costs, modeling either a single fused
// kernel (one launch latency for the whole pipeline, §2.4) or one
// launch per phase/level. It also tracks the total modeled duration it
// charged, which the pipelined engine needs because concurrent stages
// make device-clock deltas meaningless.
type launcher struct {
	dev     *device.Device
	fused   bool
	name    string
	pending device.Cost
	any     bool
	elapsed time.Duration
}

// reset reinitializes the launcher for one checkpoint, clearing any
// pending cost and the elapsed accumulator.
func (l *launcher) reset(dev *device.Device, fused bool, name string) {
	*l = launcher{dev: dev, fused: fused, name: name}
}

// frontLauncher resets and returns the reusable front-stage launcher.
func (d *Deduplicator) frontLauncher(name string) *launcher {
	d.l.reset(d.dev, !d.opts.Unfused, name)
	return &d.l
}

// phase charges one pipeline phase. In fused mode the cost is folded
// into a single pending launch; otherwise it is charged immediately as
// its own kernel.
func (l *launcher) phase(name string, c device.Cost) {
	if l.fused {
		l.pending = l.pending.Add(c)
		l.any = true
		return
	}
	l.elapsed += l.dev.Charge(name, c)
}

// flush submits the fused kernel if one is pending.
func (l *launcher) flush() {
	if l.fused && l.any {
		l.elapsed += l.dev.Charge(l.name, l.pending)
		l.pending = device.Cost{}
		l.any = false
	}
}

// chunkSpan returns the byte range of chunk c, clamped at the tail.
func (d *Deduplicator) chunkSpan(c int) (lo, hi int) {
	lo = c * d.opts.ChunkSize
	hi = lo + d.opts.ChunkSize
	if hi > d.dataLen {
		hi = d.dataLen
	}
	return lo, hi
}
