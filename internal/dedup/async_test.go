package dedup

import (
	"bytes"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/compress"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

func newTestDedup(t *testing.T, method checkpoint.Method, size, workers int, opts Options) *Deduplicator {
	t.Helper()
	pool := parallel.NewPool(workers)
	t.Cleanup(pool.Close)
	dev := device.New(device.A100(), pool, nil)
	d, err := New(method, size, dev, opts)
	if err != nil {
		t.Fatalf("New(%v): %v", method, err)
	}
	t.Cleanup(d.Close)
	return d
}

func encodeDiff(t *testing.T, d *checkpoint.Diff) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestAsyncMatchesSync pins the pipelined engine's core contract: for
// every method and a spread of option sets, CheckpointAsync produces
// byte-identical serialized diffs, identical label/region statistics
// and identical restores to the sequential Checkpoint path.
func TestAsyncMatchesSync(t *testing.T) {
	snaps := workloadSnapshots(71, 48*1024, 8)
	size := len(snaps[0])

	optionSets := []Options{
		{ChunkSize: 64},
		{ChunkSize: 64, StreamingTransfer: true},
		{ChunkSize: 64, VerifyDuplicates: true},
		{ChunkSize: 64, AutoFallback: true},
		{ChunkSize: 64, Compressor: compress.NewCascaded()},
		{ChunkSize: 64, SingleStage: true, PerThreadGather: true, Unfused: true},
		{ChunkSize: 64, Compressor: compress.NewLZ4(), StreamingTransfer: true, VerifyDuplicates: true, AutoFallback: true},
	}

	for _, method := range checkpoint.Methods() {
		for oi, opts := range optionSets {
			sync := newTestDedup(t, method, size, 4, opts)
			async := newTestDedup(t, method, size, 4, opts)

			// Drive the async instance in pipelined fashion: issue every
			// checkpoint, collecting result channels, and only drain them
			// at the end so fronts genuinely overlap backends.
			chans := make([]<-chan AsyncResult, 0, len(snaps))
			for _, img := range snaps {
				ch, err := async.CheckpointAsync(img)
				if err != nil {
					t.Fatalf("%v/opts%d: CheckpointAsync: %v", method, oi, err)
				}
				chans = append(chans, ch)
			}

			syncEnc := make([][]byte, 0, len(snaps))
			syncStats := make([]Stats, 0, len(snaps))
			for _, img := range snaps {
				diff, st, err := sync.Checkpoint(img)
				if err != nil {
					t.Fatalf("%v/opts%d: Checkpoint: %v", method, oi, err)
				}
				syncEnc = append(syncEnc, encodeDiff(t, diff))
				syncStats = append(syncStats, st)
			}

			for k, ch := range chans {
				res := <-ch
				if res.Err != nil {
					t.Fatalf("%v/opts%d ckpt %d: async result: %v", method, oi, k, res.Err)
				}
				if got, want := encodeDiff(t, res.Diff), syncEnc[k]; !bytes.Equal(got, want) {
					t.Fatalf("%v/opts%d ckpt %d: async diff differs from sync (async %d bytes, sync %d bytes)",
						method, oi, k, len(got), len(want))
				}
				ss, as := syncStats[k], res.Stats
				// Modeled times legitimately differ (the pipelined gather is
				// its own kernel launch); everything else must match.
				as.DedupTime, as.TransferTime = ss.DedupTime, ss.TransferTime
				if as != ss {
					t.Fatalf("%v/opts%d ckpt %d: stats differ\nasync: %+v\nsync:  %+v", method, oi, k, as, ss)
				}
			}

			// Restores must agree bit-exactly at every checkpoint.
			for k := range snaps {
				sr, err := sync.Restore(k)
				if err != nil {
					t.Fatalf("%v/opts%d: sync restore %d: %v", method, oi, k, err)
				}
				ar, err := async.Restore(k)
				if err != nil {
					t.Fatalf("%v/opts%d: async restore %d: %v", method, oi, k, err)
				}
				if !bytes.Equal(sr, ar) {
					t.Fatalf("%v/opts%d: restore %d differs between sync and async", method, oi, k)
				}
				if !bytes.Equal(ar, snaps[k]) {
					t.Fatalf("%v/opts%d: async restore %d differs from original", method, oi, k)
				}
			}
		}
	}
}

// TestAsyncInterleavedWithSync mixes Checkpoint and CheckpointAsync on
// one instance; the pair must serialize cleanly and the record must
// stay in order.
func TestAsyncInterleavedWithSync(t *testing.T) {
	snaps := workloadSnapshots(13, 32*1024, 6)
	d := newTestDedup(t, checkpoint.MethodTree, len(snaps[0]), 4, Options{ChunkSize: 64})

	for k, img := range snaps {
		if k%2 == 0 {
			ch, err := d.CheckpointAsync(img)
			if err != nil {
				t.Fatalf("ckpt %d: %v", k, err)
			}
			defer func(k int, ch <-chan AsyncResult) {
				if res := <-ch; res.Err != nil {
					t.Errorf("ckpt %d: %v", k, res.Err)
				}
			}(k, ch)
		} else {
			if _, _, err := d.Checkpoint(img); err != nil {
				t.Fatalf("ckpt %d: %v", k, err)
			}
		}
	}
	if got := d.Record().Len(); got != len(snaps) {
		t.Fatalf("record has %d diffs, want %d", got, len(snaps))
	}
	for k := range snaps {
		state, err := d.Restore(k)
		if err != nil {
			t.Fatalf("restore %d: %v", k, err)
		}
		if !bytes.Equal(state, snaps[k]) {
			t.Fatalf("restore %d differs from original", k)
		}
	}
}

// TestAsyncClosedAndLengthErrors covers the immediate error paths.
func TestAsyncClosedAndLengthErrors(t *testing.T) {
	d := newTestDedup(t, checkpoint.MethodTree, 4096, 2, Options{ChunkSize: 64})
	if _, err := d.CheckpointAsync(make([]byte, 100)); err == nil {
		t.Fatal("wrong-length buffer accepted")
	}
	d.Close()
	if _, err := d.CheckpointAsync(make([]byte, 4096)); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// steadyStateAllocs measures the average allocations of repeated
// checkpoints of an unchanged buffer after a warmup.
func steadyStateAllocs(t *testing.T, method checkpoint.Method) float64 {
	t.Helper()
	size := 256 * 1024
	snaps := workloadSnapshots(7, size, 2)
	data := snaps[1]
	d := newTestDedup(t, method, size, 1, Options{}) // default 128-byte chunks

	for i := 0; i < 80; i++ {
		if _, _, err := d.Checkpoint(data); err != nil {
			t.Fatalf("warmup checkpoint: %v", err)
		}
	}
	return testing.AllocsPerRun(100, func() {
		if _, _, err := d.Checkpoint(data); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	})
}

// TestSteadyStateAllocationFree verifies the tentpole's zero-alloc
// invariant: once warm, checkpointing an unchanged buffer allocates
// (amortized) nothing for the incremental methods. The threshold of 1
// admits the amortized arena refill (1/64 per checkpoint) and the
// record's growing slices without admitting any real per-call
// allocation.
func TestSteadyStateAllocationFree(t *testing.T) {
	for _, method := range []checkpoint.Method{checkpoint.MethodBasic, checkpoint.MethodList, checkpoint.MethodTree} {
		if avg := steadyStateAllocs(t, method); avg >= 1 {
			t.Errorf("%v: %.2f allocs per steady-state checkpoint, want < 1", method, avg)
		}
	}
}
