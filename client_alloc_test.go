package gpuckpt

import (
	"bytes"
	"io"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// The allocation tests below exercise the session's frame machinery
// hermetically — staged writes land in io.Discard and responses come
// from canned byte slices — because any in-process server goroutine
// would allocate concurrently and pollute the AllocsPerRun counter.
// The end-to-end behavior of the same methods is covered by the
// client tests; these pin down only the steady-state allocation
// contract: ZERO allocations per frame on the push path.

// cannedFrame serializes one response frame for replay.
func cannedFrame(t *testing.T, f *wire.Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClientPushZeroAlloc measures the v3/legacy push round trip —
// stage [header|checksum] around caller-owned encoded bytes, writev,
// read the OK response — at zero allocations per frame once the
// session's buffers are warm.
func TestClientPushZeroAlloc(t *testing.T) {
	encoded := encodeFullDiff(t, 0)
	resp := cannedFrame(t, &wire.Frame{Type: wire.TPush})
	s := &session{}
	r := bytes.NewReader(resp)
	roundTrip := func() {
		if err := s.stagePush(wire.TPush, 1, 0, encoded); err != nil {
			t.Fatal(err)
		}
		if err := s.writeStaged(io.Discard); err != nil {
			t.Fatal(err)
		}
		r.Reset(resp)
		if err := s.readResp(r, wire.TPush); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm the reusable buffers
	if avg := testing.AllocsPerRun(100, roundTrip); avg != 0 {
		t.Fatalf("push round trip allocates %.1f times per frame, want 0", avg)
	}
}

// TestClientStreamPushZeroAlloc measures the v4 streaming frame path —
// stage the diff prefix with an incremental checksum over the
// scattered sections, writev, consume the out-of-band ack — at zero
// allocations per frame.
func TestClientStreamPushZeroAlloc(t *testing.T) {
	ck := chainCheckpointer(t, 2, 32<<10)
	d, err := ck.diffAt(1)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.AppendStreamAck(nil, &wire.StreamAck{Ckpt: 5, NewLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	ack := cannedFrame(t, &wire.Frame{Type: wire.TPushStream, Ckpt: 5, Payload: payload})
	s := &session{}
	r := bytes.NewReader(ack)
	pushed := 0
	var frameErr error
	frame := func() {
		size, err := s.stageStreamFrame(3, 5, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.writeStaged(io.Discard); err != nil {
			t.Fatal(err)
		}
		s.pending = append(s.pending[:0], inflight{ckpt: 5, size: size})
		r.Reset(ack)
		if _, err := s.consumeAck(r, &pushed, &frameErr); err != nil {
			t.Fatal(err)
		}
	}
	frame() // warm the reusable buffers
	if avg := testing.AllocsPerRun(100, frame); avg != 0 {
		t.Fatalf("stream frame allocates %.1f times per frame, want 0", avg)
	}
	if frameErr != nil {
		t.Fatal(frameErr)
	}
}
