package gpuckpt

// The HotPath suite tracks the REAL (wall-clock) cost of the hot path
// introduced by the persistent worker pool, the allocation-free
// Algorithm 1 and the pipelined checkpoint engine:
//
//	go test -bench=HotPath -benchmem
//	make bench-json    # regenerates BENCH_hotpath.json
//
// The Spawn variants replicate the pre-pool launch strategy (fresh
// goroutines per launch) so the pool's win stays measurable after the
// old code is gone. Steady benchmarks checkpoint an unchanged buffer —
// the allocation-free fast path — while Churn cycles through mutated
// snapshots, exercising emit/gather/serialize every iteration.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/gpuckpt/gpuckpt/internal/checkpoint"
	"github.com/gpuckpt/gpuckpt/internal/dedup"
	"github.com/gpuckpt/gpuckpt/internal/device"
	"github.com/gpuckpt/gpuckpt/internal/parallel"
)

// hotPathWorkers pins the worker count so results are comparable
// across machines regardless of GOMAXPROCS.
const hotPathWorkers = 4

// spawnForRange replicates the launch strategy the pool replaced: one
// fresh goroutine per block, joined with a WaitGroup, every launch.
func spawnForRange(workers, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = (n + workers - 1) / workers
		if grain < 1 {
			grain = 1
		}
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func launchBody(acc []int64) func(lo, hi int) {
	return func(lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		acc[lo%len(acc)] += s
	}
}

func benchPoolLaunch(b *testing.B, n int) {
	b.Helper()
	pool := parallel.NewPool(hotPathWorkers)
	defer pool.Close()
	acc := make([]int64, 8)
	body := launchBody(acc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.ForRange(n, body)
	}
}

func benchSpawnLaunch(b *testing.B, n int) {
	b.Helper()
	acc := make([]int64, 8)
	body := launchBody(acc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spawnForRange(hotPathWorkers, n, 0, body)
	}
}

// Tiny launches (n=64) hit the pool's inline short-circuit.
func BenchmarkHotPathLaunchTinyPool(b *testing.B)  { benchPoolLaunch(b, 64) }
func BenchmarkHotPathLaunchTinySpawn(b *testing.B) { benchSpawnLaunch(b, 64) }

// Small launches (n=64Ki) use the parked workers.
func BenchmarkHotPathLaunchSmallPool(b *testing.B)  { benchPoolLaunch(b, 64*1024) }
func BenchmarkHotPathLaunchSmallSpawn(b *testing.B) { benchSpawnLaunch(b, 64*1024) }

// hotPathSnapshots builds a cycle of mutated snapshots: sparse writes,
// an aligned block move, and a duplicated region — the same mutation
// families as the dedup metamorphic suite.
func hotPathSnapshots(seed int64, size, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	base := make([]byte, size)
	rng.Read(base)
	out := make([][]byte, 0, n)
	cur := base
	for k := 0; k < n; k++ {
		next := make([]byte, size)
		copy(next, cur)
		switch k % 4 {
		case 1: // sparse writes
			for w := 0; w < 16; w++ {
				off := rng.Intn(size - 64)
				rng.Read(next[off : off+64])
			}
		case 2: // aligned move
			blk := 4096
			src := rng.Intn(size/blk-1) * blk
			dst := rng.Intn(size/blk-1) * blk
			copy(next[dst:dst+blk], cur[src:src+blk])
		case 3: // write + duplicate
			off := rng.Intn(size - 8192)
			rng.Read(next[off : off+4096])
			copy(next[off+4096:off+8192], next[off:off+4096])
		}
		out = append(out, next)
		cur = next
	}
	return out
}

func newBenchDedup(b *testing.B, method checkpoint.Method, size int) *dedup.Deduplicator {
	b.Helper()
	pool := parallel.NewPool(hotPathWorkers)
	b.Cleanup(pool.Close)
	dev := device.New(device.A100(), pool, nil)
	d, err := dedup.New(method, size, dev, dedup.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

// benchSteady checkpoints an unchanged buffer: the zero-alloc fast
// path. GB/s here is real bytes scanned per wall-clock second.
func benchSteady(b *testing.B, method checkpoint.Method) {
	b.Helper()
	const size = 256 * 1024
	data := hotPathSnapshots(11, size, 2)[1]
	d := newBenchDedup(b, method, size)
	for i := 0; i < 8; i++ {
		if _, _, err := d.Checkpoint(data); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Checkpoint(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathBasicSteady(b *testing.B) { benchSteady(b, checkpoint.MethodBasic) }
func BenchmarkHotPathListSteady(b *testing.B)  { benchSteady(b, checkpoint.MethodList) }
func BenchmarkHotPathTreeSteady(b *testing.B)  { benchSteady(b, checkpoint.MethodTree) }

// BenchmarkHotPathTreeChurn cycles through mutated snapshots so every
// iteration emits, gathers and serializes real diffs.
func BenchmarkHotPathTreeChurn(b *testing.B) {
	const size = 256 * 1024
	snaps := hotPathSnapshots(23, size, 8)
	d := newBenchDedup(b, checkpoint.MethodTree, size)
	for _, img := range snaps {
		if _, _, err := d.Checkpoint(img); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Checkpoint(snaps[i%len(snaps)]); err != nil {
			b.Fatal(err)
		}
	}
}

// The pipeline pair measures one checkpoint per op over the same
// churned snapshots, sequential engine vs CheckpointAsync with one
// result in flight.
func BenchmarkHotPathTreeSequential(b *testing.B) {
	const size = 256 * 1024
	snaps := hotPathSnapshots(29, size, 8)
	d := newBenchDedup(b, checkpoint.MethodTree, size)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Checkpoint(snaps[i%len(snaps)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathTreePipelined(b *testing.B) {
	const size = 256 * 1024
	snaps := hotPathSnapshots(29, size, 8)
	d := newBenchDedup(b, checkpoint.MethodTree, size)
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	var prev <-chan dedup.AsyncResult
	for i := 0; i < b.N; i++ {
		ch, err := d.CheckpointAsync(snaps[i%len(snaps)])
		if err != nil {
			b.Fatal(err)
		}
		if prev != nil {
			if res := <-prev; res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		prev = ch
	}
	if prev != nil {
		if res := <-prev; res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// hotPathSuite is the fixed benchmark set serialized into
// BENCH_hotpath.json, in reporting order.
var hotPathSuite = []struct {
	Name string
	F    func(*testing.B)
}{
	{"HotPathLaunchTinyPool", BenchmarkHotPathLaunchTinyPool},
	{"HotPathLaunchTinySpawn", BenchmarkHotPathLaunchTinySpawn},
	{"HotPathLaunchSmallPool", BenchmarkHotPathLaunchSmallPool},
	{"HotPathLaunchSmallSpawn", BenchmarkHotPathLaunchSmallSpawn},
	{"HotPathBasicSteady", BenchmarkHotPathBasicSteady},
	{"HotPathListSteady", BenchmarkHotPathListSteady},
	{"HotPathTreeSteady", BenchmarkHotPathTreeSteady},
	{"HotPathTreeChurn", BenchmarkHotPathTreeChurn},
	{"HotPathTreeSequential", BenchmarkHotPathTreeSequential},
	{"HotPathTreePipelined", BenchmarkHotPathTreePipelined},
}

type hotPathEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	GBPerSec    float64 `json:"gb_per_s,omitempty"`
}

type hotPathReport struct {
	Note       string         `json:"note"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Benchmarks []hotPathEntry `json:"benchmarks"`
}

// TestWriteHotPathBenchJSON regenerates BENCH_hotpath.json when
// GPUCKPT_BENCH_JSON names the output file (see `make bench-json`).
// Gated behind the env var because a full measured run takes a while.
func TestWriteHotPathBenchJSON(t *testing.T) {
	path := os.Getenv("GPUCKPT_BENCH_JSON")
	if path == "" {
		t.Skip("set GPUCKPT_BENCH_JSON=<file> to regenerate the hot-path benchmark report")
	}
	report := hotPathReport{
		Note:       "real wall-clock hot path; regenerate with `make bench-json`",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    hotPathWorkers,
	}
	for _, bm := range hotPathSuite {
		r := testing.Benchmark(bm.F)
		e := hotPathEntry{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			e.GBPerSec = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e9
		}
		report.Benchmarks = append(report.Benchmarks, e)
		t.Logf("%-28s %12.1f ns/op %8d B/op %6d allocs/op %8.3f GB/s",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.GBPerSec)
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
