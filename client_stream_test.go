package gpuckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/gpuckpt/gpuckpt/internal/server"
	"github.com/gpuckpt/gpuckpt/internal/wire"
)

// chainCheckpointer builds a Checkpointer holding n tree-method
// checkpoints over a mutating random buffer.
func chainCheckpointer(t *testing.T, n, bufLen int) *Checkpointer {
	t.Helper()
	ck, err := New(Config{Method: MethodTree, ChunkSize: 128}, bufLen)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck.Close() })
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, bufLen)
	rng.Read(buf)
	for k := 0; k < n; k++ {
		if k > 0 {
			mutate(rng, buf)
		}
		if _, err := ck.Checkpoint(buf); err != nil {
			t.Fatal(err)
		}
	}
	return ck
}

// TestClientStreamPushUsed pins down that bulk pushes against a v4
// server actually take the windowed streaming path — the server's
// TPushStream counter must account for every diff — and that the
// streamed bytes land bit-exactly.
func TestClientStreamPushUsed(t *testing.T) {
	srv, addr, shutdown := startTestServerH(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const chain = 12
	ck := chainCheckpointer(t, chain, 32<<10)
	if n, err := cl.PushCheckpointer("streamed", ck); err != nil || n != chain {
		t.Fatalf("stream push: n=%d err=%v", n, err)
	}
	if got := srv.StreamPushes(); got != chain {
		t.Fatalf("server served %d stream frames, want %d", got, chain)
	}
	rec, err := cl.Pull("streamed")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ck.RestoreLatest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.Restore(chain - 1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("streamed lineage restore mismatch (err %v)", err)
	}
	// Incremental sync over the stream path: only the missing suffix.
	if n, err := cl.PushCheckpointer("streamed", ck); err != nil || n != 0 {
		t.Fatalf("re-push: n=%d err=%v", n, err)
	}
}

// TestClientV3Fallback verifies handshake-driven downgrade: against a
// server pinned to protocol 3 the same bulk-push call must complete
// over sequential TPush round trips, with zero TPushStream frames on
// the wire.
func TestClientV3Fallback(t *testing.T) {
	srv, addr, shutdown := startTestServerH(t, server.Config{Root: t.TempDir(), Protocol: 3})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const chain = 6
	ck := chainCheckpointer(t, chain, 16<<10)
	if n, err := cl.PushCheckpointer("legacy", ck); err != nil || n != chain {
		t.Fatalf("fallback push: n=%d err=%v", n, err)
	}
	if got := srv.StreamPushes(); got != 0 {
		t.Fatalf("v3 server saw %d stream frames, want 0", got)
	}
	rec, err := cl.Pull("legacy")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ck.RestoreLatest()
	got, err := rec.Restore(chain - 1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("fallback lineage restore mismatch (err %v)", err)
	}
}

// ackScript tells the scripted stream server how to answer one
// expected TPushStream frame window.
type ackScript struct {
	// order lists pending frame indices (0-based within the window, in
	// arrival order) in the order their acks go out; the default is
	// arrival order.
	order []int
	// status overrides the ack status per checkpoint id.
	status map[uint32]uint8
	// extra, when non-zero, sends one additional (unsolicited) ack for
	// that checkpoint id after the scripted ones.
	extra uint32
}

// scriptedStreamServer accepts ONE connection, performs a v4
// handshake, answers TOpen with a fixed handle, reads stream frames
// until the client stops sending, and acknowledges them per script.
// It lets the ack tests control ordering and status without racing a
// real server's pipeline.
func scriptedStreamServer(t *testing.T, window int, script ackScript) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.Handshake(conn); err != nil {
			return
		}
		sendAck := func(ckpt uint32, status uint8) error {
			a := wire.StreamAck{Ckpt: ckpt}
			if status != wire.StatusOK {
				a.Msg = fmt.Sprintf("scripted failure for checkpoint %d", ckpt)
			}
			payload, err := wire.AppendStreamAck(nil, &a)
			if err != nil {
				return err
			}
			return wire.WriteFrame(conn, &wire.Frame{
				Type: wire.TPushStream, Status: status, Ckpt: ckpt, Payload: payload,
			})
		}
		var pending []uint32
		flush := func() bool {
			order := script.order
			if order == nil {
				order = make([]int, len(pending))
				for i := range order {
					order[i] = i
				}
			}
			for _, i := range order {
				if i >= len(pending) {
					continue
				}
				ckpt := pending[i]
				status := uint8(wire.StatusOK)
				if s, ok := script.status[ckpt]; ok {
					status = s
				}
				if sendAck(ckpt, status) != nil {
					return false
				}
			}
			if script.extra != 0 {
				if sendAck(script.extra, wire.StatusOK) != nil {
					return false
				}
				script.extra = 0
			}
			pending = pending[:0]
			return true
		}
		for {
			f, err := wire.ReadFrame(conn, 0)
			if err != nil {
				return
			}
			switch f.Type {
			case wire.TOpen:
				resp := &wire.Frame{Type: wire.TOpen, Lineage: 1, Ckpt: 0, Payload: wire.EncodeOpenInfo(0)}
				if wire.WriteFrame(conn, resp) != nil {
					return
				}
			case wire.TPushStream:
				pending = append(pending, f.Ckpt)
				if len(pending) >= window && !flush() {
					return
				}
			default:
				return
			}
		}
	}()
	return ln.Addr().String()
}

func streamTestClient(t *testing.T, addr string, windowFrames int) *Client {
	t.Helper()
	cl, err := DialConfigured(addr, DialConfig{
		Timeout:      5 * time.Second,
		Retry:        RetryPolicy{MaxAttempts: 1},
		MaxConns:     1,
		WindowFrames: windowFrames,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestClientStreamAckReorder drives a full window whose acks return in
// reverse arrival order: out-of-order completion is the protocol's
// normal case and must count every push exactly once.
func TestClientStreamAckReorder(t *testing.T) {
	const chain = 4
	addr := scriptedStreamServer(t, chain, ackScript{order: []int{3, 2, 1, 0}})
	cl := streamTestClient(t, addr, chain)
	ck := chainCheckpointer(t, chain, 8<<10)
	n, err := cl.PushCheckpointer("lin", ck)
	if err != nil {
		t.Fatalf("reordered acks failed the push: %v", err)
	}
	if n != chain {
		t.Fatalf("pushed %d, want %d", n, chain)
	}
}

// TestClientStreamUnsolicitedAck verifies the window bookkeeping is
// strict: an ack for a checkpoint that is not in flight is a protocol
// violation, not something to ignore.
func TestClientStreamUnsolicitedAck(t *testing.T) {
	const chain = 3
	addr := scriptedStreamServer(t, chain, ackScript{extra: 99})
	cl := streamTestClient(t, addr, chain)
	// Two extra checkpoints keep the client reading past the scripted
	// window, where the unsolicited ack is waiting.
	ck := chainCheckpointer(t, chain+2, 8<<10)
	_, err := cl.PushCheckpointer("lin", ck)
	if err == nil {
		t.Fatal("unsolicited ack accepted")
	}
	if want := "unsolicited stream ack"; !errorContains(err, want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

// TestClientStreamFrameError verifies a per-frame error ack surfaces
// as a typed StreamFrameError naming the failed checkpoint, with the
// server's RemoteError as its cause, and that frames acked OK before
// the failure still count.
func TestClientStreamFrameError(t *testing.T) {
	const chain = 4
	addr := scriptedStreamServer(t, chain, ackScript{
		status: map[uint32]uint8{2: wire.StatusErr, 3: wire.StatusErr},
	})
	cl := streamTestClient(t, addr, chain)
	ck := chainCheckpointer(t, chain, 8<<10)
	n, err := cl.PushCheckpointer("lin", ck)
	if err == nil {
		t.Fatal("failed frame acked as success")
	}
	var fe *wire.StreamFrameError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a StreamFrameError", err)
	}
	// Checkpoints 2 and 3 both failed; the lowest is the root cause.
	if fe.Ckpt != 2 {
		t.Fatalf("failed frame %d reported, want root cause 2", fe.Ckpt)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("frame error %v does not unwrap to RemoteError", err)
	}
	if n != 2 {
		t.Fatalf("counted %d pushed, want the 2 acked OK", n)
	}
}

// TestClientStreamWindowBounds verifies the frame window holds: with
// WindowFrames=2 against a server that only acks once two frames are
// pending, a longer chain must still complete — the client has to
// drain acks at the window edge rather than deadlock or overrun.
func TestClientStreamWindowBounds(t *testing.T) {
	addr := scriptedStreamServer(t, 2, ackScript{})
	cl := streamTestClient(t, addr, 2)
	ck := chainCheckpointer(t, 6, 8<<10)
	n, err := cl.PushCheckpointer("lin", ck)
	if err != nil {
		t.Fatalf("windowed push: %v", err)
	}
	if n != 6 {
		t.Fatalf("pushed %d, want 6", n)
	}
}

func errorContains(err error, substr string) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte(substr))
}

// TestClientStreamFrameBytes cross-checks the zero-copy frame stager
// against the canonical encoder: all three frames coalesce into ONE
// flush, and the scattered segments (staged prefixes, bitmap refs,
// data refs) must concatenate to exactly the back-to-back sequence of
// [frame header | CRC32C(Encode bytes) | Encode bytes] frames.
func TestClientStreamFrameBytes(t *testing.T) {
	ck := chainCheckpointer(t, 3, 16<<10)
	var s session
	var sizes [3]int64
	for k := 0; k < 3; k++ {
		d, err := ck.diffAt(k)
		if err != nil {
			t.Fatal(err)
		}
		if sizes[k], err = s.stageStreamFrame(7, uint32(k), d); err != nil {
			t.Fatal(err)
		}
	}
	var got bytes.Buffer
	if err := s.flushStaged(&got); err != nil {
		t.Fatal(err)
	}
	if len(s.staged) != 0 || len(s.stage) != 0 {
		t.Fatalf("flush left %d staged frames, %d stage bytes", len(s.staged), len(s.stage))
	}
	if want := sizes[0] + sizes[1] + sizes[2]; int64(got.Len()) != want {
		t.Fatalf("flushed %d bytes, frames reported %d", got.Len(), want)
	}
	r := bytes.NewReader(got.Bytes())
	for k := 0; k < 3; k++ {
		d, err := ck.diffAt(k)
		if err != nil {
			t.Fatal(err)
		}
		var enc bytes.Buffer
		if err := d.Encode(&enc); err != nil {
			t.Fatal(err)
		}
		f, err := wire.ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("ckpt %d: staged frame unreadable: %v", k, err)
		}
		if f.Type != wire.TPushStream || f.Lineage != 7 || f.Ckpt != uint32(k) {
			t.Fatalf("ckpt %d: staged header %+v", k, f)
		}
		if int64(wire.HeaderSize+len(f.Payload)) != sizes[k] {
			t.Fatalf("ckpt %d: frame is %d bytes, stager reported %d", k, wire.HeaderSize+len(f.Payload), sizes[k])
		}
		wantSum := wire.Checksum(enc.Bytes())
		gotSum := binary.BigEndian.Uint32(f.Payload)
		if gotSum != wantSum {
			t.Fatalf("ckpt %d: staged checksum %08x, Encode checksum %08x", k, gotSum, wantSum)
		}
		if !bytes.Equal(f.Payload[wire.PushChecksumSize:], enc.Bytes()) {
			t.Fatalf("ckpt %d: staged payload differs from Encode output", k)
		}
	}
}

// TestRecordDiffAtRebase verifies diffAt restores absolute checkpoint
// ids for records pulled from a compacted lineage, without mutating
// the record's own diffs.
func TestRecordDiffAtRebase(t *testing.T) {
	addr, shutdown := startTestServer(t, server.Config{Root: t.TempDir()})
	defer shutdown()
	cl, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const chain = 5
	ck := chainCheckpointer(t, chain, 16<<10)
	if _, err := cl.PushCheckpointer("lin", ck); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CompactTo("lin", 2); err != nil {
		t.Fatal(err)
	}
	rec, err := cl.Pull("lin")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Base() != 2 {
		t.Fatalf("pulled base %d, want 2", rec.Base())
	}
	for k := 2; k < chain; k++ {
		d, err := rec.diffAt(k)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.CkptID; got != uint32(k) {
			t.Fatalf("diffAt(%d) carries ckpt id %d", k, got)
		}
		var viaAt, viaWrite bytes.Buffer
		if err := d.Encode(&viaAt); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteDiff(k, &viaWrite); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaAt.Bytes(), viaWrite.Bytes()) {
			t.Fatalf("diffAt(%d) and WriteDiff(%d) disagree", k, k)
		}
	}
	if _, err := rec.diffAt(1); err == nil {
		t.Fatal("diffAt below base accepted")
	}
	if _, err := rec.diffAt(chain); err == nil {
		t.Fatal("diffAt past end accepted")
	}
}

var _ io.Writer = (*sliceWriter)(nil)
